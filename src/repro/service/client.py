"""Stdlib HTTP client for the sweep service.

:class:`ServiceClient` wraps ``urllib`` — no new dependencies — and is
what the test suite, ``examples/service_client.py`` and the
``repro-lumos submit`` subcommand all use.  Server refusals raise
:class:`ServiceError` carrying the HTTP status and the stable
machine-readable ``code`` from the typed error body, so callers branch
on ``error.code`` instead of parsing messages (the CLI maps any
``ServiceError`` to exit 2, mirroring how typed library errors exit).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.service.jobs import TERMINAL_STATES
from repro.service.protocol import PROTOCOL_VERSION


class ServiceError(Exception):
    """A request the service refused (or a transport failure)."""

    def __init__(self, message: str, *, code: str = "unavailable",
                 status: int | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.status = status


class ServiceClient:
    """A minimal blocking client for one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Mapping[str, Any] | None = None) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                wire = json.loads(raw)["error"]
                code, message = str(wire["code"]), str(wire["message"])
            except (ValueError, KeyError, TypeError):
                code, message = "internal", raw or str(error)
            raise ServiceError(message, code=code, status=error.code) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"service at {self.base_url} is unreachable: {error.reason}"
            ) from error

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/v1/metricz")

    def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Submit one raw job body (``version`` defaults in when absent)."""
        body = dict(payload)
        body.setdefault("version", PROTOCOL_VERSION)
        return self._request("POST", "/v1/jobs", body)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    # -- convenience ---------------------------------------------------------

    def submit_sweep(self, trace: str, *, targets: list[str] | None = None,
                     whatif: list[str] | None = None,
                     spec: Mapping[str, Any] | None = None,
                     slo_ms: float | None = None,
                     base: Mapping[str, Any] | None = None,
                     reuse: bool = False) -> dict[str, Any]:
        """Submit a sweep against a server-registered trace name."""
        body: dict[str, Any] = {"kind": "sweep", "trace": trace, "reuse": reuse}
        if spec is not None:
            body["spec"] = dict(spec)
        if targets:
            body["targets"] = list(targets)
        if whatif:
            body["whatif"] = list(whatif)
        if slo_ms is not None:
            body["slo_ms"] = slo_ms
        if base:
            body["base"] = dict(base)
        return self.submit(body)

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll_interval: float = 0.1) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the job."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout:g}s",
                    code="timeout")
            time.sleep(poll_interval)
