"""Stdlib HTTP client for the sweep service.

:class:`ServiceClient` wraps ``urllib`` — no new dependencies — and is
what the test suite, ``examples/service_client.py`` and the
``repro-lumos submit`` subcommand all use.  Server refusals raise
:class:`ServiceError` carrying the HTTP status and the stable
machine-readable ``code`` from the typed error body, so callers branch
on ``error.code`` instead of parsing messages (the CLI maps any
``ServiceError`` to exit 2, mirroring how typed library errors exit).

Transport failures on idempotent GETs retry with capped exponential
backoff before giving up — one dropped connection no longer kills a
long ``wait()``.  POSTs never retry (a retried submit is harmless
thanks to content-addressed dedupe, but a retried cancel is not, and
the client cannot tell whether the first attempt landed).

:meth:`ServiceClient.wait` prefers the server's
``GET /v1/jobs/{id}?wait=`` long-poll — one parked request instead of a
0.1s polling hammer — and degrades automatically to backed-off polling
against servers that ignore the parameter.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.service.jobs import TERMINAL_STATES
from repro.service.protocol import PROTOCOL_VERSION

#: GET retry schedule: attempts and the backoff before each retry.
_GET_TRIES = 3
_BACKOFF_BASE = 0.1
_BACKOFF_CAP = 0.8

#: Longest single long-poll leg ``wait()`` asks the server for (the
#: server itself caps ``wait=`` at 60s).
_WAIT_CHUNK_SECONDS = 30.0


class ServiceError(Exception):
    """A request the service refused (or a transport failure)."""

    def __init__(self, message: str, *, code: str = "unavailable",
                 status: int | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.status = status


class ServiceClient:
    """A minimal blocking client for one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Mapping[str, Any] | None = None, *,
                 timeout: float | None = None) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        tries = _GET_TRIES if method == "GET" else 1
        for attempt in range(1, tries + 1):
            if attempt > 1:
                time.sleep(min(_BACKOFF_CAP,
                               _BACKOFF_BASE * (4 ** (attempt - 2))))
            request = urllib.request.Request(
                self.base_url + path, data=body, method=method,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(
                        request,
                        timeout=timeout if timeout is not None
                        else self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                # The server answered: a typed refusal, never retried.
                raw = error.read().decode("utf-8", errors="replace")
                try:
                    wire = json.loads(raw)["error"]
                    code, message = str(wire["code"]), str(wire["message"])
                except (ValueError, KeyError, TypeError):
                    code, message = "internal", raw or str(error)
                raise ServiceError(message, code=code,
                                   status=error.code) from error
            except urllib.error.URLError as error:
                if attempt >= tries:
                    raise ServiceError(
                        f"service at {self.base_url} is unreachable: "
                        f"{error.reason}") from error
        raise AssertionError("unreachable")  # the loop always returns/raises

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/v1/metricz")

    def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Submit one raw job body (``version`` defaults in when absent)."""
        body = dict(payload)
        body.setdefault("version", PROTOCOL_VERSION)
        return self._request("POST", "/v1/jobs", body)

    def job(self, job_id: str, *, wait: float | None = None) -> dict[str, Any]:
        """Job status; ``wait=`` seconds long-polls for a terminal state."""
        path = f"/v1/jobs/{job_id}"
        timeout = None
        if wait is not None:
            path += f"?wait={wait:g}"
            # The request must outlive the server-side park.
            timeout = max(self.timeout, wait + 10.0)
        return self._request("GET", path, timeout=timeout)["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    # -- convenience ---------------------------------------------------------

    def submit_sweep(self, trace: str, *, targets: list[str] | None = None,
                     whatif: list[str] | None = None,
                     spec: Mapping[str, Any] | None = None,
                     slo_ms: float | None = None,
                     base: Mapping[str, Any] | None = None,
                     reuse: bool = False,
                     webhook: str | None = None) -> dict[str, Any]:
        """Submit a sweep against a server-registered trace name."""
        body: dict[str, Any] = {"kind": "sweep", "trace": trace, "reuse": reuse}
        if spec is not None:
            body["spec"] = dict(spec)
        if targets:
            body["targets"] = list(targets)
        if whatif:
            body["whatif"] = list(whatif)
        if slo_ms is not None:
            body["slo_ms"] = slo_ms
        if base:
            body["base"] = dict(base)
        if webhook:
            body["webhook"] = webhook
        return self.submit(body)

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll_interval: float = 0.1) -> dict[str, Any]:
        """Block until the job reaches a terminal state; returns the job.

        Each round trip asks the server to long-poll (``?wait=``) for up
        to 30s; a server that answers a non-terminal state immediately is
        treated as not supporting the parameter, and the client falls
        back to polling with exponential backoff on ``poll_interval``
        (capped at 2s) instead of hammering a fixed interval.
        """
        deadline = time.monotonic() + timeout
        interval = max(0.01, poll_interval)
        while True:
            remaining = deadline - time.monotonic()
            leg = min(_WAIT_CHUNK_SECONDS, max(0.0, remaining))
            started = time.monotonic()
            job = self.job(job_id, wait=leg if leg > 0 else None)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout:g}s",
                    code="timeout")
            if time.monotonic() - started < 0.05:
                # The server answered instantly without parking: degrade
                # to client-side polling with backoff.
                time.sleep(min(interval, max(0.0,
                                             deadline - time.monotonic())))
                interval = min(2.0, interval * 2)
