"""Persistent job store and trace registry for the sweep service.

Jobs are content-addressed the same way the sweep cache is: a job id is
the (truncated) :func:`~repro.sweep.hashing.hash_json` of the bundle
hash plus the canonical job payload, so two clients submitting the
identical (bundle, spec) pair compute the identical id and dedupe to one
queued/running job.  Resubmitting after completion re-enqueues by
default — the rerun is answered from the shared on-disk sweep cache —
while ``reuse: true`` returns the finished record without a rerun.

Persistence is one JSON snapshot per job under ``<root>/jobs/`` (written
with the same tmp-file + ``os.replace`` idiom as the sweep cache, so
snapshots are never torn) plus an append-only ``journal.jsonl`` of state
transitions for post-mortems.  Claims use ``O_EXCL`` marker files under
``<root>/claims/``, which makes *claiming* exclusive across worker
threads and worker processes alike: exactly one worker wins a queued
job.  :meth:`JobStore.refresh` rescans the directory, so a server
process and out-of-process workers sharing one root observe each other's
transitions.

States move ``queued → running → done/failed/cancelled``; terminal
records are immutable (a re-enqueue writes a fresh ``queued`` snapshot
with ``attempts`` bumped).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.service.protocol import (
    CODE_BAD_REQUEST,
    CODE_JOB_STATE,
    CODE_UNKNOWN_JOB,
    CODE_UNKNOWN_TRACE,
    ProtocolError,
    bundle_from_json,
)
from repro.sweep.hashing import hash_json, hash_trace_bundle
from repro.trace.kineto import TraceBundle

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)

_RECORD_SCHEMA = 1


def job_id_for(bundle_hash: str, kind: str, payload: Mapping[str, Any]) -> str:
    """The deterministic job id of one (bundle, job payload) pair."""
    return hash_json({"schema": _RECORD_SCHEMA, "bundle": bundle_hash,
                      "kind": kind, "payload": payload})[:32]


@dataclass
class JobRecord:
    """One job's full persisted state."""

    job_id: str
    kind: str
    trace: str
    bundle_hash: str
    payload: dict[str, Any]
    state: str = STATE_QUEUED
    submitted_unix: float = 0.0
    started_unix: float | None = None
    finished_unix: float | None = None
    worker: str | None = None
    attempts: int = 1
    error: dict[str, Any] | None = None
    result: dict[str, Any] | None = None
    cache: dict[str, Any] | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": _RECORD_SCHEMA,
            "job_id": self.job_id,
            "kind": self.kind,
            "trace": self.trace,
            "bundle_hash": self.bundle_hash,
            "payload": self.payload,
            "state": self.state,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "worker": self.worker,
            "attempts": self.attempts,
            "error": self.error,
            "result": self.result,
            "cache": self.cache,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "JobRecord":
        return cls(
            job_id=str(payload["job_id"]),
            kind=str(payload["kind"]),
            trace=str(payload["trace"]),
            bundle_hash=str(payload["bundle_hash"]),
            payload=dict(payload["payload"]),
            state=str(payload["state"]),
            submitted_unix=float(payload["submitted_unix"]),
            started_unix=payload.get("started_unix"),
            finished_unix=payload.get("finished_unix"),
            worker=payload.get("worker"),
            attempts=int(payload.get("attempts", 1)),
            error=payload.get("error"),
            result=payload.get("result"),
            cache=payload.get("cache"),
        )

    def public_json(self) -> dict[str, Any]:
        """The status body ``GET /v1/jobs/{id}`` serves (no result bulk)."""
        body = {
            "job_id": self.job_id,
            "kind": self.kind,
            "trace": self.trace,
            "state": self.state,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "worker": self.worker,
            "attempts": self.attempts,
        }
        if self.error is not None:
            body["error"] = self.error
        if self.cache is not None:
            body["cache"] = self.cache
        return body


class JobStore:
    """On-disk JSON journal + in-memory index of every job."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.journal_path = self.root / "journal.jsonl"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._index: dict[str, JobRecord] = {}
        self.refresh()

    # -- persistence ---------------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _write(self, record: JobRecord) -> None:
        path = self._record_path(record.job_id)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{record.job_id}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(record.to_json()))
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        self._index[record.job_id] = record

    def _journal(self, event: str, record: JobRecord) -> None:
        line = json.dumps({"event": event, "job_id": record.job_id,
                           "state": record.state, "unix": time.time()})
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def _read(self, path: Path) -> JobRecord | None:
        # Tolerant like the sweep cache: a torn or foreign file is simply
        # not a job (snapshot writes are atomic, so this is belt and
        # braces for external interference).
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("schema") != _RECORD_SCHEMA:
                return None
            return JobRecord.from_json(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def refresh(self) -> None:
        """Rescan the jobs directory (other processes write records too)."""
        with self._lock:
            for path in sorted(self.jobs_dir.glob("*.json")):
                record = self._read(path)
                if record is not None:
                    self._index[record.job_id] = record

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        """The current record, re-read from disk while non-terminal."""
        with self._lock:
            record = self._index.get(job_id)
        if record is None or not record.terminal:
            fresh = self._read(self._record_path(job_id))
            if fresh is not None:
                with self._lock:
                    self._index[job_id] = fresh
                record = fresh
        return record

    def jobs(self) -> list[JobRecord]:
        """Every known record, oldest submission first."""
        with self._lock:
            records = list(self._index.values())
        return sorted(records, key=lambda r: (r.submitted_unix, r.job_id))

    def queue_depth(self) -> int:
        return sum(1 for record in self.jobs() if record.state == STATE_QUEUED)

    # -- lifecycle -----------------------------------------------------------

    def submit(self, record: JobRecord, *, reuse: bool = False) -> tuple[JobRecord, bool]:
        """Admit one job; returns ``(record, deduped)``.

        An identical job already queued or running dedupes to the
        existing record.  A terminal identical job is returned as-is when
        ``reuse`` is set; otherwise it is re-enqueued (the rerun is
        served from the shared sweep cache) with ``attempts`` bumped.
        """
        with self._lock:
            existing = self._index.get(record.job_id)
            if existing is None:
                disk = self._read(self._record_path(record.job_id))
                if disk is not None:
                    existing = self._index[record.job_id] = disk
            if existing is not None and not existing.terminal:
                return existing, True
            if existing is not None and reuse:
                return existing, True
            if existing is not None:
                record = replace(
                    record, attempts=existing.attempts + 1,
                    submitted_unix=record.submitted_unix or time.time())
                self._release_claim(record.job_id)
            if not record.submitted_unix:
                record = replace(record, submitted_unix=time.time())
            self._write(record)
            self._journal("submit", record)
            return record, False

    def claim_next(self, worker: str) -> JobRecord | None:
        """Atomically claim the oldest queued job for ``worker``.

        The ``O_EXCL`` claim file is the cross-process arbiter; losing
        the race simply moves on to the next queued job.
        """
        self.refresh()
        for record in self.jobs():
            if record.state != STATE_QUEUED:
                continue
            claim = self.claims_dir / f"{record.job_id}.claim"
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(worker)
            with self._lock:
                running = replace(record, state=STATE_RUNNING,
                                  started_unix=time.time(), worker=worker)
                self._write(running)
                self._journal("claim", running)
            return running
        return None

    def _release_claim(self, job_id: str) -> None:
        with contextlib.suppress(OSError):
            os.unlink(self.claims_dir / f"{job_id}.claim")

    def _finish(self, record: JobRecord, state: str, **updates: Any) -> JobRecord:
        with self._lock:
            finished = replace(record, state=state,
                               finished_unix=time.time(), **updates)
            self._write(finished)
            self._journal(state, finished)
        self._release_claim(record.job_id)
        return finished

    def mark_done(self, record: JobRecord, result: dict[str, Any],
                  cache: dict[str, Any] | None = None) -> JobRecord:
        return self._finish(record, STATE_DONE, result=result, cache=cache,
                            error=None)

    def mark_failed(self, record: JobRecord, error: dict[str, Any]) -> JobRecord:
        return self._finish(record, STATE_FAILED, error=error, result=None)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job (running/terminal jobs refuse with a code)."""
        record = self.get(job_id)
        if record is None:
            raise ProtocolError(CODE_UNKNOWN_JOB, f"no job {job_id!r}")
        if record.state != STATE_QUEUED:
            raise ProtocolError(
                CODE_JOB_STATE,
                f"job {job_id} is {record.state}; only queued jobs cancel")
        # Claim it so no worker picks it up mid-cancel, then finish it.
        claim = self.claims_dir / f"{job_id}.claim"
        try:
            fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            raise ProtocolError(
                CODE_JOB_STATE, f"job {job_id} was claimed by a worker") from None
        os.close(fd)
        return self._finish(record, STATE_CANCELLED)


@dataclass
class TraceRegistry:
    """Named trace bundles the service accepts jobs against.

    Server-registered bundles (``repro-lumos serve --trace NAME=DIR``)
    load lazily and memoize together with their content hash — the hash
    walk is the expensive part worth paying once per bundle, not per
    job.  Inline uploads are spooled to disk under the service root and
    registered under their own content hash, so workers (and restarted
    servers) reach them like any named bundle.
    """

    spool_dir: Path | None = None
    _paths: dict[str, Path] = field(default_factory=dict)
    _loaded: dict[str, tuple[TraceBundle, str]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def register(self, name: str, path: str | Path) -> None:
        """Register a saved bundle directory under ``name``."""
        with self._lock:
            self._paths[str(name)] = Path(path)
            self._loaded.pop(str(name), None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._paths)

    def resolve(self, name: str) -> tuple[TraceBundle, str]:
        """The (bundle, content hash) registered under ``name``."""
        with self._lock:
            cached = self._loaded.get(name)
            if cached is not None:
                return cached
            path = self._paths.get(name)
        if path is None:
            raise ProtocolError(
                CODE_UNKNOWN_TRACE,
                f"no trace {name!r} is registered with this server "
                f"(known: {', '.join(self.names()) or 'none'})")
        try:
            bundle = TraceBundle.load(path)
        except (OSError, ValueError, KeyError) as error:
            raise ProtocolError(
                CODE_UNKNOWN_TRACE,
                f"trace {name!r} failed to load from {path}: {error}") from error
        bundle_hash = hash_trace_bundle(bundle)
        with self._lock:
            self._loaded[name] = (bundle, bundle_hash)
        return bundle, bundle_hash

    def store_inline(self, payload: Mapping[str, Any]) -> str:
        """Spool one uploaded bundle; returns its registered name."""
        bundle = bundle_from_json(payload)
        bundle_hash = hash_trace_bundle(bundle)
        name = f"upload-{bundle_hash[:16]}"
        with self._lock:
            known = name in self._paths
        if not known:
            if self.spool_dir is None:
                raise ProtocolError(
                    CODE_BAD_REQUEST,
                    "this server accepts only registered trace names, "
                    "not inline bundle uploads")
            target = self.spool_dir / name
            if not target.is_dir():
                bundle.save(target)
            with self._lock:
                self._paths[name] = target
                self._loaded[name] = (bundle, bundle_hash)
        return name
