"""Persistent job store and trace registry for the sweep service.

Jobs are content-addressed the same way the sweep cache is: a job id is
the (truncated) :func:`~repro.sweep.hashing.hash_json` of the bundle
hash plus the canonical job payload, so two clients submitting the
identical (bundle, spec) pair compute the identical id and dedupe to one
queued/running job.  Resubmitting after completion re-enqueues by
default — the rerun is answered from the shared on-disk sweep cache —
while ``reuse: true`` returns the finished record without a rerun.

Persistence is one JSON snapshot per job under ``<root>/jobs/`` (written
with the same tmp-file + ``os.replace`` idiom as the sweep cache, so
snapshots are never torn) plus an append-only ``journal.jsonl`` of state
transitions for post-mortems.  :meth:`JobStore.refresh` rescans the
directory; a terminal record already indexed is only *re-read* when the
snapshot file's stat identity (mtime/size/inode) changed since it was
indexed — which is how a re-enqueue written by another process (a
resubmission rewrites the same ``jobs/{id}.json`` path back to
``queued``) is observed by every store sharing the root.  Unchanged
terminal snapshots cost one ``stat()``, so fleet polling parses JSON
only for the *non-terminal* jobs, not the store's full history.

Claims are **leases**, not bare markers: the ``O_EXCL`` claim file under
``<root>/claims/`` carries ``{worker, pid, hostname, deadline_unix}``
JSON, and the claiming worker extends the deadline mid-job via
:meth:`JobStore.heartbeat` (an atomic tmp + ``os.replace`` rewrite).
``O_EXCL`` creation still makes *claiming* exclusive across worker
threads and worker processes alike; the deadline is what makes the claim
*recoverable*: a worker that dies without releasing its claim stops
heartbeating, the lease expires, and the next ``claim_next``/``refresh``
on any store sharing the root reclaims the job — requeued with
``attempts`` bumped (journal event ``lease_expired``), or failed with
the typed ``worker-lost`` code once ``max_attempts`` is exhausted.
Reclaim itself is arbitrated by an atomic rename of the expired claim
file, so concurrent reapers requeue a lost job exactly once.

States move ``queued → running → done/failed/cancelled``; a terminal
record never mutates *in place* — a re-enqueue replaces the snapshot
wholesale with a fresh ``queued`` record (``attempts`` bumped), which
the stat check above makes visible to every store, and a late finisher
whose job was meanwhile requeued or terminally failed is discarded
(journal ``stale_finish``) instead of overwriting the newer record.
Every terminal transition notifies a per-job
:class:`threading.Condition`, which is what ``GET /v1/jobs/{id}?wait=``
long-polls on; :meth:`JobStore.wait_for_terminal` falls back to a
bounded poll loop (via ``refresh``) for transitions written by other
processes.  A store's optional ``on_terminal`` callback fires for every
terminal record *this* store wrote — worker finishes, cancels, and
lease-expiry ``worker-lost`` failures alike — which is how webhook
subscribers hear about terminal transitions no worker produced.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.service.protocol import (
    CODE_BAD_REQUEST,
    CODE_JOB_STATE,
    CODE_UNKNOWN_JOB,
    CODE_UNKNOWN_TRACE,
    CODE_WORKER_LOST,
    ProtocolError,
    bundle_from_json,
)
from repro.sweep.hashing import hash_json, hash_trace_bundle
from repro.trace.kineto import TraceBundle

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)

#: Journal event written when an expired lease requeues (or fails) a job.
EVENT_LEASE_EXPIRED = "lease_expired"

_RECORD_SCHEMA = 1

#: Default seconds a claim lease lives without a heartbeat.
DEFAULT_LEASE_SECONDS = 30.0
#: Default attempts (initial + lease-expiry requeues) before ``worker-lost``.
DEFAULT_MAX_ATTEMPTS = 3


def job_id_for(bundle_hash: str, kind: str, payload: Mapping[str, Any]) -> str:
    """The deterministic job id of one (bundle, job payload) pair."""
    return hash_json({"schema": _RECORD_SCHEMA, "bundle": bundle_hash,
                      "kind": kind, "payload": payload})[:32]


@dataclass
class JobRecord:
    """One job's full persisted state."""

    job_id: str
    kind: str
    trace: str
    bundle_hash: str
    payload: dict[str, Any]
    state: str = STATE_QUEUED
    submitted_unix: float = 0.0
    started_unix: float | None = None
    finished_unix: float | None = None
    worker: str | None = None
    attempts: int = 1
    error: dict[str, Any] | None = None
    result: dict[str, Any] | None = None
    cache: dict[str, Any] | None = None
    webhook: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": _RECORD_SCHEMA,
            "job_id": self.job_id,
            "kind": self.kind,
            "trace": self.trace,
            "bundle_hash": self.bundle_hash,
            "payload": self.payload,
            "state": self.state,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "worker": self.worker,
            "attempts": self.attempts,
            "error": self.error,
            "result": self.result,
            "cache": self.cache,
            "webhook": self.webhook,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "JobRecord":
        return cls(
            job_id=str(payload["job_id"]),
            kind=str(payload["kind"]),
            trace=str(payload["trace"]),
            bundle_hash=str(payload["bundle_hash"]),
            payload=dict(payload["payload"]),
            state=str(payload["state"]),
            submitted_unix=float(payload["submitted_unix"]),
            started_unix=payload.get("started_unix"),
            finished_unix=payload.get("finished_unix"),
            worker=payload.get("worker"),
            attempts=int(payload.get("attempts", 1)),
            error=payload.get("error"),
            result=payload.get("result"),
            cache=payload.get("cache"),
            webhook=payload.get("webhook"),
        )

    def public_json(self) -> dict[str, Any]:
        """The status body ``GET /v1/jobs/{id}`` serves (no result bulk)."""
        body = {
            "job_id": self.job_id,
            "kind": self.kind,
            "trace": self.trace,
            "state": self.state,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "worker": self.worker,
            "attempts": self.attempts,
        }
        if self.error is not None:
            body["error"] = self.error
        if self.cache is not None:
            body["cache"] = self.cache
        if self.webhook is not None:
            body["webhook"] = self.webhook
        return body


class JobStore:
    """On-disk JSON journal + in-memory index of every job."""

    def __init__(self, root: str | Path, *,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.journal_path = self.root / "journal.jsonl"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = max(1, int(max_attempts))
        #: Expired leases this store observed and reclaimed (requeue or
        #: worker-lost failure) — the ``service.leases.expired`` counter.
        self.lease_expirations = 0
        #: Called with every terminal record *this store* writes (worker
        #: finishes, cancels, and lease-expiry ``worker-lost`` failures).
        #: The server and fleet hook webhook delivery here; exceptions
        #: are swallowed so a bad subscriber never breaks a transition.
        self.on_terminal: Callable[[JobRecord], None] | None = None
        self._lock = threading.Lock()
        self._index: dict[str, JobRecord] = {}
        #: Stat identity of each indexed snapshot file, used to detect
        #: that a terminal record was replaced on disk (a re-enqueue by
        #: another process) without re-parsing unchanged snapshots.
        self._snapshot_stat: dict[str, tuple[int, int, int] | None] = {}
        self._conditions: dict[str, threading.Condition] = {}
        self.refresh()

    # -- persistence ---------------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _claim_path(self, job_id: str) -> Path:
        return self.claims_dir / f"{job_id}.claim"

    @staticmethod
    def _signature(path: Path) -> tuple[int, int, int] | None:
        """The (mtime_ns, size, inode) identity of one snapshot file."""
        try:
            stat = path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _write(self, record: JobRecord) -> None:
        path = self._record_path(record.job_id)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{record.job_id}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(record.to_json()))
            # The tmp file's inode — and so its stat identity — survives
            # the rename, so this is *our* snapshot's signature even if
            # another process replaces the path right after us.
            signature = self._signature(Path(tmp_name))
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        self._index[record.job_id] = record
        self._snapshot_stat[record.job_id] = signature

    def _journal(self, event: str, record: JobRecord, **extra: Any) -> None:
        line = json.dumps({"event": event, "job_id": record.job_id,
                           "state": record.state, "unix": time.time(), **extra})
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def journal_event(self, event: str, record: JobRecord, **extra: Any) -> None:
        """Append one out-of-band journal line (e.g. webhook delivery)."""
        self._journal(event, record, **extra)

    def journal_events(self) -> list[dict[str, Any]]:
        """Every parseable journal line, oldest first (post-mortem helper)."""
        events = []
        try:
            with open(self.journal_path, encoding="utf-8") as handle:
                for line in handle:
                    with contextlib.suppress(ValueError):
                        events.append(json.loads(line))
        except OSError:
            pass
        return events

    def _read(self, path: Path) -> JobRecord | None:
        # Tolerant like the sweep cache: a torn or foreign file is simply
        # not a job (snapshot writes are atomic, so this is belt and
        # braces for external interference).
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("schema") != _RECORD_SCHEMA:
                return None
            return JobRecord.from_json(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _load_locked(self, job_id: str) -> JobRecord | None:
        """Stat + read + index one snapshot (caller holds the lock)."""
        path = self._record_path(job_id)
        # Signature before content: if the file is replaced between the
        # two calls we store a stale signature and simply re-read next
        # time — conservative, never the other way around.
        signature = self._signature(path)
        record = self._read(path)
        if record is not None:
            self._index[record.job_id] = record
            self._snapshot_stat[record.job_id] = signature
        return record

    def _current_locked(self, job_id: str) -> JobRecord | None:
        """The up-to-date record (caller holds the lock).

        A terminal index entry whose snapshot file is stat-identical to
        when it was indexed is served from memory; anything else —
        non-terminal, never seen, or a replaced snapshot (a re-enqueue
        written by another process) — is re-read from disk.
        """
        cached = self._index.get(job_id)
        if cached is not None and cached.terminal \
                and self._snapshot_stat.get(job_id) == \
                self._signature(self._record_path(job_id)):
            return cached
        fresh = self._load_locked(job_id)
        return fresh if fresh is not None else cached

    def refresh(self) -> list[JobRecord]:
        """Rescan the jobs directory and reclaim expired leases.

        Terminal records already in the index are only re-read when
        their snapshot file changed on disk (stat mtime/size/inode) —
        fleet polling pays one ``stat()`` per terminal job but parses
        JSON only for non-terminal (or replaced) snapshots.  Running
        jobs whose lease deadline has passed are reclaimed (requeued, or
        failed with ``worker-lost``); the reclaimed records are
        returned.
        """
        with self._lock:
            for path in sorted(self.jobs_dir.glob("*.json")):
                self._current_locked(path.stem)
            running = [record for record in self._index.values()
                       if record.state == STATE_RUNNING]
        now = time.time()
        reclaimed = []
        for record in running:
            if self._lease_expired(record.job_id, now,
                                   fallback_unix=record.started_unix):
                out = self._reclaim(record)
                if out is not None:
                    reclaimed.append(out)
        return reclaimed

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        """The current record, re-read from disk unless the indexed
        record is terminal *and* its snapshot file is unchanged."""
        with self._lock:
            return self._current_locked(job_id)

    def jobs(self) -> list[JobRecord]:
        """Every known record, oldest submission first."""
        with self._lock:
            records = list(self._index.values())
        return sorted(records, key=lambda r: (r.submitted_unix, r.job_id))

    def queue_depth(self) -> int:
        return sum(1 for record in self.jobs() if record.state == STATE_QUEUED)

    # -- leases --------------------------------------------------------------

    def _lease_payload(self, worker: str, now: float) -> dict[str, Any]:
        return {"worker": worker, "pid": os.getpid(),
                "hostname": socket.gethostname(),
                "deadline_unix": now + self.lease_seconds}

    def read_lease(self, job_id: str) -> dict[str, Any] | None:
        """The claim file's lease JSON, or ``None`` when absent/unreadable."""
        try:
            payload = json.loads(
                self._claim_path(job_id).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def active_leases(self) -> list[dict[str, Any]]:
        """Every readable lease on the root (liveness introspection)."""
        leases = []
        for path in sorted(self.claims_dir.glob("*.claim")):
            lease = self.read_lease(path.stem)
            if lease is not None:
                leases.append(dict(lease, job_id=path.stem))
        return leases

    def _lease_expired(self, job_id: str, now: float, *,
                       fallback_unix: float | None = None) -> bool:
        """Whether the claim on ``job_id`` is past its deadline.

        An unreadable or legacy (non-JSON) claim falls back to a grace
        period from the claim file's mtime (or ``fallback_unix``), so a
        claim being written right now is never reclaimed mid-birth.
        """
        lease = self.read_lease(job_id)
        if lease is not None:
            with contextlib.suppress(KeyError, TypeError, ValueError):
                return now > float(lease["deadline_unix"])
        try:
            anchor = self._claim_path(job_id).stat().st_mtime
        except OSError:
            # No claim file at all: a crash landed between snapshot and
            # claim bookkeeping. Grace from the record's own timestamps.
            anchor = fallback_unix or 0.0
        if fallback_unix:
            anchor = max(anchor, fallback_unix)
        return now > anchor + self.lease_seconds

    def heartbeat(self, record: JobRecord, worker: str | None = None) -> bool:
        """Atomically extend this process's lease on a running job.

        Returns ``False`` — without touching anything — when the lease is
        no longer held by (``worker``, this pid): the job was reclaimed
        out from under a stalled worker, which should abandon the run.

        Known (tolerated) race: the ownership check and the
        ``os.replace`` are not one atomic step, so a stalled-but-alive
        worker can pass the check just before a reaper renames its
        expired claim away and then clobber the *new* owner's freshly
        written lease.  The fallout is bounded, not fatal: the new owner
        sees its heartbeats refused and abandons its (duplicate) run;
        the stalled worker keeps heartbeating and finishes, but its
        result is discarded by the stale-attempt guard in ``_finish``;
        the claim it leaves behind expires unheartbeated and is swept by
        the next ``claim_next``/``refresh``, so the job is requeued and
        completes.  Closing the window entirely would need an ``fcntl``
        lock or owner-named claim files with ``link()``-based
        compare-and-swap — not worth it for a file-based lease whose
        deadlines already bound every failure mode.
        """
        worker = worker if worker is not None else record.worker
        lease = self.read_lease(record.job_id)
        if lease is None or lease.get("worker") != worker \
                or lease.get("pid") != os.getpid():
            return False
        payload = dict(lease, deadline_unix=time.time() + self.lease_seconds)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.claims_dir, prefix=f".{record.job_id}-", suffix=".hb")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload))
            os.replace(tmp_name, self._claim_path(record.job_id))
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            return False
        return True

    def _take_claim(self, job_id: str, worker: str) -> bool:
        """Win the ``O_EXCL`` race and write the lease; False on loss."""
        try:
            fd = os.open(self._claim_path(job_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self._lease_payload(worker, time.time())))
        return True

    def _remove_claim_atomically(self, job_id: str) -> bool:
        """Remove a (stale) claim via rename — exactly one caller wins."""
        token = self.claims_dir / \
            f".{job_id}.reap-{os.getpid()}-{threading.get_ident()}"
        try:
            os.rename(self._claim_path(job_id), token)
        except OSError:
            return False
        with contextlib.suppress(OSError):
            os.unlink(token)
        return True

    def _reclaim(self, record: JobRecord) -> JobRecord | None:
        """Recover one running job whose lease expired.

        The atomic claim-file rename is the cross-process arbiter: of N
        stores observing the same expired lease, exactly one requeues the
        job (journal ``lease_expired``) or — once ``attempts`` reaches
        ``max_attempts`` — fails it with the typed ``worker-lost`` error.
        """
        claim = self._claim_path(record.job_id)
        token = self.claims_dir / \
            f".{record.job_id}.reap-{os.getpid()}-{threading.get_ident()}"
        try:
            os.rename(claim, token)
        except OSError:
            # No claim file: the worker crashed before the lease landed
            # (or an operator removed it). O_EXCL-creating the claim
            # ourselves is an equivalent one-winner arbiter.
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
            except OSError:
                return None
            token = claim
        try:
            with self._lock:
                current = self._read(self._record_path(record.job_id))
                if current is None or current.state != STATE_RUNNING \
                        or current.attempts != record.attempts:
                    return None  # finished or already reclaimed meanwhile
                self.lease_expirations += 1
                lost_worker = current.worker
                if current.attempts >= self.max_attempts:
                    reclaimed = replace(
                        current, state=STATE_FAILED,
                        finished_unix=time.time(), result=None,
                        error={"code": CODE_WORKER_LOST,
                               "message": f"worker {lost_worker!r} lost its "
                                          f"lease and the job exhausted "
                                          f"{current.attempts} of "
                                          f"{self.max_attempts} attempts"})
                    self._write(reclaimed)
                    self._journal(EVENT_LEASE_EXPIRED, reclaimed,
                                  worker=lost_worker)
                    self._journal(STATE_FAILED, reclaimed)
                else:
                    reclaimed = replace(
                        current, state=STATE_QUEUED, worker=None,
                        started_unix=None, finished_unix=None,
                        attempts=current.attempts + 1)
                    self._write(reclaimed)
                    self._journal(EVENT_LEASE_EXPIRED, reclaimed,
                                  worker=lost_worker)
            self._notify(record.job_id)
            # A worker-lost failure is a terminal transition no worker
            # produced: this (winning) store tells the subscribers.
            self._fire_on_terminal(reclaimed)
            return reclaimed
        finally:
            with contextlib.suppress(OSError):
                os.unlink(token)

    # -- lifecycle -----------------------------------------------------------

    def submit(self, record: JobRecord, *, reuse: bool = False) -> tuple[JobRecord, bool]:
        """Admit one job; returns ``(record, deduped)``.

        An identical job already queued or running dedupes to the
        existing record.  A terminal identical job is returned as-is when
        ``reuse`` is set; otherwise it is re-enqueued (the rerun is
        served from the shared sweep cache) with ``attempts`` bumped.
        A deduped submission keeps the existing record's webhook (first
        webhook wins); a re-enqueue adopts the resubmission's.
        """
        with self._lock:
            existing = self._current_locked(record.job_id)
            if existing is not None and not existing.terminal:
                return existing, True
            if existing is not None and reuse:
                return existing, True
            if existing is not None:
                record = replace(
                    record, attempts=existing.attempts + 1,
                    submitted_unix=record.submitted_unix or time.time())
                self._release_claim(record.job_id)
            if not record.submitted_unix:
                record = replace(record, submitted_unix=time.time())
            self._write(record)
            self._journal("submit", record)
            return record, False

    def claim_next(self, worker: str) -> JobRecord | None:
        """Atomically claim the oldest queued job for ``worker``.

        The ``O_EXCL`` lease file is the cross-process arbiter; losing
        the race simply moves on to the next queued job.  A *stale* claim
        on a queued job (left by a reclaim/heartbeat race) is removed
        once its own lease expires, so no job is stuck forever behind an
        orphaned file.
        """
        self.refresh()
        now = time.time()
        for record in self.jobs():
            if record.state != STATE_QUEUED:
                continue
            claimed = self._take_claim(record.job_id, worker)
            if not claimed and self._lease_expired(record.job_id, now):
                if self._remove_claim_atomically(record.job_id):
                    claimed = self._take_claim(record.job_id, worker)
            if not claimed:
                continue
            with self._lock:
                current = self._index.get(record.job_id, record)
                if current.state != STATE_QUEUED:
                    # Cancelled (or otherwise moved on) between the scan
                    # and our claim: give the claim back and keep looking.
                    self._release_claim(record.job_id)
                    continue
                running = replace(current, state=STATE_RUNNING,
                                  started_unix=time.time(), worker=worker)
                self._write(running)
                self._journal("claim", running)
            return running
        return None

    def _release_claim(self, job_id: str, owner: str | None = None) -> None:
        """Drop the claim file; with ``owner``, only if we still hold it."""
        if owner is not None:
            lease = self.read_lease(job_id)
            if lease is not None and (lease.get("worker") != owner
                                      or lease.get("pid") != os.getpid()):
                return  # reclaimed and re-leased to someone else
        with contextlib.suppress(OSError):
            os.unlink(self._claim_path(job_id))

    def _condition_for(self, job_id: str) -> threading.Condition:
        with self._lock:
            condition = self._conditions.get(job_id)
            if condition is None:
                condition = self._conditions[job_id] = threading.Condition()
            return condition

    def _notify(self, job_id: str) -> None:
        condition = self._condition_for(job_id)
        with condition:
            condition.notify_all()

    def _fire_on_terminal(self, record: JobRecord) -> None:
        """Invoke the ``on_terminal`` hook for a record this store wrote."""
        callback = self.on_terminal
        if callback is not None and record.terminal:
            with contextlib.suppress(Exception):
                callback(record)

    def wait_for_terminal(self, job_id: str, timeout: float,
                          poll_interval: float = 0.25) -> JobRecord | None:
        """Block until the job reaches a terminal state (or ``timeout``).

        In-process transitions fire the per-job condition immediately;
        transitions written by *other* processes (a worker fleet on the
        shared root) are observed by the bounded ``refresh`` poll, which
        also reclaims expired leases while waiting — a crashed worker
        cannot park a waiter for longer than lease expiry + one tick.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        condition = self._condition_for(job_id)
        while True:
            self.refresh()
            record = self.get(job_id)
            if record is None or record.terminal:
                return record
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return record
            with condition:
                condition.wait(min(poll_interval, remaining))

    def _finish(self, record: JobRecord, state: str, **updates: Any) -> JobRecord:
        with self._lock:
            current = self._read(self._record_path(record.job_id))
            if current is not None and (current.terminal
                                        or current.attempts != record.attempts):
                # The lease expired mid-run and the job was requeued
                # (attempts moved on) or already terminally failed as
                # worker-lost (attempts unchanged but the record is
                # final): this finisher is stale.  Leave the newer
                # record — and its claim — alone; terminal records never
                # mutate in place.
                self._journal("stale_finish", current, worker=record.worker)
                return current
            finished = replace(record, state=state,
                               finished_unix=time.time(), **updates)
            self._write(finished)
            self._journal(state, finished)
        self._release_claim(record.job_id, owner=record.worker)
        self._notify(record.job_id)
        self._fire_on_terminal(finished)
        return finished

    def mark_done(self, record: JobRecord, result: dict[str, Any],
                  cache: dict[str, Any] | None = None) -> JobRecord:
        return self._finish(record, STATE_DONE, result=result, cache=cache,
                            error=None)

    def mark_failed(self, record: JobRecord, error: dict[str, Any]) -> JobRecord:
        return self._finish(record, STATE_FAILED, error=error, result=None)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job (running/terminal jobs refuse with a code)."""
        record = self.get(job_id)
        if record is None:
            raise ProtocolError(CODE_UNKNOWN_JOB, f"no job {job_id!r}")
        if record.state != STATE_QUEUED:
            raise ProtocolError(
                CODE_JOB_STATE,
                f"job {job_id} is {record.state}; only queued jobs cancel")
        # Claim it so no worker picks it up mid-cancel, then finish it.
        if not self._take_claim(job_id, worker="__cancel__"):
            raise ProtocolError(
                CODE_JOB_STATE, f"job {job_id} was claimed by a worker")
        return self._finish(record, STATE_CANCELLED)


@dataclass
class TraceRegistry:
    """Named trace bundles the service accepts jobs against.

    Server-registered bundles (``repro-lumos serve --trace NAME=DIR``)
    load lazily and memoize together with their content hash — the hash
    walk is the expensive part worth paying once per bundle, not per
    job.  Inline uploads are spooled to disk under the service root and
    registered under their own content hash, so workers (and restarted
    servers) reach them like any named bundle: an unknown ``upload-*``
    name falls back to the spool directory, which is how a separate
    ``repro-lumos work`` fleet on the shared root resolves bundles a
    server spooled after the fleet started.
    """

    spool_dir: Path | None = None
    _paths: dict[str, Path] = field(default_factory=dict)
    _loaded: dict[str, tuple[TraceBundle, str]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def register(self, name: str, path: str | Path) -> None:
        """Register a saved bundle directory under ``name``."""
        with self._lock:
            self._paths[str(name)] = Path(path)
            self._loaded.pop(str(name), None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._paths)

    def resolve(self, name: str) -> tuple[TraceBundle, str]:
        """The (bundle, content hash) registered under ``name``."""
        with self._lock:
            cached = self._loaded.get(name)
            if cached is not None:
                return cached
            path = self._paths.get(name)
        if path is None and self.spool_dir is not None:
            spooled = self.spool_dir / name
            if spooled.is_dir():
                self.register(name, spooled)
                path = spooled
        if path is None:
            raise ProtocolError(
                CODE_UNKNOWN_TRACE,
                f"no trace {name!r} is registered with this server "
                f"(known: {', '.join(self.names()) or 'none'})")
        try:
            bundle = TraceBundle.load(path)
        except (OSError, ValueError, KeyError) as error:
            raise ProtocolError(
                CODE_UNKNOWN_TRACE,
                f"trace {name!r} failed to load from {path}: {error}") from error
        bundle_hash = hash_trace_bundle(bundle)
        with self._lock:
            self._loaded[name] = (bundle, bundle_hash)
        return bundle, bundle_hash

    def store_inline(self, payload: Mapping[str, Any]) -> str:
        """Spool one uploaded bundle; returns its registered name."""
        bundle = bundle_from_json(payload)
        bundle_hash = hash_trace_bundle(bundle)
        name = f"upload-{bundle_hash[:16]}"
        with self._lock:
            known = name in self._paths
        if not known:
            if self.spool_dir is None:
                raise ProtocolError(
                    CODE_BAD_REQUEST,
                    "this server accepts only registered trace names, "
                    "not inline bundle uploads")
            target = self.spool_dir / name
            if not target.is_dir():
                bundle.save(target)
            with self._lock:
                self._paths[name] = target
                self._loaded[name] = (bundle, bundle_hash)
        return name
