"""Versioned JSON wire schemas for the sweep service.

One request shape covers both job kinds the service runs::

    {
      "version": 1,
      "kind": "sweep",                 # or "predict"
      "trace": "canned-serving",       # a server-registered bundle name ...
      "bundle": {...},                 # ... or an inline uploaded bundle
      "spec": {...},                   # sweep: full SweepSpec JSON, or
      "targets": ["2x2x8", "batch=16"],#        inline axes + what-ifs
      "whatif": ["gemm:2"],
      "slo_ms": 250.0,
      "target": "batch=16",            # predict: one prediction target
      "base": {"micro_batch_size": 1}, # optional base-config overrides
      "reuse": false,                  # return a completed identical job
      "webhook": "http://host/done"    # POSTed the terminal job record
    }

Responses always carry either a ``job`` object (see
:meth:`repro.service.jobs.JobRecord.public_json`) or a typed error::

    {"error": {"code": "invalid-spec", "message": "..."}}

Error ``code``\\ s are stable machine-readable strings; the HTTP status
each maps to lives in :data:`HTTP_STATUS`.  Library errors translate via
:func:`error_for_exception`: :class:`~repro.sweep.SweepSpecError` →
``invalid-spec``, :class:`~repro.api.PredictError` →
``unsupported-target``, :class:`~repro.api.StudyError` → ``study-error``
— all HTTP 400, never a traceback.

Result payloads (:func:`sweep_result_payload`,
:func:`predict_result_payload`) are built from the same
:mod:`repro.sweep` objects the CLI prints, including the ranked order and
Pareto frontier from ``sweep.analysis``; :func:`validate_result_payload`
schema-checks one (tests and the CI smoke run every fetched result
through it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.errors import PredictError, StudyError
from repro.sweep.analysis import pareto_frontier
from repro.sweep.cache import CacheStats
from repro.sweep.runner import ScenarioResult, SweepResult, rank_results
from repro.sweep.spec import SweepSpecError
from repro.trace.kineto import KinetoTrace, TraceBundle

#: The one protocol version this server speaks.
PROTOCOL_VERSION = 1
#: Schema tag of the result payloads served by ``GET /v1/jobs/{id}/result``.
RESULT_SCHEMA = 1

# -- stable error codes -------------------------------------------------------

CODE_BAD_REQUEST = "bad-request"
CODE_UNSUPPORTED_VERSION = "unsupported-version"
CODE_INVALID_SPEC = "invalid-spec"
CODE_UNSUPPORTED_TARGET = "unsupported-target"
CODE_STUDY_ERROR = "study-error"
CODE_UNKNOWN_TRACE = "unknown-trace"
CODE_UNKNOWN_JOB = "unknown-job"
CODE_JOB_NOT_DONE = "job-not-done"
CODE_JOB_FAILED = "job-failed"
CODE_JOB_STATE = "job-state"
CODE_WORKER_LOST = "worker-lost"
CODE_INTERNAL = "internal"

#: HTTP status for each error code (unknown codes fall back to 500).
HTTP_STATUS: dict[str, int] = {
    CODE_BAD_REQUEST: 400,
    CODE_UNSUPPORTED_VERSION: 400,
    CODE_INVALID_SPEC: 400,
    CODE_UNSUPPORTED_TARGET: 400,
    CODE_STUDY_ERROR: 400,
    CODE_UNKNOWN_TRACE: 404,
    CODE_UNKNOWN_JOB: 404,
    CODE_JOB_NOT_DONE: 409,
    CODE_JOB_FAILED: 409,
    CODE_JOB_STATE: 409,
    CODE_WORKER_LOST: 500,
    CODE_INTERNAL: 500,
}


class ProtocolError(Exception):
    """A request the service refuses, carrying its wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    @property
    def status(self) -> int:
        return HTTP_STATUS.get(self.code, 500)

    def to_json(self) -> dict[str, Any]:
        return error_payload(self.code, self.message)


def error_payload(code: str, message: str) -> dict[str, Any]:
    """The uniform JSON error body."""
    return {"error": {"code": code, "message": message}}


def error_for_exception(error: Exception) -> ProtocolError:
    """Map a library exception onto its typed wire error.

    The order matters: ``SweepSpecError`` and ``PredictError`` both derive
    from ``ValueError``/``StudyError``, so the most specific class wins.
    """
    if isinstance(error, ProtocolError):
        return error
    if isinstance(error, SweepSpecError):
        return ProtocolError(CODE_INVALID_SPEC, str(error))
    if isinstance(error, PredictError):
        return ProtocolError(CODE_UNSUPPORTED_TARGET, str(error))
    if isinstance(error, StudyError):
        return ProtocolError(CODE_STUDY_ERROR, str(error))
    return ProtocolError(CODE_INTERNAL, f"{type(error).__name__}: {error}")


# -- submit requests ----------------------------------------------------------

_KINDS = ("sweep", "predict")


@dataclass(frozen=True)
class SubmitRequest:
    """One parsed ``POST /v1/jobs`` body."""

    kind: str
    trace: str | None = None
    bundle: Mapping[str, Any] | None = None
    spec: Mapping[str, Any] | None = None
    targets: tuple[str, ...] = ()
    whatif: tuple[str, ...] = ()
    slo_ms: float | None = None
    target: str | None = None
    base: Mapping[str, Any] = field(default_factory=dict)
    reuse: bool = False
    webhook: str | None = None

    @classmethod
    def parse(cls, payload: Any) -> "SubmitRequest":
        """Validate a request body; raises :class:`ProtocolError` on refusal."""
        if not isinstance(payload, Mapping):
            raise ProtocolError(CODE_BAD_REQUEST, "request body must be a JSON object")
        version = payload.get("version")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                CODE_UNSUPPORTED_VERSION,
                f"unsupported protocol version {version!r} "
                f"(this server speaks version {PROTOCOL_VERSION})")
        kind = payload.get("kind")
        if kind not in _KINDS:
            raise ProtocolError(
                CODE_BAD_REQUEST, f"job kind must be one of {_KINDS}, got {kind!r}")
        trace = payload.get("trace")
        bundle = payload.get("bundle")
        if (trace is None) == (bundle is None):
            raise ProtocolError(
                CODE_BAD_REQUEST,
                "exactly one of 'trace' (a registered bundle name) or "
                "'bundle' (an inline upload) is required")
        if trace is not None and not isinstance(trace, str):
            raise ProtocolError(CODE_BAD_REQUEST, "'trace' must be a string name")
        if bundle is not None and not isinstance(bundle, Mapping):
            raise ProtocolError(CODE_BAD_REQUEST, "'bundle' must be an object")
        spec = payload.get("spec")
        if spec is not None and not isinstance(spec, Mapping):
            raise ProtocolError(CODE_BAD_REQUEST, "'spec' must be an object")
        base = payload.get("base") or {}
        if not isinstance(base, Mapping):
            raise ProtocolError(CODE_BAD_REQUEST, "'base' must be an object")
        targets = payload.get("targets") or ()
        whatif = payload.get("whatif") or ()
        for name, axis in (("targets", targets), ("whatif", whatif)):
            if not isinstance(axis, (list, tuple)) \
                    or not all(isinstance(item, str) for item in axis):
                raise ProtocolError(CODE_BAD_REQUEST, f"'{name}' must be a list of strings")
        slo_ms = payload.get("slo_ms")
        if slo_ms is not None:
            try:
                slo_ms = float(slo_ms)
            except (TypeError, ValueError):
                raise ProtocolError(CODE_BAD_REQUEST, "'slo_ms' must be a number") from None
        target = payload.get("target")
        if kind == "predict":
            if not isinstance(target, str) or not target.strip():
                raise ProtocolError(
                    CODE_BAD_REQUEST, "a predict job requires a 'target' string")
        elif spec is None and not targets and not whatif:
            raise ProtocolError(
                CODE_BAD_REQUEST,
                "a sweep job requires a 'spec' object or inline "
                "'targets'/'whatif' axes")
        webhook = payload.get("webhook")
        if webhook is not None:
            # Syntax only: whether this server POSTs anywhere at all is
            # an operator decision — ServiceApp refuses webhooks unless
            # started with an allowlist (``--allow-webhooks`` /
            # ``--webhook-host``), which is the SSRF gate.
            if not isinstance(webhook, str) or not (
                    webhook.startswith("http://")
                    or webhook.startswith("https://")):
                raise ProtocolError(
                    CODE_BAD_REQUEST,
                    "'webhook' must be an http:// or https:// URL")
        return cls(kind=str(kind), trace=trace, bundle=bundle, spec=spec,
                   targets=tuple(targets), whatif=tuple(whatif), slo_ms=slo_ms,
                   target=target, base=dict(base),
                   reuse=bool(payload.get("reuse", False)), webhook=webhook)


# -- trace bundle transport ---------------------------------------------------

def bundle_to_json(bundle: TraceBundle) -> dict[str, Any]:
    """Serialise a bundle for inline upload (per-rank chrome-trace JSON)."""
    return {
        "metadata": dict(bundle.metadata),
        "traces": {str(rank): bundle[rank].to_json() for rank in bundle.ranks()},
    }


def bundle_from_json(payload: Mapping[str, Any]) -> TraceBundle:
    """Rebuild an uploaded bundle; malformed payloads are ``bad-request``."""
    try:
        bundle = TraceBundle(metadata=dict(payload.get("metadata", {})))
        traces = payload.get("traces", {})
        if not isinstance(traces, Mapping) or not traces:
            raise ValueError("bundle upload carries no per-rank traces")
        for rank, trace in traces.items():
            bundle.add(KinetoTrace.from_json(trace, rank=int(rank)))
    except (TypeError, ValueError, KeyError, AttributeError) as error:
        raise ProtocolError(
            CODE_BAD_REQUEST, f"malformed bundle upload: {error}") from error
    return bundle


# -- result payloads ----------------------------------------------------------

def cache_stats_json(stats: CacheStats) -> dict[str, Any]:
    """The cache-counter block attached to finished jobs."""
    return {"hits": stats.hits, "misses": stats.misses,
            "lookups": stats.lookups, "hit_rate": stats.hit_rate}


def _scenario_row(result: ScenarioResult) -> dict[str, Any]:
    # ``from_cache`` is runtime state, not part of the cached payload —
    # the wire row carries it explicitly so clients can see which rows a
    # warm resubmission served from the shared cache.
    return dict(result.to_json(), from_cache=result.from_cache)


def sweep_result_payload(result: SweepResult) -> dict[str, Any]:
    """The ``GET /v1/jobs/{id}/result`` body of a finished sweep job."""
    return {
        "schema": RESULT_SCHEMA,
        "kind": "sweep",
        "workload": result.spec.workload,
        "base_time_us": result.base_time_us,
        "elapsed_seconds": result.elapsed_seconds,
        "workers": result.workers,
        "cache": cache_stats_json(result.cache_stats),
        "scenarios": [_scenario_row(r) for r in result.results],
        "ranked": [_scenario_row(r) for r in rank_results(result.results)],
        "pareto": [_scenario_row(r) for r in pareto_frontier(result.results)],
    }


def predict_result_payload(prediction: Any, *,
                           slo_ms: float | None = None) -> dict[str, Any]:
    """The result body of a finished single-prediction job."""
    metrics = prediction.serving_metrics(deadline_ms=slo_ms)
    return {
        "schema": RESULT_SCHEMA,
        "kind": "predict",
        "label": prediction.label,
        "target": {"kind": prediction.kind, "label": prediction.target},
        "world_size": prediction.world_size,
        "iteration_time_us": prediction.iteration_time_us,
        "base_time_us": prediction.base_time_us,
        "speedup_vs_base": prediction.speedup_vs_base,
        "serving": metrics.to_json() if metrics is not None else None,
    }


def validate_result_payload(payload: Any) -> dict[str, Any]:
    """Schema-check one job-result body; raises ``ValueError`` on violation."""
    if not isinstance(payload, Mapping):
        raise ValueError("result payload must be an object")
    if payload.get("schema") != RESULT_SCHEMA:
        raise ValueError(f"unsupported result schema {payload.get('schema')!r}")
    kind = payload.get("kind")
    if kind == "sweep":
        cache = payload.get("cache")
        if not isinstance(cache, Mapping) or not isinstance(
                cache.get("hit_rate"), (int, float)):
            raise ValueError("sweep result without a cache-stats block")
        scenarios = payload.get("scenarios")
        for section in ("scenarios", "ranked", "pareto"):
            rows = payload.get(section)
            if not isinstance(rows, list):
                raise ValueError(f"sweep result without a '{section}' list")
            for position, row in enumerate(rows):
                where = f"{section}[{position}]"
                if not isinstance(row, Mapping):
                    raise ValueError(f"{where} is not an object")
                for column in ("label", "kind", "target", "world_size",
                               "iteration_time_us", "base_time_us", "from_cache"):
                    if column not in row:
                        raise ValueError(f"{where} misses '{column}'")
        if len(payload["ranked"]) != len(scenarios):
            raise ValueError("ranked section must permute the scenarios")
    elif kind == "predict":
        for column in ("label", "target", "iteration_time_us",
                       "base_time_us", "speedup_vs_base"):
            if column not in payload:
                raise ValueError(f"predict result misses '{column}'")
    else:
        raise ValueError(f"unknown result kind {kind!r}")
    return dict(payload)
