"""Queue-polling workers that evaluate service jobs.

A :class:`Worker` drains the :class:`~repro.service.jobs.JobStore`:
claim the oldest queued job, rebuild its :class:`~repro.api.Study`, run
the sweep (or single prediction) with the *shared* on-disk
:class:`~repro.sweep.cache.SweepCache`, and write the result payload
plus the job's own :class:`~repro.sweep.cache.CacheStats` back to the
job record.  Studies are memoized per (bundle hash, base configuration):
the first job against a bundle pays for replay and calibration, every
later job against the same bundle reuses them — and because the sweep
cache is content-addressed and shared across workers and users, popular
scenario grids are answered entirely from cache (a warm identical
resubmission reports ``cache_hit_rate == 1.0``).

Library errors become typed job failures through
:func:`~repro.service.protocol.error_for_exception` — an invalid spec or
an unsupported target fails *that job* with a stable code; the worker
itself never dies on a bad submission.

Observability follows the ``stage`` span convention
(:func:`~repro.observability.tracing.trace_span`): each processed job
records a ``service.queue_wait`` span (via
:func:`~repro.observability.tracing.record_span` — the wait elapsed
before the worker could open a span) and a ``service.run`` span, plus
queue-wait / job-latency / cache-hit-rate histograms on the service's
own always-on :class:`ServiceMetrics` registry.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.api.study import Study
from repro.observability import tracing as observability
from repro.observability.metrics import MetricsRegistry
from repro.service.jobs import JobRecord, JobStore, TraceRegistry
from repro.service.protocol import (
    cache_stats_json,
    error_for_exception,
    predict_result_payload,
    sweep_result_payload,
)
from repro.sweep.cache import SweepCache
from repro.sweep.hashing import hash_json
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec


class ServiceMetrics:
    """Always-on, thread-safe metrics for the service.

    The observability registry is deliberately lock-free (it records
    inside one profiled run); the service updates its own registry under
    a lock — many handler and worker threads write concurrently — and
    mirrors every update into the profile-gated tracing module, so a
    ``repro-lumos serve --profile`` run reports the same numbers
    ``GET /v1/metricz`` serves.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._busy = 0

    def count(self, name: str, n: float = 1.0) -> None:
        with self._lock:
            self.registry.count(name, n)
        observability.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.gauge(name, value)
        observability.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.observe(name, value)
        observability.observe(name, value)

    def worker_busy(self, delta: int) -> None:
        """Track the busy-worker gauge as a count (N workers, one gauge)."""
        with self._lock:
            self._busy += delta
            self.registry.gauge("service.busy_workers", self._busy)
            busy = self._busy
        observability.gauge("service.busy_workers", busy)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return self.registry.snapshot()


class Worker:
    """One queue-draining evaluation loop (thread- or process-hosted)."""

    def __init__(self, store: JobStore, registry: TraceRegistry,
                 cache_root: str, *, metrics: ServiceMetrics | None = None,
                 worker_id: str = "worker-0",
                 poll_interval: float = 0.05) -> None:
        self.store = store
        self.registry = registry
        self.cache_root = cache_root
        self.metrics = metrics or ServiceMetrics()
        self.worker_id = worker_id
        self.poll_interval = poll_interval
        self.jobs_processed = 0
        self._studies: dict[tuple[str, str], Study] = {}

    # -- study memoization ---------------------------------------------------

    def _study_for(self, record: JobRecord) -> Study:
        """The memoized study of one (bundle hash, base configuration)."""
        base = record.payload.get("base")
        if base is None:
            base = (record.payload.get("spec") or {}).get("base") or {}
        key = (record.bundle_hash, hash_json(base)[:16])
        study = self._studies.get(key)
        if study is None:
            bundle, _ = self.registry.resolve(record.trace)
            spec = SweepSpec.from_json({"base": base})
            study = Study.from_trace(bundle, model=spec.base_model,
                                     parallelism=spec.base_parallelism,
                                     training=spec.training(),
                                     inference=spec.inference)
            self._studies[key] = study
        return study

    # -- evaluation ----------------------------------------------------------

    def _evaluate(self, record: JobRecord) -> tuple[dict[str, Any], dict[str, Any]]:
        """Run one claimed job; returns (result payload, cache stats)."""
        study = self._study_for(record)
        # A fresh cache handle per job keeps hit/miss counters per-job
        # while the entries themselves live in the shared on-disk root.
        cache = SweepCache(self.cache_root)
        if record.kind == "predict":
            prediction = study.predict(record.payload["target"])
            result = predict_result_payload(
                prediction, slo_ms=record.payload.get("slo_ms"))
        else:
            spec = SweepSpec.from_json(record.payload["spec"])
            swept = run_sweep(study.trace, spec, workers=1, cache=cache,
                              study=study)
            result = sweep_result_payload(swept)
        return result, cache_stats_json(cache.stats)

    def run_once(self) -> bool:
        """Claim and process one job; False when the queue was empty."""
        record = self.store.claim_next(self.worker_id)
        if record is None:
            return False
        claimed = time.time()
        wait_ms = max(0.0, (claimed - record.submitted_unix) * 1000.0)
        observability.record_span(
            "service.queue_wait", start_unix=record.submitted_unix,
            end_unix=claimed, stage="queue_wait", job=record.job_id)
        self.metrics.observe("service.queue_wait_ms", wait_ms)
        self.metrics.gauge("service.queue_depth", self.store.queue_depth())
        try:
            with observability.trace_span("service.run", stage="run",
                                          job=record.job_id, kind=record.kind,
                                          trace=record.trace):
                result, cache = self._evaluate(record)
        except Exception as error:  # every failure becomes a typed record
            refusal = error_for_exception(error)
            self.store.mark_failed(record, refusal.to_json()["error"])
            self.metrics.count("service.jobs.failed")
        else:
            self.store.mark_done(record, result, cache)
            self.metrics.count("service.jobs.completed")
            self.metrics.observe("service.cache_hit_rate", cache["hit_rate"])
        finally:
            # Release per-target sessions after every job so a long-lived
            # worker's memory is bounded by the calibrated cores, not by
            # every scenario grid it ever evaluated.
            for study in self._studies.values():
                study.release()
            self.jobs_processed += 1
            self.metrics.observe(
                "service.job_latency_ms",
                max(0.0, (time.time() - record.submitted_unix) * 1000.0))
        return True

    def run_forever(self, stop: threading.Event) -> None:
        """Drain the queue until ``stop`` is set (the serve loop's body)."""
        while not stop.is_set():
            self.metrics.worker_busy(+1)
            busy = True
            try:
                busy = self.run_once()
            finally:
                self.metrics.worker_busy(-1)
            if not busy:
                stop.wait(self.poll_interval)
