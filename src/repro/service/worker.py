"""Queue-polling workers that evaluate service jobs.

A :class:`Worker` drains the :class:`~repro.service.jobs.JobStore`:
claim the oldest queued job, rebuild its :class:`~repro.api.Study`, run
the sweep (or single prediction) with the *shared* on-disk
:class:`~repro.sweep.cache.SweepCache`, and write the result payload
plus the job's own :class:`~repro.sweep.cache.CacheStats` back to the
job record.  Studies are memoized per (bundle hash, base configuration):
the first job against a bundle pays for replay and calibration, every
later job against the same bundle reuses them — and because the sweep
cache is content-addressed and shared across workers and users, popular
scenario grids are answered entirely from cache (a warm identical
resubmission reports ``cache_hit_rate == 1.0``).

While a job runs, the worker heartbeats its claim lease on a side
thread (interval = a quarter of the lease), so a *healthy* slow job is
never reclaimed, while a SIGKILLed worker stops heartbeating and its
job is requeued by any surviving store once the lease expires.  A
worker whose lease *was* reclaimed (e.g. it stalled past the deadline)
finishes its run normally — the store's stale-attempt guard discards
the late result instead of clobbering the retry.

:class:`WorkerFleet` hosts N workers as a dedicated process over a
shared ``--root`` (the ``repro-lumos work`` subcommand): every state
transition goes through atomic snapshot writes and ``O_EXCL`` lease
files, so fleets on NFS-style shared roots coexist with the serving
process without coordination.  SIGTERM drains gracefully — the in-flight
job finishes, its lease is released, the process exits 0.

Library errors become typed job failures through
:func:`~repro.service.protocol.error_for_exception` — an invalid spec or
an unsupported target fails *that job* with a stable code; the worker
itself never dies on a bad submission.

Observability follows the ``stage`` span convention
(:func:`~repro.observability.tracing.trace_span`): each processed job
records a ``service.queue_wait`` span (via
:func:`~repro.observability.tracing.record_span` — the wait elapsed
before the worker could open a span) and a ``service.run`` span, plus
queue-wait / job-latency / cache-hit-rate histograms on the service's
own always-on :class:`ServiceMetrics` registry.  The busy-worker gauge
moves only when a job is actually claimed — an idle polling fleet
truthfully reports ``service.busy_workers == 0``.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Mapping

from repro.api.study import Study
from repro.observability import tracing as observability
from repro.observability.metrics import MetricsRegistry
from repro.service.jobs import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    JobRecord,
    JobStore,
    TraceRegistry,
)
from repro.service.protocol import (
    cache_stats_json,
    error_for_exception,
    predict_result_payload,
    sweep_result_payload,
)
from repro.sweep.cache import SweepCache
from repro.sweep.hashing import hash_json
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec


class ServiceMetrics:
    """Always-on, thread-safe metrics for the service.

    The observability registry is deliberately lock-free (it records
    inside one profiled run); the service updates its own registry under
    a lock — many handler and worker threads write concurrently — and
    mirrors every update into the profile-gated tracing module, so a
    ``repro-lumos serve --profile`` run reports the same numbers
    ``GET /v1/metricz`` serves.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._busy = 0
        # Seed the fleet gauges so an idle service *reports* idle instead
        # of omitting the gauge entirely.
        self.registry.gauge("service.busy_workers", 0.0)
        self.registry.gauge("service.queue_depth", 0.0)

    def count(self, name: str, n: float = 1.0) -> None:
        with self._lock:
            self.registry.count(name, n)
        observability.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.gauge(name, value)
        observability.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.observe(name, value)
        observability.observe(name, value)

    def worker_busy(self, delta: int) -> None:
        """Track the busy-worker gauge as a count (N workers, one gauge)."""
        with self._lock:
            self._busy += delta
            self.registry.gauge("service.busy_workers", self._busy)
            busy = self._busy
        observability.gauge("service.busy_workers", busy)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return self.registry.snapshot()


# -- webhooks -----------------------------------------------------------------

def deliver_webhook(store: JobStore, record: JobRecord, *,
                    metrics: ServiceMetrics | None = None, tries: int = 3,
                    backoff: float = 0.2, timeout: float = 10.0) -> bool:
    """POST one terminal job record to its webhook URL.

    Bounded retries with exponential backoff; the outcome — delivered or
    exhausted — is journaled either way, so a dead receiver is a
    post-mortem line, never a worker stall.
    """
    if not record.webhook or not record.terminal:
        return False
    body = json.dumps({"job": record.public_json()}).encode("utf-8")
    last_error: Exception | None = None
    for attempt in range(1, max(1, tries) + 1):
        if attempt > 1:
            time.sleep(backoff * (2 ** (attempt - 2)))
        request = urllib.request.Request(
            record.webhook, data=body, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with contextlib.closing(
                    urllib.request.urlopen(request, timeout=timeout)):
                pass
        except (urllib.error.URLError, OSError, ValueError) as error:
            last_error = error
            continue
        store.journal_event("webhook_delivered", record,
                            url=record.webhook, attempt=attempt)
        if metrics is not None:
            metrics.count("service.webhooks.delivered")
        return True
    store.journal_event("webhook_failed", record, url=record.webhook,
                        error=str(last_error))
    if metrics is not None:
        metrics.count("service.webhooks.failed")
    return False


def deliver_webhook_async(store: JobStore, record: JobRecord, *,
                          metrics: ServiceMetrics | None = None,
                          tries: int = 3, backoff: float = 0.2,
                          timeout: float = 10.0) -> threading.Thread | None:
    """Fire-and-forget :func:`deliver_webhook` on a daemon thread."""
    if not record.webhook or not record.terminal:
        return None
    thread = threading.Thread(
        target=deliver_webhook, args=(store, record),
        kwargs={"metrics": metrics, "tries": tries, "backoff": backoff,
                "timeout": timeout},
        name=f"webhook-{record.job_id[:8]}", daemon=True)
    thread.start()
    return thread


class Worker:
    """One queue-draining evaluation loop (thread- or process-hosted)."""

    def __init__(self, store: JobStore, registry: TraceRegistry,
                 cache_root: str, *, metrics: ServiceMetrics | None = None,
                 worker_id: str = "worker-0",
                 poll_interval: float = 0.05) -> None:
        self.store = store
        self.registry = registry
        self.cache_root = cache_root
        self.metrics = metrics or ServiceMetrics()
        self.worker_id = worker_id
        self.poll_interval = poll_interval
        self.jobs_processed = 0
        self._studies: dict[tuple[str, str], Study] = {}

    # -- study memoization ---------------------------------------------------

    def _study_for(self, record: JobRecord) -> Study:
        """The memoized study of one (bundle hash, base configuration)."""
        base = record.payload.get("base")
        if base is None:
            base = (record.payload.get("spec") or {}).get("base") or {}
        key = (record.bundle_hash, hash_json(base)[:16])
        study = self._studies.get(key)
        if study is None:
            bundle, _ = self.registry.resolve(record.trace)
            spec = SweepSpec.from_json({"base": base})
            study = Study.from_trace(bundle, model=spec.base_model,
                                     parallelism=spec.base_parallelism,
                                     training=spec.training(),
                                     inference=spec.inference)
            self._studies[key] = study
        return study

    # -- evaluation ----------------------------------------------------------

    def _evaluate(self, record: JobRecord) -> tuple[dict[str, Any], dict[str, Any]]:
        """Run one claimed job; returns (result payload, cache stats)."""
        study = self._study_for(record)
        # A fresh cache handle per job keeps hit/miss counters per-job
        # while the entries themselves live in the shared on-disk root.
        cache = SweepCache(self.cache_root)
        if record.kind == "predict":
            prediction = study.predict(record.payload["target"])
            result = predict_result_payload(
                prediction, slo_ms=record.payload.get("slo_ms"))
        else:
            spec = SweepSpec.from_json(record.payload["spec"])
            swept = run_sweep(study.trace, spec, workers=1, cache=cache,
                              study=study)
            result = sweep_result_payload(swept)
        return result, cache_stats_json(cache.stats)

    def _heartbeat_loop(self, record: JobRecord, stop: threading.Event) -> None:
        interval = max(0.05, self.store.lease_seconds / 4.0)
        while not stop.wait(interval):
            if not self.store.heartbeat(record, self.worker_id):
                # The lease was reclaimed out from under us; stop
                # extending it — the stale-attempt guard in the store
                # will discard our (now superseded) result.
                return

    def run_once(self) -> bool:
        """Claim and process one job; False when the queue was empty."""
        record = self.store.claim_next(self.worker_id)
        if record is None:
            return False
        # Busy only now that a job is actually in hand — polling an
        # empty queue is idleness, not work.
        self.metrics.worker_busy(+1)
        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, args=(record, heartbeat_stop),
            name=f"heartbeat-{record.job_id[:8]}", daemon=True)
        heartbeat.start()
        claimed = time.time()
        wait_ms = max(0.0, (claimed - record.submitted_unix) * 1000.0)
        observability.record_span(
            "service.queue_wait", start_unix=record.submitted_unix,
            end_unix=claimed, stage="queue_wait", job=record.job_id)
        self.metrics.observe("service.queue_wait_ms", wait_ms)
        self.metrics.gauge("service.queue_depth", self.store.queue_depth())
        try:
            with observability.trace_span("service.run", stage="run",
                                          job=record.job_id, kind=record.kind,
                                          trace=record.trace):
                result, cache = self._evaluate(record)
        except Exception as error:  # every failure becomes a typed record
            refusal = error_for_exception(error)
            self.store.mark_failed(record, refusal.to_json()["error"])
            self.metrics.count("service.jobs.failed")
        else:
            self.store.mark_done(record, result, cache)
            self.metrics.count("service.jobs.completed")
            self.metrics.observe("service.cache_hit_rate", cache["hit_rate"])
        finally:
            heartbeat_stop.set()
            heartbeat.join(timeout=1.0)
            # Release per-target sessions after every job so a long-lived
            # worker's memory is bounded by the calibrated cores, not by
            # every scenario grid it ever evaluated.
            for study in self._studies.values():
                study.release()
            self.jobs_processed += 1
            self.metrics.worker_busy(-1)
            self.metrics.gauge("service.queue_depth", self.store.queue_depth())
            self.metrics.observe(
                "service.job_latency_ms",
                max(0.0, (time.time() - record.submitted_unix) * 1000.0))
        # Webhook delivery rides on the store's ``on_terminal`` hook
        # (set by the app/fleet): it fires only when a finish actually
        # *applied* — a stale retry's discarded result notifies nobody —
        # and also covers worker-lost failures no worker produced.
        return True

    def run_forever(self, stop: threading.Event) -> None:
        """Drain the queue until ``stop`` is set (the serve loop's body)."""
        while not stop.is_set():
            self.metrics.gauge(
                f"service.worker.{self.worker_id}.alive_unix", time.time())
            if not self.run_once():
                stop.wait(self.poll_interval)


class WorkerFleet:
    """A dedicated worker process draining a shared service root.

    This is what ``repro-lumos work --root DIR`` runs: N worker threads
    over one :class:`JobStore`, sharing the root's sweep cache and
    bundle spool with every server and fleet on the same root.  Bundles
    resolve from ``--trace NAME=DIR`` registrations plus the root's
    ``bundles/`` spool (where servers park inline uploads), so a fleet
    started before an upload still picks the job up.
    """

    def __init__(self, root: str | Path, *,
                 traces: Mapping[str, str | Path] | None = None,
                 cache_root: str | Path | None = None, workers: int = 1,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poll_interval: float = 0.05,
                 metrics: ServiceMetrics | None = None) -> None:
        self.root = Path(root)
        self.store = JobStore(self.root, lease_seconds=lease_seconds,
                              max_attempts=max_attempts)
        self.registry = TraceRegistry(spool_dir=self.root / "bundles")
        for name, path in (traces or {}).items():
            self.registry.register(name, path)
        self.cache_root = str(cache_root or self.root / "cache")
        self.metrics = metrics or ServiceMetrics()
        # Terminal records this fleet's store writes — its own finishes
        # and worker-lost reclaims — notify webhook subscribers.  The
        # URLs were vetted at admission by the server that accepted the
        # submission, so the fleet trusts what is on the shared root.
        self.store.on_terminal = lambda record: deliver_webhook_async(
            self.store, record, metrics=self.metrics)
        prefix = f"{socket.gethostname()}:{os.getpid()}"
        self.workers = [
            Worker(self.store, self.registry, self.cache_root,
                   metrics=self.metrics, worker_id=f"{prefix}:{index}",
                   poll_interval=poll_interval)
            for index in range(max(1, int(workers)))
        ]

    @property
    def jobs_processed(self) -> int:
        return sum(worker.jobs_processed for worker in self.workers)

    def run(self, stop: threading.Event | None = None, *,
            install_signals: bool = False) -> int:
        """Drain until ``stop`` — or SIGTERM/SIGINT with signals installed.

        The drain is graceful: workers finish (and release the lease of)
        their in-flight job before exiting; only *then* does this return
        0, so ``kill -TERM`` never strands a ``running`` record.
        """
        stop = stop or threading.Event()
        if install_signals:
            def _drain(signum: int, frame: Any) -> None:
                stop.set()
            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
        threads = [
            threading.Thread(target=worker.run_forever, args=(stop,),
                             name=worker.worker_id)
            for worker in self.workers
        ]
        for thread in threads:
            thread.start()
        try:
            while not stop.is_set():
                stop.wait(0.2)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        return 0
