"""Sweep-as-a-service: an HTTP API + worker queue over the shared cache.

The service front end turns the what-if platform into a multi-user
system: clients submit a sweep (or single prediction) against an
uploaded or server-registered trace bundle, poll job status, and fetch
ranked / Pareto results — while worker threads (or separate worker
processes sharing the same job root) drain the queue through the
memoized :class:`~repro.api.Study` machinery and the content-addressed
on-disk :class:`~repro.sweep.cache.SweepCache`, so popular scenario
grids are answered from cache across users.

Layers (each its own module):

:mod:`repro.service.protocol`
    Versioned JSON request/response schemas and the stable typed error
    codes (4xx for spec/target/study refusals, never a traceback).
:mod:`repro.service.jobs`
    The persistent job store (JSON snapshots + journal + ``O_EXCL``
    claim *leases* with heartbeats and crash recovery — an expired
    lease requeues its job, capped by ``max_attempts``) with
    content-hash job ids — identical submissions dedupe to one job —
    and the named trace registry.
:mod:`repro.service.worker`
    Queue-polling workers, per-bundle study memoization, per-job cache
    stats, the always-on thread-safe service metrics, webhook delivery,
    and :class:`WorkerFleet` — the dedicated ``repro-lumos work``
    process draining a shared root.
:mod:`repro.service.server`
    The zero-new-dependency ``ThreadingHTTPServer`` front end
    (``/v1/jobs``, ``/v1/healthz``, ``/v1/metricz``) with graceful
    SIGTERM/SIGINT drain.
:mod:`repro.service.client`
    The stdlib ``urllib`` client used by tests, examples and the
    ``repro-lumos serve`` / ``submit`` CLI subcommands.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobRecord, JobStore, TraceRegistry, job_id_for
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SubmitRequest,
    bundle_from_json,
    bundle_to_json,
    error_for_exception,
    predict_result_payload,
    sweep_result_payload,
    validate_result_payload,
)
from repro.service.server import ServiceApp
from repro.service.worker import ServiceMetrics, Worker, WorkerFleet, deliver_webhook

__all__ = [
    "PROTOCOL_VERSION",
    "JobRecord",
    "JobStore",
    "ProtocolError",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "SubmitRequest",
    "TraceRegistry",
    "Worker",
    "WorkerFleet",
    "bundle_from_json",
    "bundle_to_json",
    "deliver_webhook",
    "error_for_exception",
    "job_id_for",
    "predict_result_payload",
    "sweep_result_payload",
    "validate_result_payload",
]
