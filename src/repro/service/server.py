"""Zero-new-dependency HTTP front end for the sweep service.

:class:`ServiceApp` wires a stdlib ``ThreadingHTTPServer`` to the job
store, the trace registry, in-process worker threads and the service
metrics; the handler is a thin JSON layer over the app's methods.

Endpoints (all JSON):

``POST /v1/jobs``
    Submit a sweep or single-prediction job
    (:class:`~repro.service.protocol.SubmitRequest`).  Responds 202 with
    ``{"job": {...}, "deduped": bool}``; duplicate submissions of an
    identical (bundle, spec) pair dedupe to one queued/running job.
``GET /v1/jobs/{id}``
    Job status (states ``queued → running → done/failed/cancelled``).
``GET /v1/jobs/{id}/result``
    The finished job's result payload — for sweeps the expansion-order
    rows plus the ranked order and Pareto frontier from
    ``sweep.analysis``.  409 ``job-not-done`` / ``job-failed`` before
    then.
``GET /v1/healthz``
    Liveness plus queue/worker/registered-trace summary.
``GET /v1/metricz``
    The always-on :class:`~repro.service.worker.ServiceMetrics` registry
    snapshot.

Every refusal is a typed 4xx JSON body with a stable machine-readable
``code`` (:mod:`repro.service.protocol`); unexpected exceptions map to
one 500 ``internal`` body, never a traceback over the wire.

Shutdown is graceful: SIGTERM/SIGINT (or :meth:`ServiceApp.stop`) stops
accepting connections, signals the workers and joins them — a job mid-run
finishes and persists before the process exits.
"""

from __future__ import annotations

import json
import signal
import threading
import urllib.parse
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.api import KIND_HARDWARE, KIND_PARALLELISM, KIND_SERVING, parse_target
from repro.api.errors import StudyError
from repro.observability import tracing as observability
from repro.service.jobs import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    STATE_DONE,
    STATE_FAILED,
    JobRecord,
    JobStore,
    TraceRegistry,
    job_id_for,
)
from repro.service.protocol import (
    CODE_BAD_REQUEST,
    CODE_INTERNAL,
    CODE_JOB_FAILED,
    CODE_JOB_NOT_DONE,
    CODE_UNKNOWN_JOB,
    PROTOCOL_VERSION,
    ProtocolError,
    SubmitRequest,
    error_for_exception,
)
from repro.service.worker import ServiceMetrics, Worker, deliver_webhook_async
from repro.sweep.spec import SweepSpec, WhatIfSpec
from repro.version import __version__

#: SweepSpec's own defaults, used when neither the trace metadata nor the
#: request names a base knob.
_BASE_DEFAULTS = {"model": "gpt3-15b", "parallelism": "2x2x4",
                  "micro_batch_size": 2, "num_microbatches": 4}

#: Ceiling on one ``GET /v1/jobs/{id}?wait=`` long-poll, so a client
#: typo cannot park a handler thread for hours.
MAX_WAIT_SECONDS = 60.0


def base_from_metadata(metadata: Mapping[str, Any],
                       overrides: Mapping[str, Any]) -> dict[str, Any]:
    """The spec ``base`` block of one trace: metadata + request overrides.

    The emulator records ``model`` / ``parallelism`` (and for serving
    episodes the ``inference`` block; for training ``num_microbatches``)
    in the bundle metadata, so most requests need no ``base`` at all.
    ``micro_batch_size`` is not in trace metadata — training clients
    whose base differs from the default pass it in ``base``.
    """
    base = dict(_BASE_DEFAULTS)
    for key in ("model", "parallelism", "num_microbatches"):
        if key in metadata:
            base[key] = metadata[key]
    if metadata.get("workload") == "serving" and "inference" in metadata:
        base["inference"] = metadata["inference"]
    base.update(overrides)
    return base


class _Handler(BaseHTTPRequestHandler):
    """JSON request plumbing; all logic lives on the app."""

    protocol_version = "HTTP/1.1"
    server: "_Server"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, *args: Any) -> None:
        pass  # requests are counted in metrics, not printed to stderr

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, error: ProtocolError) -> None:
        self._send(error.status, error.to_json())

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(
                CODE_BAD_REQUEST, f"request body is not valid JSON: {error}") from error

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # http.server handler API
        app = self.server.app
        app.metrics.count("service.requests")
        try:
            raw_path, _, query = self.path.partition("?")
            path = raw_path.rstrip("/")
            if path == "/v1/healthz":
                self._send(200, app.health())
            elif path == "/v1/metricz":
                self._send(200, app.metricz())
            elif path.startswith("/v1/jobs/") and path.endswith("/result"):
                job_id = path[len("/v1/jobs/"):-len("/result")]
                self._send(200, app.job_result(job_id))
            elif path.startswith("/v1/jobs/"):
                params = urllib.parse.parse_qs(query)
                wait = params.get("wait", [None])[-1]
                self._send(200, app.job_status(path[len("/v1/jobs/"):],
                                               wait=wait))
            else:
                raise ProtocolError(CODE_BAD_REQUEST, f"no route for GET {path}")
        except ProtocolError as error:
            self._send_error(error)
        except Exception as error:  # one 500 body, never a traceback
            self._send_error(ProtocolError(CODE_INTERNAL, str(error)))

    def do_POST(self) -> None:  # http.server handler API
        app = self.server.app
        app.metrics.count("service.requests")
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/v1/jobs":
                self._send(202, app.submit(self._read_json()))
            elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/v1/jobs/"):-len("/cancel")]
                self._send(200, app.cancel(job_id))
            else:
                raise ProtocolError(CODE_BAD_REQUEST, f"no route for POST {path}")
        except ProtocolError as error:
            self._send_error(error)
        except Exception as error:
            self._send_error(ProtocolError(CODE_INTERNAL, str(error)))


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    app: "ServiceApp"


class ServiceApp:
    """The sweep service: HTTP front end + job store + worker threads."""

    def __init__(self, root: str | Path, *, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 1,
                 traces: Mapping[str, str | Path] | None = None,
                 cache_root: str | Path | None = None,
                 allow_uploads: bool = True,
                 poll_interval: float = 0.05,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 webhook_hosts: Sequence[str] | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.store = JobStore(self.root, lease_seconds=lease_seconds,
                              max_attempts=max_attempts)
        spool = (self.root / "bundles") if allow_uploads else None
        if spool is not None:
            spool.mkdir(parents=True, exist_ok=True)
        self.registry = TraceRegistry(spool_dir=spool)
        for name, path in (traces or {}).items():
            self.registry.register(name, path)
        self.cache_root = str(cache_root if cache_root is not None
                              else self.root / "sweep-cache")
        self.metrics = ServiceMetrics()
        # Webhooks are POSTs *from the service's network* to a
        # submitter-chosen URL — an SSRF vector unless the operator opts
        # in.  ``None`` (the default) refuses webhook submissions
        # outright; ``("*",)`` allows any host; anything else is an
        # exact-hostname allowlist.  The same policy gates delivery, so
        # a strict server never POSTs records admitted elsewhere on a
        # shared root.
        self.webhook_hosts = (tuple(webhook_hosts)
                              if webhook_hosts is not None else None)
        self.store.on_terminal = self._notify_terminal
        self.worker_count = max(0, int(workers))
        self.poll_interval = poll_interval
        self._server = _Server((host, port), _Handler)
        self._server.app = self
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self.workers: list[Worker] = [
            Worker(self.store, self.registry, self.cache_root,
                   metrics=self.metrics, worker_id=f"worker-{index}",
                   poll_interval=poll_interval)
            for index in range(self.worker_count)]

    # -- addresses -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port 0 resolves at construction."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- webhooks ------------------------------------------------------------

    def _webhook_allowed(self, url: str) -> bool:
        if self.webhook_hosts is None:
            return False
        if "*" in self.webhook_hosts:
            return True
        host = (urllib.parse.urlsplit(url).hostname or "").lower()
        return host in {allowed.lower() for allowed in self.webhook_hosts}

    def _check_webhook(self, url: str) -> None:
        """Refuse a webhook URL the operator's policy does not allow."""
        if self._webhook_allowed(url):
            return
        if self.webhook_hosts is None:
            raise ProtocolError(
                CODE_BAD_REQUEST,
                "this server does not accept webhooks; start it with "
                "--allow-webhooks (any host) or --webhook-host HOST")
        host = urllib.parse.urlsplit(url).hostname or ""
        raise ProtocolError(
            CODE_BAD_REQUEST,
            f"webhook host {host!r} is not in this server's allowlist "
            f"({', '.join(self.webhook_hosts)})")

    def _notify_terminal(self, record: JobRecord) -> None:
        """The store's ``on_terminal`` hook: deliver the webhook, gated
        by the same policy that admitted it (defense in depth against
        records a *different*, laxer server wrote to a shared root)."""
        if record.webhook and self._webhook_allowed(record.webhook):
            deliver_webhook_async(self.store, record, metrics=self.metrics)

    # -- request handling (shared by the HTTP layer and tests) ---------------

    def submit(self, payload: Any) -> dict[str, Any]:
        """Admit one ``POST /v1/jobs`` body; returns the response body."""
        request = SubmitRequest.parse(payload)
        if request.webhook is not None:
            self._check_webhook(request.webhook)
        with observability.trace_span("service.admit", stage="admit",
                                      kind=request.kind):
            if request.bundle is not None:
                trace_name = self.registry.store_inline(request.bundle)
            else:
                trace_name = request.trace
            bundle, bundle_hash = self.registry.resolve(trace_name)
            try:
                job_payload = self._job_payload(request, bundle.metadata)
            except (StudyError, ValueError) as error:
                raise error_for_exception(error) from error
            job_id = job_id_for(bundle_hash, request.kind, job_payload)
            # The webhook rides on the record, *not* in the hashed
            # payload — identical (bundle, spec) submissions still dedupe
            # to one job id; a deduped submission keeps the first webhook.
            record = JobRecord(job_id=job_id, kind=request.kind,
                               trace=trace_name, bundle_hash=bundle_hash,
                               payload=job_payload, webhook=request.webhook)
            record, deduped = self.store.submit(record, reuse=request.reuse)
        self.metrics.count("service.jobs.submitted")
        if deduped:
            self.metrics.count("service.jobs.deduped")
        self.metrics.gauge("service.queue_depth", self.store.queue_depth())
        return {"job": record.public_json(), "deduped": deduped}

    def _job_payload(self, request: SubmitRequest,
                     metadata: Mapping[str, Any]) -> dict[str, Any]:
        """Canonicalize and validate the job payload at admission.

        Validation runs here so malformed specs and unsupported targets
        refuse with a 4xx at submit time instead of failing the job later
        — the job id then hashes a *canonical* payload, which is what
        makes dedupe robust to equivalent spellings.
        """
        base = base_from_metadata(metadata, request.base)
        if request.kind == "predict":
            # Parsing canonicalises the target (and refuses malformed
            # ones with the PredictError → 4xx mapping); str(Target)
            # round-trips, including composite workload+hardware targets,
            # so every spelling of one configuration hashes to one job.
            target = parse_target(request.target)
            payload: dict[str, Any] = {"base": base,
                                       "target": str(target)}
            if request.slo_ms is not None:
                payload["slo_ms"] = request.slo_ms
            return payload
        if request.spec is not None:
            spec_json = dict(request.spec)
            spec_json["base"] = {**base, **dict(spec_json.get("base") or {})}
            spec = SweepSpec.from_json(spec_json)
        else:
            spec = self._spec_from_axes(request, base)
        spec.validate()
        return {"base": spec.base_json(), "spec": spec.to_json()}

    def _spec_from_axes(self, request: SubmitRequest,
                        base: Mapping[str, Any]) -> SweepSpec:
        parallelism: list[str] = []
        models: list[str] = []
        serving: list[str] = []
        hardware: list[str] = []
        for text in request.targets:
            # Composite workload+hardware targets decompose onto the
            # spec's axes (which re-cross them, so "tp=8,gpu=B200" also
            # evaluates the reference points "tp=8" and "gpu=B200").
            for kind, label in parse_target(text).manipulations:
                if kind == KIND_PARALLELISM:
                    parallelism.append(label)
                elif kind == KIND_SERVING:
                    serving.append(label)
                elif kind == KIND_HARDWARE:
                    name = label[len("gpu="):] if label.startswith("gpu=") else label
                    if name not in hardware:
                        hardware.append(name)
                else:
                    models.append(label)
        payload: dict[str, Any] = {
            "base": dict(base),
            "parallelism": parallelism,
            "models": models,
            "whatif": [],
            "serving": serving,
            "hardware": hardware,
        }
        if request.slo_ms is not None:
            payload["base"]["slo_ms"] = request.slo_ms
        spec = SweepSpec.from_json(payload)
        if request.whatif:
            spec = replace(spec, whatif=tuple(
                WhatIfSpec.parse(text) for text in request.whatif))
        return spec

    def job_status(self, job_id: str,
                   wait: str | float | None = None) -> dict[str, Any]:
        """Job status; with ``wait=`` seconds, long-poll for a terminal.

        The long-poll parks on the store's per-job condition — an
        in-process worker's terminal transition answers immediately; a
        fleet worker's transition is observed by the store's bounded
        refresh loop.  The response is the same body either way: clients
        inspect ``job.state`` to see whether the wait was satisfied.
        """
        if wait is not None:
            try:
                seconds = float(wait)
            except (TypeError, ValueError):
                raise ProtocolError(
                    CODE_BAD_REQUEST,
                    f"'wait' must be a number of seconds, got {wait!r}") from None
            seconds = min(max(0.0, seconds), MAX_WAIT_SECONDS)
            record = self.store.wait_for_terminal(job_id, seconds)
        else:
            record = self.store.get(job_id)
        if record is None:
            raise ProtocolError(CODE_UNKNOWN_JOB, f"no job {job_id!r}")
        return {"job": record.public_json()}

    def job_result(self, job_id: str) -> dict[str, Any]:
        record = self.store.get(job_id)
        if record is None:
            raise ProtocolError(CODE_UNKNOWN_JOB, f"no job {job_id!r}")
        if record.state == STATE_FAILED:
            error = record.error or {}
            raise ProtocolError(
                CODE_JOB_FAILED,
                f"job {job_id} failed "
                f"[{error.get('code', 'unknown')}]: {error.get('message', '')}")
        if record.state != STATE_DONE or record.result is None:
            raise ProtocolError(
                CODE_JOB_NOT_DONE, f"job {job_id} is {record.state}")
        return {"job": record.public_json(), "result": record.result}

    def cancel(self, job_id: str) -> dict[str, Any]:
        record = self.store.cancel(job_id)
        self.metrics.count("service.jobs.cancelled")
        self.metrics.gauge("service.queue_depth", self.store.queue_depth())
        # Cancellation is a terminal transition like any other: the
        # store's on_terminal hook notifies the webhook subscriber.
        return {"job": record.public_json()}

    def health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "queue_depth": self.store.queue_depth(),
            "workers": self.worker_count,
            "traces": self.registry.names(),
        }

    def metricz(self) -> dict[str, Any]:
        snapshot = self.metrics.snapshot()
        # Fleet-truthful gauges come straight from the store: the queue
        # depth and lease counters reflect every process on the shared
        # root, not just this server's own workers.
        self.store.refresh()
        snapshot["gauges"]["service.queue_depth"] = float(self.store.queue_depth())
        snapshot["gauges"]["service.leases.active"] = float(
            len(self.store.active_leases()))
        counters = snapshot.setdefault("counters", {})
        counters["service.leases.expired"] = float(
            counters.get("service.leases.expired", 0.0)
            + self.store.lease_expirations)
        return snapshot

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServiceApp":
        """Run the HTTP server and worker threads in the background."""
        server_thread = threading.Thread(
            target=self._server.serve_forever, name="service-http", daemon=True)
        server_thread.start()
        self._threads = [server_thread]
        for worker in self.workers:
            thread = threading.Thread(target=worker.run_forever,
                                      args=(self._stop,),
                                      name=worker.worker_id, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain: stop accepting, finish running jobs, join."""
        self._stop.set()
        self._server.shutdown()
        self._server.server_close()
        for thread in self._threads[1:]:
            thread.join(timeout=timeout)
        if self._threads:
            self._threads[0].join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "ServiceApp":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def serve_forever(self, install_signals: bool = True) -> int:
        """The blocking CLI loop: serve until SIGTERM/SIGINT, then drain."""
        if install_signals:
            def _drain(signum: int, frame: Any) -> None:
                # shutdown() blocks until serve_forever returns, so it
                # must run off the signal-handling (main) thread.
                threading.Thread(target=self._server.shutdown,
                                 daemon=True).start()

            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
        for worker in self.workers:
            thread = threading.Thread(target=worker.run_forever,
                                      args=(self._stop,),
                                      name=worker.worker_id, daemon=True)
            thread.start()
            self._threads.append(thread)
        try:
            self._server.serve_forever()
        finally:
            self._stop.set()
            for thread in self._threads:
                thread.join(timeout=30.0)
            self._threads = []
            self._server.server_close()
        return 0
