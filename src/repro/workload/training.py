"""Training-loop configuration."""

from __future__ import annotations

from dataclasses import dataclass

_DTYPE_BYTES = {"bf16": 2, "fp16": 2, "fp32": 4}


@dataclass(frozen=True)
class TrainingConfig:
    """Iteration-level training parameters.

    Attributes
    ----------
    micro_batch_size:
        Samples per micro-batch per data-parallel replica.
    num_microbatches:
        Micro-batches processed per pipeline per iteration.  Kept constant
        when scaling data parallelism (weak scaling), which matches the
        paper's scale-out experiments where per-replica work is unchanged.
    sequence_length:
        Tokens per sample.
    dtype:
        Activation/gradient datatype ("bf16", "fp16" or "fp32").
    gradient_bucket_layers:
        Number of transformer layers whose gradients share one
        data-parallel all-reduce bucket (overlapped with the backward pass).
    """

    micro_batch_size: int = 1
    num_microbatches: int = 8
    sequence_length: int = 2048
    dtype: str = "bf16"
    gradient_bucket_layers: int = 4

    def __post_init__(self) -> None:
        if self.micro_batch_size <= 0 or self.num_microbatches <= 0:
            raise ValueError("batch sizes must be positive")
        if self.sequence_length <= 0:
            raise ValueError("sequence_length must be positive")
        if self.dtype not in _DTYPE_BYTES:
            raise ValueError(f"unsupported dtype '{self.dtype}'")
        if self.gradient_bucket_layers <= 0:
            raise ValueError("gradient_bucket_layers must be positive")

    @property
    def dtype_bytes(self) -> int:
        """Bytes per element for the activation/gradient datatype."""
        return _DTYPE_BYTES[self.dtype]

    def tokens_per_replica(self) -> int:
        """Tokens processed by one data-parallel replica per iteration."""
        return self.micro_batch_size * self.num_microbatches * self.sequence_length

    def global_batch_size(self, data_parallel: int) -> int:
        """Samples per iteration across all data-parallel replicas."""
        return self.micro_batch_size * self.num_microbatches * data_parallel
