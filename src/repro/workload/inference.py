"""LLM inference (serving) workload configuration and operator decomposition.

The training path expands a (model, parallelism, training) triple into the
kernels of one 3D-parallel training iteration; this module is its serving
counterpart.  One *serving episode* processes a batch of requests through

* a **prefill** phase — the full prompt goes through every layer at once,
  so the kernels are the same large GEMM/attention shapes as a training
  forward pass; and
* ``decode_length`` **autoregressive decode steps** — each step processes
  one new token per request, so GEMMs become skinny (``m = batch``) and
  attention becomes a memory-bound sweep over the accumulated KV cache,
  with a per-step tensor-parallel all-reduce after the attention and MLP
  blocks, exactly as in Megatron-style inference.

The emulator turns these :class:`~repro.workload.operators.OpSpec` lists
into launched kernels; the serving graph manipulation
(:mod:`repro.core.manipulation.serving`) regenerates them for a target
configuration and rescales the observed kernels by the analytical ratio.

Pipeline parallelism is not supported for decode: the token loop
serialises the stages, so a PP>1 deployment would leave ``pp - 1`` stages
idle per step.  :meth:`~repro.workload.parallelism.ParallelismConfig.validate_for_inference`
rejects such degrees up front.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.workload.arrivals import ArrivalConfig
from repro.workload.model_config import ModelConfig
from repro.workload.operators import (
    CollectiveKind,
    CollectiveSpec,
    OpClass,
    OpSpec,
    _gemm,
    _memory_bound,
    layer_forward_ops,
)
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

_DTYPE_BYTES = {"bf16": 2, "fp16": 2, "fp32": 4}
_KV_DTYPE_BYTES = {"bf16": 2, "fp16": 2, "fp32": 4, "fp8": 1}

#: Values of the ``workload`` trace-metadata field.  Defined here (the
#: lowest layer that knows about workload families) so the emulator that
#: writes the metadata and the Study facade that recovers it share one
#: definition.
WORKLOAD_TRAINING = "training"
WORKLOAD_SERVING = "serving"


@dataclass(frozen=True)
class InferenceConfig:
    """Serving-episode parameters.

    Attributes
    ----------
    batch_size:
        Concurrent requests in one continuous-batching decode batch.
    prompt_length:
        Prompt tokens per request (the prefill sequence length).
    decode_length:
        Tokens generated per request (the number of decode steps).
    dtype:
        Activation/weight datatype ("bf16", "fp16" or "fp32").
    kv_dtype:
        KV-cache storage datatype; "fp8" models quantised caches.
    arrival:
        Optional request-arrival process.  When set, the episode is a
        *continuous-batching stream*: ``arrival.num_requests`` requests
        arrive over time, ``batch_size`` caps the concurrent decode
        batch, and each request runs ``decode_length`` decode steps
        after its prefill.  When ``None`` (the default) the episode is
        the fixed single-batch prefill+decode of PR 5.
    """

    batch_size: int = 8
    prompt_length: int = 512
    decode_length: int = 64
    dtype: str = "bf16"
    kv_dtype: str = "bf16"
    arrival: ArrivalConfig | None = None

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.prompt_length <= 0:
            raise ValueError("prompt_length must be positive")
        if self.decode_length <= 0:
            raise ValueError("decode_length must be positive")
        if self.dtype not in _DTYPE_BYTES:
            raise ValueError(f"unsupported dtype '{self.dtype}'")
        if self.kv_dtype not in _KV_DTYPE_BYTES:
            raise ValueError(f"unsupported kv_dtype '{self.kv_dtype}'")

    # -- datatype accounting -------------------------------------------------

    @property
    def dtype_bytes(self) -> int:
        return _DTYPE_BYTES[self.dtype]

    @property
    def kv_dtype_bytes(self) -> int:
        return _KV_DTYPE_BYTES[self.kv_dtype]

    @property
    def is_stream(self) -> bool:
        """True for continuous-batching stream episodes (arrival process set)."""
        return self.arrival is not None

    # -- token accounting ----------------------------------------------------

    @property
    def prefill_tokens(self) -> int:
        """Tokens processed by the prefill phase across the batch."""
        return self.batch_size * self.prompt_length

    @property
    def generated_tokens(self) -> int:
        """Tokens generated across the batch over the whole episode."""
        return self.batch_size * self.decode_length

    @property
    def max_context_length(self) -> int:
        """Longest context any decode step attends over."""
        return self.prompt_length + self.decode_length - 1

    def context_length(self, step: int) -> int:
        """Tokens already in the KV cache when decode step ``step`` runs."""
        if not 0 <= step < self.decode_length:
            raise ValueError(f"decode step {step} outside [0, {self.decode_length})")
        return self.prompt_length + step

    # -- KV-cache accounting -------------------------------------------------

    def kv_bytes_per_token_layer(self, model: ModelConfig,
                                 parallel: ParallelismConfig) -> float:
        """KV-cache bytes one token adds to one layer's rank-local cache.

        K and V each store ``attention_dim / tp`` elements per token per
        layer under Megatron head partitioning.
        """
        heads_local = max(1, model.n_heads // parallel.tp)
        return 2.0 * heads_local * model.d_head * self.kv_dtype_bytes

    def kv_cache_bytes(self, model: ModelConfig, parallel: ParallelismConfig,
                       context: int | None = None) -> float:
        """Rank-local KV-cache footprint for the whole batch at ``context`` tokens.

        ``context`` defaults to the fully-decoded episode
        (``prompt_length + decode_length``).
        """
        if context is None:
            context = self.prompt_length + self.decode_length
        return (self.batch_size * context * model.n_layers
                * self.kv_bytes_per_token_layer(model, parallel))

    def kv_cache_gb(self, model: ModelConfig, parallel: ParallelismConfig,
                    context: int | None = None) -> float:
        """Rank-local KV-cache footprint in GiB."""
        return self.kv_cache_bytes(model, parallel, context) / 2**30

    # -- derivation and serialisation ----------------------------------------

    def with_changes(self, batch_size: int | None = None,
                     prompt_length: int | None = None,
                     decode_length: int | None = None) -> "InferenceConfig":
        """Return a copy with the given fields replaced."""
        return replace(
            self,
            batch_size=batch_size if batch_size is not None else self.batch_size,
            prompt_length=prompt_length if prompt_length is not None else self.prompt_length,
            decode_length=decode_length if decode_length is not None else self.decode_length,
        )

    def prefill_training(self) -> TrainingConfig:
        """The :class:`TrainingConfig` whose forward pass equals this prefill.

        Prefill is exactly one forward micro-batch of ``batch_size``
        sequences of ``prompt_length`` tokens, which lets the serving
        builder reuse the training operator decomposition verbatim.
        """
        return TrainingConfig(micro_batch_size=self.batch_size, num_microbatches=1,
                              sequence_length=self.prompt_length, dtype=self.dtype)

    def to_json(self) -> dict[str, Any]:
        payload = {
            "batch_size": self.batch_size,
            "prompt_length": self.prompt_length,
            "decode_length": self.decode_length,
            "dtype": self.dtype,
            "kv_dtype": self.kv_dtype,
        }
        # Omitted when unset so pre-stream serving traces (and their golden
        # snapshots / cache keys) serialise byte-identically.
        if self.arrival is not None:
            payload["arrival"] = self.arrival.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "InferenceConfig":
        arrival = payload.get("arrival")
        return cls(
            batch_size=int(payload.get("batch_size", cls.batch_size)),
            prompt_length=int(payload.get("prompt_length", cls.prompt_length)),
            decode_length=int(payload.get("decode_length", cls.decode_length)),
            dtype=str(payload.get("dtype", cls.dtype)),
            kv_dtype=str(payload.get("kv_dtype", cls.kv_dtype)),
            arrival=None if arrival is None else ArrivalConfig.from_json(arrival),
        )


@dataclass(frozen=True)
class ServingTarget:
    """A what-if target for a serving study: which base knobs change.

    Targets are compact ``key=value`` labels (``"batch=16"``,
    ``"tp=4,prompt=1024"``) over three topology-preserving knobs: the
    request batch size, the prompt length and the tensor-parallel degree.
    ``decode`` is deliberately not a knob — changing the number of
    generated tokens changes the task-graph *topology* (more decode
    steps), which graph manipulation cannot express; re-emulate instead.
    """

    batch_size: int | None = None
    prompt_length: int | None = None
    tensor_parallel: int | None = None

    _KEYS = ("batch", "prompt", "tp")

    def __post_init__(self) -> None:
        for value, name in ((self.batch_size, "batch"),
                            (self.prompt_length, "prompt"),
                            (self.tensor_parallel, "tp")):
            if value is not None and value <= 0:
                raise ValueError(f"serving target '{name}' must be positive")

    @classmethod
    def parse(cls, label: str) -> "ServingTarget":
        """Parse a ``key=value[,key=value...]`` serving target label."""
        values: dict[str, int] = {}
        for part in str(label).split(","):
            part = part.strip()
            if not part:
                continue
            key, _, raw = part.partition("=")
            key = key.strip().lower()
            if key in ("decode", "decode_length"):
                raise ValueError(
                    "serving targets cannot change 'decode': the number of "
                    "generated tokens changes the task-graph topology; "
                    "re-emulate the new episode instead")
            if key in ("pp", "dp"):
                raise ValueError(
                    f"serving targets cannot change '{key}': decode supports "
                    "only tensor parallelism (tp=N)")
            if key not in cls._KEYS:
                raise ValueError(
                    f"unknown serving target key '{key}' "
                    f"(expected one of {cls._KEYS})")
            if key in values:
                raise ValueError(f"duplicate serving target key '{key}'")
            try:
                values[key] = int(raw)
            except ValueError as error:
                raise ValueError(
                    f"serving target '{part}' is not an integer assignment") from error
        if not values:
            raise ValueError(
                f"empty serving target '{label}' "
                f"(expected key=value with keys {cls._KEYS})")
        return cls(batch_size=values.get("batch"),
                   prompt_length=values.get("prompt"),
                   tensor_parallel=values.get("tp"))

    def label(self) -> str:
        """Canonical label (fixed key order, so equal targets hash equal)."""
        parts = []
        if self.batch_size is not None:
            parts.append(f"batch={self.batch_size}")
        if self.prompt_length is not None:
            parts.append(f"prompt={self.prompt_length}")
        if self.tensor_parallel is not None:
            parts.append(f"tp={self.tensor_parallel}")
        return ",".join(parts)

    def resolve(self, base: InferenceConfig,
                base_parallel: ParallelismConfig) -> tuple[InferenceConfig, ParallelismConfig]:
        """Apply this target to a base configuration."""
        config = base.with_changes(batch_size=self.batch_size,
                                   prompt_length=self.prompt_length)
        parallel = base_parallel.with_changes(tensor_parallel=self.tensor_parallel)
        return config, parallel

    def is_noop(self, base: InferenceConfig, base_parallel: ParallelismConfig) -> bool:
        """True when applying the target changes nothing."""
        config, parallel = self.resolve(base, base_parallel)
        return config == base and parallel == base_parallel


def validate_tp_for_model(model: ModelConfig, tensor_parallel: int) -> None:
    """Reject TP degrees whose Megatron shards would silently drop work.

    Head, MLP and vocabulary partitioning all use integer division, so a
    degree that does not divide the sharded dimensions would model only
    part of the deployment's work and underestimate it.
    """
    for value, name in ((model.n_heads, "n_heads"), (model.d_ff, "d_ff"),
                        (model.vocab_size, "vocab_size")):
        if value % tensor_parallel:
            raise ValueError(
                f"tensor parallelism {tensor_parallel} does not divide the "
                f"model's {name} ({value}); the shards would silently drop "
                "modeled work")


# -- operator decomposition ----------------------------------------------------
# (_gemm / _memory_bound come from the training decomposition so the cost
# accounting has exactly one implementation.)


def _activation_bytes(model: ModelConfig, config: InferenceConfig, tokens: int) -> float:
    return float(tokens * model.d_model * config.dtype_bytes)


def _tp_collective(name: str, kind: str, size_bytes: float) -> OpSpec:
    return OpSpec(name=name, op_class=OpClass.COMM,
                  collective=CollectiveSpec(kind=kind, size_bytes=size_bytes, group="tp"),
                  stream_role="tp_comm")


def _decode_attention(model: ModelConfig, parallel: ParallelismConfig,
                      config: InferenceConfig, context: int) -> OpSpec:
    """The per-step KV-cache attention kernel (flash-decoding style).

    One query token per request attends over ``context`` cached tokens:
    the kernel streams the rank-local KV cache once (the dominant cost)
    and appends the new token's K/V, so it is bandwidth-bound on the KV
    traffic rather than FLOP-bound like prefill attention.
    """
    b = config.batch_size
    heads_local = max(1, model.n_heads // parallel.tp)
    a_local = heads_local * model.d_head
    kv_read = b * context * 2.0 * a_local * config.kv_dtype_bytes
    kv_append = b * 2.0 * a_local * config.kv_dtype_bytes
    qo_bytes = 4.0 * b * a_local * config.dtype_bytes
    flops = 4.0 * b * heads_local * context * model.d_head
    return OpSpec(name="decode_attention", op_class=OpClass.DECODE_ATTENTION,
                  flops=flops, bytes_accessed=kv_read + kv_append + qo_bytes,
                  m=b * heads_local, n=context, k=model.d_head,
                  metadata={"context": context})


def _tagged(ops: list[OpSpec], phase: str) -> list[OpSpec]:
    tagged = []
    for op in ops:
        metadata = dict(op.metadata)
        metadata["phase"] = phase
        tagged.append(op.scaled(metadata=metadata))
    return tagged


def prefill_embedding_ops(model: ModelConfig, parallel: ParallelismConfig,
                          config: InferenceConfig) -> list[OpSpec]:
    """Token/position embedding lookup over the whole prompt batch."""
    act = _activation_bytes(model, config, config.prefill_tokens)
    ops = [
        _memory_bound("token_embedding", OpClass.EMBEDDING, 2 * act),
        _memory_bound("position_embedding_add", OpClass.ELEMENTWISE, 2 * act),
    ]
    return _tagged(ops, phase="prefill")


def prefill_layer_ops(model: ModelConfig, parallel: ParallelismConfig,
                      config: InferenceConfig) -> list[OpSpec]:
    """One transformer layer's prefill pass.

    Bit-for-bit the training forward decomposition at
    ``micro_batch = batch_size`` and ``sequence = prompt_length`` (prefill
    *is* a forward pass), retagged with the serving phase.
    """
    ops = layer_forward_ops(model, parallel, config.prefill_training())
    return _tagged(ops, phase="prefill")


def _head_ops(model: ModelConfig, parallel: ParallelismConfig,
              config: InferenceConfig, norm_bytes: float, phase: str,
              batch: int | None = None) -> list[OpSpec]:
    """Final norm, next-token logits and sampling — shared by both phases.

    Serving only needs logits for each request's *last* position
    (``m = batch_size``); only the final layer norm's traffic differs
    (the whole prompt batch after prefill, one token per request in
    decode).  ``batch`` overrides the config batch size for stream
    episodes whose per-step batch varies.
    """
    b = config.batch_size if batch is None else batch
    tp = parallel.tp
    dtype = config.dtype_bytes
    vocab_local = model.vocab_size // tp

    ops = [
        _memory_bound("final_layer_norm", OpClass.LAYERNORM, norm_bytes),
        _gemm("lm_head", m=b, n=vocab_local, k=model.d_model, dtype_bytes=dtype),
    ]
    if tp > 1:
        ops.append(_tp_collective("tp_all_gather_logits", CollectiveKind.ALL_GATHER,
                                  float(b * vocab_local * dtype)))
    ops.append(_memory_bound("sample_token", OpClass.ELEMENTWISE,
                             float(b * model.vocab_size * dtype)))
    return _tagged(ops, phase=phase)


def prefill_head_ops(model: ModelConfig, parallel: ParallelismConfig,
                     config: InferenceConfig) -> list[OpSpec]:
    """Final norm over the prompt batch, first-token logits and sampling."""
    act = _activation_bytes(model, config, config.prefill_tokens)
    return _head_ops(model, parallel, config, norm_bytes=2 * act, phase="prefill")


def decode_embedding_ops(model: ModelConfig, parallel: ParallelismConfig,
                         config: InferenceConfig, step: int) -> list[OpSpec]:
    """Embedding lookup for the one new token per request."""
    act = _activation_bytes(model, config, config.batch_size)
    return _tagged([_memory_bound("token_embedding", OpClass.EMBEDDING, 2 * act)],
                   phase="decode")


def decode_layer_ops(model: ModelConfig, parallel: ParallelismConfig,
                     config: InferenceConfig, step: int) -> list[OpSpec]:
    """One transformer layer of one autoregressive decode step.

    The GEMMs are the training forward shapes with ``tokens = batch_size``
    (skinny ``m``); attention is the memory-bound KV-cache kernel over the
    ``prompt_length + step`` cached tokens; under TP the attention and MLP
    block outputs are all-reduced every step.
    """
    b = config.batch_size
    h, f = model.d_model, model.d_ff
    a = model.attention_dim
    tp = parallel.tp
    dtype = config.dtype_bytes
    act = _activation_bytes(model, config, b)
    context = config.context_length(step)

    ops: list[OpSpec] = [
        _memory_bound("layer_norm_in", OpClass.LAYERNORM, 2 * act),
        _gemm("attn_qkv", m=b, n=3 * a // tp, k=h, dtype_bytes=dtype),
        _decode_attention(model, parallel, config, context),
        _gemm("attn_proj", m=b, n=h, k=a // tp, dtype_bytes=dtype),
    ]
    if tp > 1:
        ops.append(_tp_collective("tp_all_reduce_attn_decode",
                                  CollectiveKind.ALL_REDUCE, act))
    ops.extend([
        _memory_bound("residual_attn", OpClass.ELEMENTWISE, 3 * act),
        _memory_bound("layer_norm_post_attn", OpClass.LAYERNORM, 2 * act),
        _gemm("mlp_fc1", m=b, n=f // tp, k=h, dtype_bytes=dtype),
        _memory_bound("gelu", OpClass.GELU, 2.0 * b * (f // tp) * dtype),
        _gemm("mlp_fc2", m=b, n=h, k=f // tp, dtype_bytes=dtype),
    ])
    if tp > 1:
        ops.append(_tp_collective("tp_all_reduce_mlp_decode",
                                  CollectiveKind.ALL_REDUCE, act))
    ops.append(_memory_bound("residual_mlp", OpClass.ELEMENTWISE, 3 * act))
    return _tagged(ops, phase="decode")


def decode_head_ops(model: ModelConfig, parallel: ParallelismConfig,
                    config: InferenceConfig, step: int) -> list[OpSpec]:
    """Final norm, next-token logits and sampling of one decode step."""
    act = _activation_bytes(model, config, config.batch_size)
    return _head_ops(model, parallel, config, norm_bytes=2 * act, phase="decode")


# -- continuous-batching stream decomposition ----------------------------------
# Stream episodes reuse the fixed-episode op shapes but with a *varying*
# batch: prefill chunks admit however many requests arrived (<= batch_size),
# decode steps process whichever requests are in flight, each at its own KV
# context length.  The prefill side simply re-batches the config (the op
# set is identical); decode gets explicit `contexts` variants.  With a
# uniform context vector the stream ops equal the fixed decode ops exactly
# (tested), so the cost accounting has one source of truth.


def _with_batch(config: InferenceConfig, batch: int) -> InferenceConfig:
    return config.with_changes(batch_size=batch)


def stream_prefill_embedding_ops(model: ModelConfig, parallel: ParallelismConfig,
                                 config: InferenceConfig, batch: int) -> list[OpSpec]:
    """Embedding lookup for a prefill chunk of ``batch`` admitted requests."""
    return prefill_embedding_ops(model, parallel, _with_batch(config, batch))


def stream_prefill_layer_ops(model: ModelConfig, parallel: ParallelismConfig,
                             config: InferenceConfig, batch: int) -> list[OpSpec]:
    """One transformer layer of a ``batch``-request prefill chunk."""
    return prefill_layer_ops(model, parallel, _with_batch(config, batch))


def stream_prefill_head_ops(model: ModelConfig, parallel: ParallelismConfig,
                            config: InferenceConfig, batch: int) -> list[OpSpec]:
    """Head ops of a prefill chunk: each admitted request's first token."""
    return prefill_head_ops(model, parallel, _with_batch(config, batch))


def _decode_attention_stream(model: ModelConfig, parallel: ParallelismConfig,
                             config: InferenceConfig,
                             contexts: tuple[int, ...]) -> OpSpec:
    """KV-cache attention over a mixed-context decode batch.

    Each in-flight request attends over its own accumulated cache, so the
    KV traffic (the dominant, bandwidth-bound cost) is the *sum* of the
    per-request context lengths; the kernel's tile shape is reported at
    the longest context.
    """
    b = len(contexts)
    total = sum(contexts)
    longest = max(contexts)
    heads_local = max(1, model.n_heads // parallel.tp)
    a_local = heads_local * model.d_head
    kv_read = total * 2.0 * a_local * config.kv_dtype_bytes
    kv_append = b * 2.0 * a_local * config.kv_dtype_bytes
    qo_bytes = 4.0 * b * a_local * config.dtype_bytes
    flops = 4.0 * heads_local * model.d_head * total
    return OpSpec(name="decode_attention", op_class=OpClass.DECODE_ATTENTION,
                  flops=flops, bytes_accessed=kv_read + kv_append + qo_bytes,
                  m=b * heads_local, n=longest, k=model.d_head,
                  metadata={"context": longest})


def stream_decode_embedding_ops(model: ModelConfig, parallel: ParallelismConfig,
                                config: InferenceConfig,
                                contexts: tuple[int, ...]) -> list[OpSpec]:
    """Embedding lookup for the in-flight requests' new tokens."""
    act = _activation_bytes(model, config, len(contexts))
    return _tagged([_memory_bound("token_embedding", OpClass.EMBEDDING, 2 * act)],
                   phase="decode")


def stream_decode_layer_ops(model: ModelConfig, parallel: ParallelismConfig,
                            config: InferenceConfig,
                            contexts: tuple[int, ...]) -> list[OpSpec]:
    """One transformer layer of a varying-batch decode step.

    ``contexts[i]`` is the KV context length of the i-th in-flight
    request (see :meth:`StreamPlan.step_contexts`); the GEMM batch is
    ``len(contexts)``.
    """
    if not contexts:
        raise ValueError("stream decode step needs at least one in-flight request")
    b = len(contexts)
    h, f = model.d_model, model.d_ff
    a = model.attention_dim
    tp = parallel.tp
    dtype = config.dtype_bytes
    act = _activation_bytes(model, config, b)

    ops: list[OpSpec] = [
        _memory_bound("layer_norm_in", OpClass.LAYERNORM, 2 * act),
        _gemm("attn_qkv", m=b, n=3 * a // tp, k=h, dtype_bytes=dtype),
        _decode_attention_stream(model, parallel, config, contexts),
        _gemm("attn_proj", m=b, n=h, k=a // tp, dtype_bytes=dtype),
    ]
    if tp > 1:
        ops.append(_tp_collective("tp_all_reduce_attn_decode",
                                  CollectiveKind.ALL_REDUCE, act))
    ops.extend([
        _memory_bound("residual_attn", OpClass.ELEMENTWISE, 3 * act),
        _memory_bound("layer_norm_post_attn", OpClass.LAYERNORM, 2 * act),
        _gemm("mlp_fc1", m=b, n=f // tp, k=h, dtype_bytes=dtype),
        _memory_bound("gelu", OpClass.GELU, 2.0 * b * (f // tp) * dtype),
        _gemm("mlp_fc2", m=b, n=h, k=f // tp, dtype_bytes=dtype),
    ])
    if tp > 1:
        ops.append(_tp_collective("tp_all_reduce_mlp_decode",
                                  CollectiveKind.ALL_REDUCE, act))
    ops.append(_memory_bound("residual_mlp", OpClass.ELEMENTWISE, 3 * act))
    return _tagged(ops, phase="decode")


def stream_decode_head_ops(model: ModelConfig, parallel: ParallelismConfig,
                           config: InferenceConfig,
                           contexts: tuple[int, ...]) -> list[OpSpec]:
    """Final norm, logits and sampling for the in-flight requests."""
    b = len(contexts)
    act = _activation_bytes(model, config, b)
    return _head_ops(model, parallel, config, norm_bytes=2 * act, phase="decode",
                     batch=b)
