"""Request-arrival models and continuous-batching stream plans.

Real serving is a stream of requests, not one fixed batch.  This module
provides the two datatypes that make that stream a first-class, fully
deterministic input to the emulator:

* :class:`ArrivalConfig` — a seeded request-arrival process.  Three kinds
  are supported: ``poisson`` (exponential inter-arrival gaps at a mean
  rate), ``bursty`` (Gamma-distributed gaps with a configurable
  coefficient of variation, so the same mean rate arrives in clumps) and
  ``trace`` (explicit arrival offsets in milliseconds, for replaying a
  recorded request log).  Sampling uses :class:`random.Random` seeded
  from the config, so the same config always yields the same schedule —
  a requirement for golden snapshots and the content-addressed sweep
  cache.
* :class:`StreamPlan` — the deterministic output of the continuous-
  batching scheduler (see ``repro.emulator.inference_builder``): which
  requests were admitted in which prefill chunk, which requests
  participate in each decode step, and the exact emission order of
  prefill/decode/idle-wait program items.  The plan is JSON round-
  trippable and travels in trace metadata under the
  ``"serving_stream"`` key so that replayed graphs can be scored with
  per-request serving metrics and re-timed by the serving manipulation.

Arrival times are offsets in microseconds from the episode start; the
first arrival is always at offset 0 (the episode starts when the first
request shows up).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "ARRIVAL_BURSTY",
    "ARRIVAL_KINDS",
    "ARRIVAL_POISSON",
    "ARRIVAL_TRACE",
    "ArrivalConfig",
    "RequestSchedule",
    "STREAM_METADATA_KEY",
    "StreamPlan",
    "parse_arrival",
]

ARRIVAL_POISSON = "poisson"
ARRIVAL_BURSTY = "bursty"
ARRIVAL_TRACE = "trace"
ARRIVAL_KINDS = (ARRIVAL_POISSON, ARRIVAL_BURSTY, ARRIVAL_TRACE)

#: Trace-bundle / execution-graph metadata key carrying a serialized
#: :class:`StreamPlan` for continuous-batching serving episodes.
STREAM_METADATA_KEY = "serving_stream"

_US_PER_S = 1_000_000.0
_US_PER_MS = 1_000.0


def _fmt(value: float) -> str:
    return f"{value:g}"


@dataclass(frozen=True)
class ArrivalConfig:
    """A seeded, deterministic request-arrival process.

    ``rate_per_s`` and ``cv`` apply to the synthetic kinds; ``times_ms``
    is the explicit schedule for ``trace`` arrivals (offsets in
    milliseconds, normalised so the first arrival is at 0).
    """

    kind: str = ARRIVAL_POISSON
    num_requests: int = 8
    rate_per_s: float = 100.0
    cv: float = 2.0
    seed: int = 0
    times_ms: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.kind!r}; "
                             f"expected one of {', '.join(ARRIVAL_KINDS)}")
        object.__setattr__(self, "times_ms", tuple(float(t) for t in self.times_ms))
        if self.kind == ARRIVAL_TRACE:
            if not self.times_ms:
                raise ValueError("trace arrivals need at least one time in times_ms")
            if any(t < 0 for t in self.times_ms):
                raise ValueError("trace arrival offsets must be non-negative")
            object.__setattr__(self, "num_requests", len(self.times_ms))
        else:
            if self.times_ms:
                raise ValueError(f"times_ms is only valid for kind={ARRIVAL_TRACE!r}")
            if self.num_requests < 1:
                raise ValueError("num_requests must be >= 1")
            if self.rate_per_s <= 0:
                raise ValueError("rate_per_s must be > 0")
            if self.kind == ARRIVAL_BURSTY and self.cv <= 0:
                raise ValueError("cv (coefficient of variation) must be > 0")

    def arrival_times_us(self) -> tuple[float, ...]:
        """Arrival offsets in microseconds, non-decreasing, first at 0.

        Synthetic kinds draw inter-arrival gaps from a
        :class:`random.Random` seeded with ``seed``; the same config
        always produces the identical schedule.
        """
        if self.kind == ARRIVAL_TRACE:
            ordered = sorted(self.times_ms)
            base = ordered[0]
            return tuple((t - base) * _US_PER_MS for t in ordered)
        rng = random.Random(self.seed)
        if self.kind == ARRIVAL_POISSON:
            def gap_s() -> float:
                return rng.expovariate(self.rate_per_s)
        else:  # bursty: Gamma gaps with mean 1/rate and CV == cv
            shape = 1.0 / (self.cv * self.cv)
            scale = (self.cv * self.cv) / self.rate_per_s
            def gap_s() -> float:
                return rng.gammavariate(shape, scale)
        times = [0.0]
        for _ in range(self.num_requests - 1):
            times.append(times[-1] + gap_s() * _US_PER_S)
        return tuple(times)

    def label(self) -> str:
        """Compact parseable spelling, e.g. ``poisson:rate=100,n=8,seed=0``."""
        if self.kind == ARRIVAL_TRACE:
            return "trace:" + ",".join(_fmt(t) for t in self.times_ms)
        parts = [f"rate={_fmt(self.rate_per_s)}"]
        if self.kind == ARRIVAL_BURSTY:
            parts.append(f"cv={_fmt(self.cv)}")
        parts.append(f"n={self.num_requests}")
        parts.append(f"seed={self.seed}")
        return f"{self.kind}:" + ",".join(parts)

    def to_json(self) -> dict[str, Any]:
        if self.kind == ARRIVAL_TRACE:
            return {"kind": self.kind, "times_ms": list(self.times_ms)}
        payload = {"kind": self.kind, "num_requests": self.num_requests,
                   "rate_per_s": self.rate_per_s, "seed": self.seed}
        if self.kind == ARRIVAL_BURSTY:
            payload["cv"] = self.cv
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ArrivalConfig":
        kind = payload.get("kind", ARRIVAL_POISSON)
        if kind == ARRIVAL_TRACE:
            return cls(kind=kind, times_ms=tuple(payload.get("times_ms", ())))
        return cls(kind=kind,
                   num_requests=int(payload.get("num_requests", 8)),
                   rate_per_s=float(payload.get("rate_per_s", 100.0)),
                   cv=float(payload.get("cv", 2.0)),
                   seed=int(payload.get("seed", 0)))


def parse_arrival(text: str) -> ArrivalConfig:
    """Parse a compact arrival label.

    Forms::

        poisson:rate=100[,n=16][,seed=3]
        bursty:rate=100,cv=4[,n=16][,seed=3]
        trace:0,2.5,7.25        (arrival offsets in milliseconds)

    A bare kind (``poisson``) uses the defaults for that kind.
    """
    text = str(text).strip()
    if not text:
        raise ValueError("empty arrival spec")
    kind, _, rest = text.partition(":")
    kind = kind.strip().lower()
    if kind not in ARRIVAL_KINDS:
        raise ValueError(f"unknown arrival kind {kind!r}; "
                         f"expected one of {', '.join(ARRIVAL_KINDS)}")
    rest = rest.strip()
    if kind == ARRIVAL_TRACE:
        if not rest:
            raise ValueError("trace arrivals need comma-separated offsets in ms, "
                             "e.g. trace:0,2.5,7")
        try:
            times = tuple(float(part) for part in rest.split(","))
        except ValueError as error:
            raise ValueError(f"bad trace arrival offsets {rest!r}: {error}") from None
        return ArrivalConfig(kind=kind, times_ms=times)
    fields: dict[str, str] = {}
    if rest:
        for part in rest.split(","):
            key, sep, value = part.partition("=")
            key = key.strip().lower()
            if not sep or not value.strip():
                raise ValueError(f"bad arrival field {part!r}; expected key=value")
            if key not in ("rate", "cv", "n", "seed"):
                raise ValueError(f"unknown arrival field {key!r}; "
                                 "expected rate=, cv=, n= or seed=")
            if key in fields:
                raise ValueError(f"duplicate arrival field {key!r}")
            fields[key] = value.strip()
    if "cv" in fields and kind != ARRIVAL_BURSTY:
        raise ValueError("cv= is only valid for bursty arrivals")
    try:
        return ArrivalConfig(
            kind=kind,
            num_requests=int(fields.get("n", ArrivalConfig.num_requests)),
            rate_per_s=float(fields.get("rate", ArrivalConfig.rate_per_s)),
            cv=float(fields.get("cv", ArrivalConfig.cv)),
            seed=int(fields.get("seed", ArrivalConfig.seed)))
    except ValueError:
        raise
    except Exception as error:  # pragma: no cover - defensive
        raise ValueError(f"bad arrival spec {text!r}: {error}") from None


@dataclass(frozen=True)
class RequestSchedule:
    """One request's place in a continuous-batching plan.

    ``arrival_us`` is the arrival offset from episode start;
    ``prefill_chunk`` indexes :attr:`StreamPlan.chunk_requests`;
    ``first_step``/``last_step`` are the inclusive range of global decode
    steps the request participates in.
    """

    request: int
    arrival_us: float
    prefill_chunk: int
    first_step: int
    last_step: int

    @property
    def num_decode_steps(self) -> int:
        return self.last_step - self.first_step + 1


@dataclass(frozen=True)
class StreamPlan:
    """The deterministic schedule of a continuous-batching episode.

    ``items`` records the emission order of the serving program:
    ``("prefill", chunk)``, ``("decode", step)`` and ``("wait", i)``
    entries, where waits model host idle time until the next arrival
    (duration ``waits_us[i]``).  ``chunk_requests[c]`` /
    ``step_requests[s]`` list the request ids admitted in prefill chunk
    ``c`` / decoding at global step ``s``.
    """

    arrival: ArrivalConfig
    requests: tuple[RequestSchedule, ...]
    chunk_requests: tuple[tuple[int, ...], ...]
    step_requests: tuple[tuple[int, ...], ...]
    items: tuple[tuple[str, int], ...]
    waits_us: tuple[float, ...]
    max_queue_depth: int = 0

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_requests)

    @property
    def num_steps(self) -> int:
        return len(self.step_requests)

    @property
    def max_step_batch(self) -> int:
        return max((len(reqs) for reqs in self.step_requests), default=0)

    def schedule_for(self, request: int) -> RequestSchedule:
        return self.requests[request]

    def step_contexts(self, prompt_length: int, step: int) -> tuple[int, ...]:
        """KV context length of every request decoding at ``step``.

        A request whose first decode step is ``f`` attends over
        ``prompt_length + (step - f)`` tokens at global step ``step`` —
        the same convention as ``InferenceConfig.context_length`` for the
        fixed episode.
        """
        return tuple(prompt_length + (step - self.requests[r].first_step)
                     for r in self.step_requests[step])

    def to_json(self) -> dict[str, Any]:
        return {
            "arrival": self.arrival.to_json(),
            "requests": [[r.request, r.arrival_us, r.prefill_chunk,
                          r.first_step, r.last_step] for r in self.requests],
            "chunks": [list(chunk) for chunk in self.chunk_requests],
            "steps": [list(step) for step in self.step_requests],
            "items": [[kind, index] for kind, index in self.items],
            "waits_us": list(self.waits_us),
            "max_queue_depth": self.max_queue_depth,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "StreamPlan":
        return cls(
            arrival=ArrivalConfig.from_json(payload["arrival"]),
            requests=tuple(RequestSchedule(int(row[0]), float(row[1]), int(row[2]),
                                           int(row[3]), int(row[4]))
                           for row in payload["requests"]),
            chunk_requests=tuple(tuple(int(r) for r in chunk)
                                 for chunk in payload["chunks"]),
            step_requests=tuple(tuple(int(r) for r in step)
                                for step in payload["steps"]),
            items=tuple((str(kind), int(index)) for kind, index in payload["items"]),
            waits_us=tuple(float(w) for w in payload["waits_us"]),
            max_queue_depth=int(payload.get("max_queue_depth", 0)),
        )
