"""3D-parallelism configuration (TP × PP × DP)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import CommunicatorGroups


@dataclass(frozen=True)
class ParallelismConfig:
    """Tensor / pipeline / data parallel degrees.

    The paper labels configurations ``TPxPPxDP`` (e.g. ``8x4x8`` for GPT-3
    175B on 256 GPUs); :meth:`label` and :meth:`parse` follow that
    convention.
    """

    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    data_parallel: int = 1

    def __post_init__(self) -> None:
        if min(self.tensor_parallel, self.pipeline_parallel, self.data_parallel) < 1:
            raise ValueError("parallel degrees must be >= 1")

    @property
    def tp(self) -> int:
        return self.tensor_parallel

    @property
    def pp(self) -> int:
        return self.pipeline_parallel

    @property
    def dp(self) -> int:
        return self.data_parallel

    @property
    def world_size(self) -> int:
        """Number of GPUs required by this configuration."""
        return self.tp * self.pp * self.dp

    def label(self) -> str:
        """Paper-style ``TPxPPxDP`` label."""
        return f"{self.tp}x{self.pp}x{self.dp}"

    @classmethod
    def parse(cls, label: str) -> "ParallelismConfig":
        """Parse a ``TPxPPxDP`` label such as ``"8x4x8"``."""
        parts = label.lower().split("x")
        if len(parts) != 3:
            raise ValueError(f"expected a TPxPPxDP label, got '{label}'")
        tp, pp, dp = (int(p) for p in parts)
        return cls(tensor_parallel=tp, pipeline_parallel=pp, data_parallel=dp)

    def groups(self) -> CommunicatorGroups:
        """Communicator groups for this configuration."""
        return CommunicatorGroups(self.tp, self.pp, self.dp)

    def with_changes(self, tensor_parallel: int | None = None,
                     pipeline_parallel: int | None = None,
                     data_parallel: int | None = None) -> "ParallelismConfig":
        """Return a copy with the given degrees replaced."""
        return ParallelismConfig(
            tensor_parallel=tensor_parallel if tensor_parallel is not None else self.tp,
            pipeline_parallel=pipeline_parallel if pipeline_parallel is not None else self.pp,
            data_parallel=data_parallel if data_parallel is not None else self.dp,
        )

    def validate_for_model(self, n_layers: int) -> None:
        """Check the model can be partitioned across this configuration."""
        if self.pp > n_layers:
            raise ValueError(
                f"pipeline parallelism {self.pp} exceeds the number of layers {n_layers}"
            )

    def validate_for_inference(self) -> None:
        """Check the configuration is usable for autoregressive serving.

        Decode generates one token at a time, so pipeline stages would
        serialise on the token loop and leave ``pp - 1`` stages idle per
        step; the inference workload family therefore supports only
        tensor parallelism (plus independent data-parallel replicas).
        """
        if self.pp > 1:
            raise ValueError(
                f"pipeline parallelism {self.pp} is not supported for inference: "
                "autoregressive decode serialises pipeline stages on the token "
                "loop; use tensor parallelism (TPx1xDP) instead"
            )
