"""Transformer operator decomposition.

These functions expand a :class:`~repro.workload.model_config.ModelConfig`
under a given parallelism/training configuration into the kernel-level
operations executed per layer and per micro-batch.  The emulator turns the
resulting :class:`OpSpec` lists into launched kernels; the Lumos kernel
performance model uses the same shape information to predict runtimes for
kernels introduced by graph manipulation.

Shapes follow the Megatron-LM tensor-parallel layout: column-parallel
QKV/FC1 projections, row-parallel output/FC2 projections, with one
all-reduce after the attention block and one after the MLP block in the
forward pass (and their mirrors in the backward pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


class OpClass:
    """Operation classes understood by the kernel cost models."""

    GEMM = "gemm"
    ATTENTION = "attention"
    DECODE_ATTENTION = "decode_attention"
    LAYERNORM = "layernorm"
    ELEMENTWISE = "elementwise"
    GELU = "gelu"
    DROPOUT = "dropout"
    SOFTMAX = "softmax"
    EMBEDDING = "embedding"
    CROSS_ENTROPY = "cross_entropy"
    OPTIMIZER = "optimizer"
    COMM = "comm"

    COMPUTE_CLASSES = frozenset({
        GEMM, ATTENTION, DECODE_ATTENTION, LAYERNORM, ELEMENTWISE, GELU,
        DROPOUT, SOFTMAX, EMBEDDING, CROSS_ENTROPY, OPTIMIZER,
    })


class CollectiveKind:
    """Collective communication primitives."""

    ALL_REDUCE = "all_reduce"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_GATHER = "all_gather"
    BROADCAST = "broadcast"
    SEND = "send"
    RECV = "recv"

    POINT_TO_POINT = frozenset({SEND, RECV})


@dataclass(frozen=True)
class CollectiveSpec:
    """A communication operation.

    Attributes
    ----------
    kind:
        One of :class:`CollectiveKind`.
    size_bytes:
        Message size per rank.
    group:
        Which communicator the collective runs on: ``"tp"``, ``"dp"`` or
        ``"pp"``.
    """

    kind: str
    size_bytes: float
    group: str

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("collective size must be non-negative")
        if self.group not in ("tp", "dp", "pp"):
            raise ValueError(f"unknown communicator group '{self.group}'")


@dataclass(frozen=True)
class OpSpec:
    """One kernel-level operation with enough shape detail to cost it.

    Compute operations carry either GEMM dimensions (``m``, ``n``, ``k``),
    attention dimensions, or a memory-traffic estimate (``bytes_accessed``).
    Communication operations carry a :class:`CollectiveSpec`.
    """

    name: str
    op_class: str
    flops: float = 0.0
    bytes_accessed: float = 0.0
    m: int = 0
    n: int = 0
    k: int = 0
    collective: CollectiveSpec | None = None
    stream_role: str = "compute"
    metadata: dict = field(default_factory=dict)

    def scaled(self, **overrides) -> "OpSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)

    @property
    def is_communication(self) -> bool:
        return self.collective is not None


def _gemm(name: str, m: int, n: int, k: int, dtype_bytes: int, **metadata) -> OpSpec:
    flops = 2.0 * m * n * k
    bytes_accessed = dtype_bytes * (m * k + k * n + m * n)
    return OpSpec(name=name, op_class=OpClass.GEMM, flops=flops,
                  bytes_accessed=bytes_accessed, m=m, n=n, k=k,
                  metadata=dict(metadata))


def _memory_bound(name: str, op_class: str, bytes_accessed: float, **metadata) -> OpSpec:
    return OpSpec(name=name, op_class=op_class, bytes_accessed=bytes_accessed,
                  metadata=dict(metadata))


def _attention(name: str, batch: int, heads: int, seq: int, d_head: int,
               dtype_bytes: int, backward: bool, **metadata) -> OpSpec:
    # Flash-attention style fused kernel: QK^T and PV matmuls dominate.
    matmul_flops = 4.0 * batch * heads * seq * seq * d_head
    flops = matmul_flops * (2.5 if backward else 1.0)
    bytes_accessed = dtype_bytes * batch * heads * seq * d_head * (8 if backward else 4)
    return OpSpec(name=name, op_class=OpClass.ATTENTION, flops=flops,
                  bytes_accessed=bytes_accessed,
                  m=batch * heads * seq, n=seq, k=d_head,
                  metadata=dict(metadata))


def _tp_all_reduce(name: str, size_bytes: float, **metadata) -> OpSpec:
    return OpSpec(name=name, op_class=OpClass.COMM,
                  collective=CollectiveSpec(kind=CollectiveKind.ALL_REDUCE,
                                            size_bytes=size_bytes, group="tp"),
                  stream_role="tp_comm", metadata=dict(metadata))


def _activation_bytes(model: ModelConfig, training: TrainingConfig) -> float:
    return float(training.micro_batch_size * training.sequence_length
                 * model.d_model * training.dtype_bytes)


def pp_activation_bytes(model: ModelConfig, training: TrainingConfig) -> float:
    """Bytes transferred between adjacent pipeline stages per micro-batch."""
    return _activation_bytes(model, training)


def layer_forward_ops(model: ModelConfig, parallel: ParallelismConfig,
                      training: TrainingConfig) -> list[OpSpec]:
    """Kernel-level operations of one transformer layer's forward pass."""
    b, s = training.micro_batch_size, training.sequence_length
    h, f = model.d_model, model.d_ff
    a = model.attention_dim
    tp = parallel.tp
    heads_local = max(1, model.n_heads // tp)
    dtype = training.dtype_bytes
    tokens = b * s
    act = _activation_bytes(model, training)

    ops: list[OpSpec] = [
        _memory_bound("layer_norm_in", OpClass.LAYERNORM, 2 * act),
        _gemm("attn_qkv", m=tokens, n=3 * a // tp, k=h, dtype_bytes=dtype),
        _attention("flash_attention_fwd", batch=b, heads=heads_local, seq=s,
                   d_head=model.d_head, dtype_bytes=dtype, backward=False),
        _gemm("attn_proj", m=tokens, n=h, k=a // tp, dtype_bytes=dtype),
    ]
    if tp > 1:
        ops.append(_tp_all_reduce("tp_all_reduce_attn_fwd", act))
    ops.extend([
        _memory_bound("dropout_residual_attn", OpClass.DROPOUT, 3 * act),
        _memory_bound("layer_norm_post_attn", OpClass.LAYERNORM, 2 * act),
        _gemm("mlp_fc1", m=tokens, n=f // tp, k=h, dtype_bytes=dtype),
        _memory_bound("gelu", OpClass.GELU, 2.0 * tokens * (f // tp) * dtype),
        _gemm("mlp_fc2", m=tokens, n=h, k=f // tp, dtype_bytes=dtype),
    ])
    if tp > 1:
        ops.append(_tp_all_reduce("tp_all_reduce_mlp_fwd", act))
    ops.append(_memory_bound("dropout_residual_mlp", OpClass.DROPOUT, 3 * act))
    return _tagged(ops, phase="forward")


def layer_backward_ops(model: ModelConfig, parallel: ParallelismConfig,
                       training: TrainingConfig) -> list[OpSpec]:
    """Kernel-level operations of one transformer layer's backward pass."""
    b, s = training.micro_batch_size, training.sequence_length
    h, f = model.d_model, model.d_ff
    a = model.attention_dim
    tp = parallel.tp
    heads_local = max(1, model.n_heads // tp)
    dtype = training.dtype_bytes
    tokens = b * s
    act = _activation_bytes(model, training)

    ops: list[OpSpec] = [
        _memory_bound("dropout_residual_mlp_bwd", OpClass.DROPOUT, 3 * act),
        _gemm("mlp_fc2_dgrad", m=tokens, n=f // tp, k=h, dtype_bytes=dtype),
        _gemm("mlp_fc2_wgrad", m=f // tp, n=h, k=tokens, dtype_bytes=dtype),
        _memory_bound("gelu_bwd", OpClass.GELU, 3.0 * tokens * (f // tp) * dtype),
        _gemm("mlp_fc1_dgrad", m=tokens, n=h, k=f // tp, dtype_bytes=dtype),
        _gemm("mlp_fc1_wgrad", m=h, n=f // tp, k=tokens, dtype_bytes=dtype),
    ]
    if tp > 1:
        ops.append(_tp_all_reduce("tp_all_reduce_mlp_bwd", act))
    ops.extend([
        _memory_bound("layer_norm_post_attn_bwd", OpClass.LAYERNORM, 3 * act),
        _memory_bound("dropout_residual_attn_bwd", OpClass.DROPOUT, 3 * act),
        _gemm("attn_proj_dgrad", m=tokens, n=a // tp, k=h, dtype_bytes=dtype),
        _gemm("attn_proj_wgrad", m=a // tp, n=h, k=tokens, dtype_bytes=dtype),
        _attention("flash_attention_bwd", batch=b, heads=heads_local, seq=s,
                   d_head=model.d_head, dtype_bytes=dtype, backward=True),
        _gemm("attn_qkv_dgrad", m=tokens, n=h, k=3 * a // tp, dtype_bytes=dtype),
        _gemm("attn_qkv_wgrad", m=h, n=3 * a // tp, k=tokens, dtype_bytes=dtype),
    ])
    if tp > 1:
        ops.append(_tp_all_reduce("tp_all_reduce_attn_bwd", act))
    ops.append(_memory_bound("layer_norm_in_bwd", OpClass.LAYERNORM, 3 * act))
    return _tagged(ops, phase="backward")


def embedding_forward_ops(model: ModelConfig, parallel: ParallelismConfig,
                          training: TrainingConfig) -> list[OpSpec]:
    """Token/position embedding lookup on the first pipeline stage."""
    act = _activation_bytes(model, training)
    ops = [
        _memory_bound("token_embedding", OpClass.EMBEDDING, 2 * act),
        _memory_bound("position_embedding_add", OpClass.ELEMENTWISE, 2 * act),
        _memory_bound("embedding_dropout", OpClass.DROPOUT, 2 * act),
    ]
    return _tagged(ops, phase="forward")


def embedding_backward_ops(model: ModelConfig, parallel: ParallelismConfig,
                           training: TrainingConfig) -> list[OpSpec]:
    """Embedding gradient accumulation on the first pipeline stage."""
    act = _activation_bytes(model, training)
    ops = [
        _memory_bound("embedding_dropout_bwd", OpClass.DROPOUT, 2 * act),
        _memory_bound("token_embedding_grad", OpClass.EMBEDDING, 3 * act),
    ]
    return _tagged(ops, phase="backward")


def head_forward_ops(model: ModelConfig, parallel: ParallelismConfig,
                     training: TrainingConfig) -> list[OpSpec]:
    """Final layer norm, LM head projection and loss on the last stage."""
    b, s = training.micro_batch_size, training.sequence_length
    tokens = b * s
    tp = parallel.tp
    dtype = training.dtype_bytes
    act = _activation_bytes(model, training)
    vocab_local = model.vocab_size // tp

    ops = [
        _memory_bound("final_layer_norm", OpClass.LAYERNORM, 2 * act),
        _gemm("lm_head", m=tokens, n=vocab_local, k=model.d_model, dtype_bytes=dtype),
        _memory_bound("cross_entropy_fwd", OpClass.CROSS_ENTROPY,
                      2.0 * tokens * vocab_local * dtype),
    ]
    if tp > 1:
        ops.append(_tp_all_reduce("tp_all_reduce_loss", 4.0 * tokens))
    return _tagged(ops, phase="forward")


def head_backward_ops(model: ModelConfig, parallel: ParallelismConfig,
                      training: TrainingConfig) -> list[OpSpec]:
    """Loss and LM head backward on the last stage."""
    b, s = training.micro_batch_size, training.sequence_length
    tokens = b * s
    tp = parallel.tp
    dtype = training.dtype_bytes
    act = _activation_bytes(model, training)
    vocab_local = model.vocab_size // tp

    ops = [
        _memory_bound("cross_entropy_bwd", OpClass.CROSS_ENTROPY,
                      2.0 * tokens * vocab_local * dtype),
        _gemm("lm_head_dgrad", m=tokens, n=model.d_model, k=vocab_local, dtype_bytes=dtype),
        _gemm("lm_head_wgrad", m=model.d_model, n=vocab_local, k=tokens, dtype_bytes=dtype),
        _memory_bound("final_layer_norm_bwd", OpClass.LAYERNORM, 3 * act),
    ]
    return _tagged(ops, phase="backward")


def optimizer_ops(model: ModelConfig, parallel: ParallelismConfig,
                  training: TrainingConfig, n_stage_layers: int,
                  include_embedding: bool) -> list[OpSpec]:
    """Adam optimizer step for the parameters owned by one rank.

    A rank owns ``n_stage_layers`` layers' parameters divided by the
    tensor-parallel degree, plus (on the first/last stage) the embedding.
    Adam with an FP32 master copy touches roughly 18 bytes per parameter
    (BF16 grad + FP32 master + two FP32 moments + BF16 write-back).
    """
    params = n_stage_layers * model.layer_parameters / parallel.tp
    if include_embedding:
        params += model.embedding_parameters / parallel.tp
    bytes_per_param = 18.0
    total_bytes = params * bytes_per_param
    ops = [
        _memory_bound("grad_norm_clip", OpClass.ELEMENTWISE, params * 2.0),
        _memory_bound("adam_update_1", OpClass.OPTIMIZER, total_bytes / 2),
        _memory_bound("adam_update_2", OpClass.OPTIMIZER, total_bytes / 2),
        _memory_bound("param_copy", OpClass.ELEMENTWISE, params * 4.0),
    ]
    return _tagged(ops, phase="optimizer")


def dp_gradient_buckets(model: ModelConfig, parallel: ParallelismConfig,
                        training: TrainingConfig, stage_layer_indices: Iterable[int],
                        include_embedding: bool) -> list[tuple[list[int], float]]:
    """Group a stage's layers into data-parallel gradient buckets.

    Returns ``(layer_indices, bucket_bytes)`` pairs in backward-pass
    completion order (deepest layers first), matching how gradient buckets
    become ready while the backward pass walks the stage from its last
    layer to its first.
    """
    layers = sorted(stage_layer_indices, reverse=True)
    grad_bytes_per_layer = model.layer_parameters / parallel.tp * training.dtype_bytes
    buckets: list[tuple[list[int], float]] = []
    for start in range(0, len(layers), training.gradient_bucket_layers):
        chunk = layers[start:start + training.gradient_bucket_layers]
        buckets.append((chunk, grad_bytes_per_layer * len(chunk)))
    if include_embedding:
        embedding_bytes = model.embedding_parameters / parallel.tp * training.dtype_bytes
        buckets.append(([], embedding_bytes))
    return buckets


def _tagged(ops: list[OpSpec], phase: str) -> list[OpSpec]:
    tagged = []
    for op in ops:
        metadata = dict(op.metadata)
        metadata.setdefault("phase", phase)
        tagged.append(op.scaled(metadata=metadata))
    return tagged
