"""Transformer model configurations.

``GPT3_MODELS`` reproduces Table 1 of the paper (the GPT-3 variants used in
the replay evaluation) and ``GPT3_VARIANTS`` reproduces Table 2 (the
architecture variants used to validate graph manipulation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelConfig:
    """A decoder-only transformer configuration.

    Attributes mirror the columns of Table 1: number of layers, hidden size
    (``d_model``), feed-forward size (``d_ff``), attention heads and head
    dimension.  ``vocab_size`` and ``seq_length`` follow the open-source
    GPT-3 Megatron implementation defaults.
    """

    name: str
    n_layers: int
    d_model: int
    d_ff: int
    n_heads: int
    d_head: int
    vocab_size: int = 51200
    seq_length: int = 2048

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.d_model <= 0 or self.d_ff <= 0:
            raise ValueError("model dimensions must be positive")
        if self.n_heads <= 0 or self.d_head <= 0:
            raise ValueError("attention dimensions must be positive")

    # -- parameter counting --------------------------------------------------

    @property
    def layer_parameters(self) -> int:
        """Parameters of one transformer layer (attention + MLP + norms).

        The attention projection width is ``n_heads * d_head``, which for
        the GPT-3 44B variant in Table 1 is half the hidden size — this is
        what makes that model 44B rather than 59B.
        """
        attention = 4 * self.d_model * self.attention_dim  # QKV (3·h·a) + output projection (a·h)
        mlp = 2 * self.d_model * self.d_ff
        norms_and_biases = 9 * self.d_model + 2 * self.d_ff
        return attention + mlp + norms_and_biases

    @property
    def embedding_parameters(self) -> int:
        """Token + position embedding parameters."""
        return self.vocab_size * self.d_model + self.seq_length * self.d_model

    @property
    def num_parameters(self) -> int:
        """Total parameter count (embeddings shared with the output head)."""
        return self.n_layers * self.layer_parameters + self.embedding_parameters + self.d_model

    @property
    def attention_dim(self) -> int:
        """Total attention projection width (``n_heads * d_head``)."""
        return self.n_heads * self.d_head

    # -- FLOP counting (used by the analytical baseline) ----------------------

    def flops_per_token(self) -> float:
        """Approximate training FLOPs per token (forward + backward)."""
        dense = 6.0 * self.num_parameters
        attention = 12.0 * self.n_layers * self.d_model * self.seq_length
        return dense + attention

    # -- derivation ------------------------------------------------------------

    def with_changes(self, name: str | None = None, n_layers: int | None = None,
                     d_model: int | None = None, d_ff: int | None = None,
                     n_heads: int | None = None) -> "ModelConfig":
        """Return a copy with the given architecture fields replaced.

        This is the model-side counterpart of the graph-manipulation API:
        the paper's §4.3.2 varies ``n_layers``, ``d_model`` and ``d_ff``.
        """
        changes: dict[str, object] = {}
        if name is not None:
            changes["name"] = name
        if n_layers is not None:
            changes["n_layers"] = n_layers
        if d_model is not None:
            changes["d_model"] = d_model
            if n_heads is None:
                changes["n_heads"] = max(1, d_model // self.d_head)
        if d_ff is not None:
            changes["d_ff"] = d_ff
        if n_heads is not None:
            changes["n_heads"] = n_heads
        return replace(self, **changes)


def _gpt3(name: str, n_layers: int, d_model: int, d_ff: int, n_heads: int,
          d_head: int = 128) -> ModelConfig:
    return ModelConfig(name=name, n_layers=n_layers, d_model=d_model, d_ff=d_ff,
                       n_heads=n_heads, d_head=d_head)


#: Table 1 — model sizes and architectures used in the replay evaluation.
GPT3_MODELS: dict[str, ModelConfig] = {
    "gpt3-15b": _gpt3("gpt3-15b", n_layers=48, d_model=6144, d_ff=12288, n_heads=48),
    "gpt3-44b": _gpt3("gpt3-44b", n_layers=48, d_model=12288, d_ff=24576, n_heads=48),
    "gpt3-117b": _gpt3("gpt3-117b", n_layers=96, d_model=12288, d_ff=24576, n_heads=96),
    "gpt3-175b": _gpt3("gpt3-175b", n_layers=96, d_model=12288, d_ff=49152, n_heads=96),
}

#: Table 2 — architecture variants derived from GPT-3 15B for §4.3.2.
GPT3_VARIANTS: dict[str, ModelConfig] = {
    "gpt3-15b": GPT3_MODELS["gpt3-15b"],
    "gpt3-v1": _gpt3("gpt3-v1", n_layers=64, d_model=6144, d_ff=12288, n_heads=48),
    "gpt3-v2": _gpt3("gpt3-v2", n_layers=96, d_model=6144, d_ff=12288, n_heads=48),
    "gpt3-v3": _gpt3("gpt3-v3", n_layers=48, d_model=9216, d_ff=18432, n_heads=48),
    "gpt3-v4": _gpt3("gpt3-v4", n_layers=48, d_model=12288, d_ff=24576, n_heads=48),
}


def gpt3_model(name: str) -> ModelConfig:
    """Look up a GPT-3 configuration from Table 1 or Table 2 by name."""
    key = name.lower()
    if key in GPT3_MODELS:
        return GPT3_MODELS[key]
    if key in GPT3_VARIANTS:
        return GPT3_VARIANTS[key]
    known = sorted(set(GPT3_MODELS) | set(GPT3_VARIANTS))
    raise KeyError(f"unknown model '{name}'; known models: {known}")
