"""Pipeline-parallel layer partitioning and the 1F1B schedule.

The schedule generator reproduces Megatron's non-interleaved 1F1B policy
(Narayanan et al., 2021), which is what the paper assumes when it rebuilds
pipeline schedules for new pipeline-parallel degrees (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineAction:
    """One step of a per-stage pipeline schedule."""

    kind: str  # "F" (forward) or "B" (backward)
    microbatch: int

    def __post_init__(self) -> None:
        if self.kind not in ("F", "B"):
            raise ValueError(f"unknown pipeline action kind '{self.kind}'")
        if self.microbatch < 0:
            raise ValueError("microbatch index must be non-negative")


def stage_layers(n_layers: int, pipeline_parallel: int, stage: int) -> list[int]:
    """Global layer indices assigned to ``stage``.

    Layers are split as evenly as possible; when the split is uneven the
    earlier stages receive the extra layers (Megatron convention).
    """
    if not 0 <= stage < pipeline_parallel:
        raise ValueError(f"stage {stage} out of range for PP={pipeline_parallel}")
    if pipeline_parallel > n_layers:
        raise ValueError(f"PP={pipeline_parallel} exceeds the number of layers {n_layers}")
    base, remainder = divmod(n_layers, pipeline_parallel)
    sizes = [base + (1 if s < remainder else 0) for s in range(pipeline_parallel)]
    start = sum(sizes[:stage])
    return list(range(start, start + sizes[stage]))


def stage_of_layer(n_layers: int, pipeline_parallel: int, layer: int) -> int:
    """Pipeline stage owning global layer index ``layer``."""
    if not 0 <= layer < n_layers:
        raise ValueError(f"layer {layer} out of range for a {n_layers}-layer model")
    for stage in range(pipeline_parallel):
        if layer in stage_layers(n_layers, pipeline_parallel, stage):
            return stage
    raise AssertionError("unreachable: every layer belongs to a stage")


def one_f_one_b_schedule(num_microbatches: int, pipeline_parallel: int,
                         stage: int) -> list[PipelineAction]:
    """Per-stage 1F1B schedule.

    Each stage runs ``min(PP - stage - 1, M)`` warm-up forwards, then
    alternates one forward with one backward, then drains the remaining
    backwards.  Every micro-batch appears exactly once as ``F`` and once as
    ``B``.
    """
    if num_microbatches <= 0:
        raise ValueError("num_microbatches must be positive")
    if not 0 <= stage < pipeline_parallel:
        raise ValueError(f"stage {stage} out of range for PP={pipeline_parallel}")

    warmup = min(pipeline_parallel - stage - 1, num_microbatches)
    steady = num_microbatches - warmup

    schedule: list[PipelineAction] = []
    for microbatch in range(warmup):
        schedule.append(PipelineAction("F", microbatch))
    for index in range(steady):
        schedule.append(PipelineAction("F", warmup + index))
        schedule.append(PipelineAction("B", index))
    for microbatch in range(steady, num_microbatches):
        schedule.append(PipelineAction("B", microbatch))
    return schedule


def pipeline_bubble_fraction(num_microbatches: int, pipeline_parallel: int) -> float:
    """Ideal 1F1B bubble fraction ``(PP - 1) / (M + PP - 1)``."""
    if num_microbatches <= 0 or pipeline_parallel <= 0:
        raise ValueError("arguments must be positive")
    return (pipeline_parallel - 1) / (num_microbatches + pipeline_parallel - 1)
