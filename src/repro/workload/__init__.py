"""Workload models: GPT-3 configurations, 3D parallelism, operators, schedules."""

from repro.workload.model_config import (
    GPT3_MODELS,
    GPT3_VARIANTS,
    ModelConfig,
    gpt3_model,
)
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig
from repro.workload.operators import (
    CollectiveSpec,
    OpSpec,
    dp_gradient_buckets,
    embedding_backward_ops,
    embedding_forward_ops,
    head_backward_ops,
    head_forward_ops,
    layer_backward_ops,
    layer_forward_ops,
    optimizer_ops,
    pp_activation_bytes,
)
from repro.workload.pipeline import (
    PipelineAction,
    one_f_one_b_schedule,
    stage_of_layer,
    stage_layers,
)

__all__ = [
    "ModelConfig",
    "GPT3_MODELS",
    "GPT3_VARIANTS",
    "gpt3_model",
    "ParallelismConfig",
    "TrainingConfig",
    "OpSpec",
    "CollectiveSpec",
    "layer_forward_ops",
    "layer_backward_ops",
    "embedding_forward_ops",
    "embedding_backward_ops",
    "head_forward_ops",
    "head_backward_ops",
    "optimizer_ops",
    "dp_gradient_buckets",
    "pp_activation_bytes",
    "PipelineAction",
    "one_f_one_b_schedule",
    "stage_layers",
    "stage_of_layer",
]
