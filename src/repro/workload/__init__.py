"""Workload models: GPT-3 configurations, 3D parallelism, operators, schedules."""

from repro.workload.arrivals import (
    ArrivalConfig,
    RequestSchedule,
    StreamPlan,
    parse_arrival,
)
from repro.workload.model_config import (
    GPT3_MODELS,
    GPT3_VARIANTS,
    ModelConfig,
    gpt3_model,
)
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig
from repro.workload.inference import (
    InferenceConfig,
    ServingTarget,
    decode_embedding_ops,
    decode_head_ops,
    decode_layer_ops,
    prefill_embedding_ops,
    prefill_head_ops,
    prefill_layer_ops,
)
from repro.workload.operators import (
    CollectiveSpec,
    OpSpec,
    dp_gradient_buckets,
    embedding_backward_ops,
    embedding_forward_ops,
    head_backward_ops,
    head_forward_ops,
    layer_backward_ops,
    layer_forward_ops,
    optimizer_ops,
    pp_activation_bytes,
)
from repro.workload.pipeline import (
    PipelineAction,
    one_f_one_b_schedule,
    stage_of_layer,
    stage_layers,
)

__all__ = [
    "ModelConfig",
    "GPT3_MODELS",
    "GPT3_VARIANTS",
    "gpt3_model",
    "ParallelismConfig",
    "TrainingConfig",
    "InferenceConfig",
    "ServingTarget",
    "ArrivalConfig",
    "RequestSchedule",
    "StreamPlan",
    "parse_arrival",
    "prefill_embedding_ops",
    "prefill_layer_ops",
    "prefill_head_ops",
    "decode_embedding_ops",
    "decode_layer_ops",
    "decode_head_ops",
    "OpSpec",
    "CollectiveSpec",
    "layer_forward_ops",
    "layer_backward_ops",
    "embedding_forward_ops",
    "embedding_backward_ops",
    "head_forward_ops",
    "head_backward_ops",
    "optimizer_ops",
    "dp_gradient_buckets",
    "pp_activation_bytes",
    "PipelineAction",
    "one_f_one_b_schedule",
    "stage_layers",
    "stage_of_layer",
]
