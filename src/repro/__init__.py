"""Reproduction of Lumos (MLSys 2025).

Lumos is a trace-driven performance modeling and estimation toolkit for
large-scale LLM training.  This package re-implements the full system
described in the paper together with the substrates it depends on:

``repro.trace``
    Kineto-style trace schema and chrome-trace JSON I/O.
``repro.hardware``
    GPU, network and cluster models (H100-class defaults).
``repro.workload``
    GPT-3 model configurations, 3D-parallelism configuration, transformer
    operator decomposition and 1F1B pipeline schedules.
``repro.kernels``
    Analytical kernel and collective cost models.
``repro.emulator``
    A distributed-training cluster emulator that produces Kineto-style
    traces (the substitute for the paper's production H100 cluster).
``repro.core``
    The Lumos contribution: execution-graph construction, the replay
    simulator (Algorithm 1), execution breakdowns, SM utilisation,
    kernel-performance-model calibration and graph manipulation.
``repro.api``
    The programmable facade: :class:`Study` owns one base trace's replay,
    calibration and per-target simulation sessions, and exposes the whole
    paper workflow (replay / breakdown / predict / what-if / sweep) as
    memoized methods.
``repro.baselines``
    The dPRO-style replayer and an analytical iteration-time model.
``repro.analysis``
    Comparison and reporting helpers used by the benchmark harness.
``repro.sweep``
    The parallel what-if sweep engine: declarative scenario grids over one
    base trace, a process-pool runner, an on-disk result cache and Pareto
    analysis.  :func:`repro.sweep` is the one-call entry point.
``repro.observability``
    Pipeline tracing (spans, metrics, structured run reports; strictly
    no-op unless a profile is active) and chrome-trace / Perfetto export
    of simulated timelines and pipeline profiles.

Two workload families share every layer: 3D-parallel **training**
iterations and LLM **serving** episodes (prefill + autoregressive decode;
see :mod:`repro.workload.inference`).

The convenience surface re-exported here: :class:`Study` (open with
``Study.from_trace(...)`` / ``Study.from_emulation(...)``), the one-call
:func:`predict` and :func:`replay` wrappers, the typed
:class:`PredictError` / :class:`StudyError`, the unified prediction
target (:class:`Target` / :func:`parse_target`), the serving
configuration types :class:`InferenceConfig` / :class:`ServingTarget` /
:class:`ArrivalConfig` / :func:`parse_arrival`, the per-request
:class:`ServingMetrics`, and the sweep names.
"""

from repro.version import __version__
# Importing the subpackage binds ``repro.sweep`` — a callable module, so
# ``from repro import sweep; sweep(trace, spec)`` runs a sweep while
# ``repro.sweep.SweepSpec`` keeps ordinary module access working.
from repro.sweep import SweepResult, SweepSpec, run_sweep
from repro.api import Prediction, PredictError, Study, StudyError, Target, parse_target, predict
from repro.core.replay import replay
from repro.core.serving_metrics import ServingMetrics
from repro.workload.arrivals import ArrivalConfig, parse_arrival
from repro.workload.inference import InferenceConfig, ServingTarget

__all__ = [
    "__version__",
    "ArrivalConfig",
    "InferenceConfig",
    "Prediction",
    "PredictError",
    "ServingMetrics",
    "ServingTarget",
    "Study",
    "StudyError",
    "SweepResult",
    "SweepSpec",
    "Target",
    "parse_arrival",
    "parse_target",
    "predict",
    "replay",
    "run_sweep",
    "sweep",
]
