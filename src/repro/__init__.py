"""Reproduction of Lumos (MLSys 2025).

Lumos is a trace-driven performance modeling and estimation toolkit for
large-scale LLM training.  This package re-implements the full system
described in the paper together with the substrates it depends on:

``repro.trace``
    Kineto-style trace schema and chrome-trace JSON I/O.
``repro.hardware``
    GPU, network and cluster models (H100-class defaults).
``repro.workload``
    GPT-3 model configurations, 3D-parallelism configuration, transformer
    operator decomposition and 1F1B pipeline schedules.
``repro.kernels``
    Analytical kernel and collective cost models.
``repro.emulator``
    A distributed-training cluster emulator that produces Kineto-style
    traces (the substitute for the paper's production H100 cluster).
``repro.core``
    The Lumos contribution: execution-graph construction, the replay
    simulator (Algorithm 1), execution breakdowns, SM utilisation,
    kernel-performance-model calibration and graph manipulation.
``repro.baselines``
    The dPRO-style replayer and an analytical iteration-time model.
``repro.analysis``
    Comparison and reporting helpers used by the benchmark harness.
"""

from repro.version import __version__

__all__ = ["__version__"]
