"""Command-line interface.

``repro-lumos`` exposes the core workflow of the paper's Figure 2:

* ``emulate``  — run the cluster emulator and save Kineto-style traces
  (the substitute for profiling a real training job); with
  ``--workload serving`` it emulates an LLM inference episode
  (prefill + autoregressive decode) instead of a training iteration;
* ``replay``   — build the execution graph from saved traces and replay it;
* ``breakdown`` — print the execution-time breakdown of saved traces;
* ``predict``  — manipulate the graph of a base trace to estimate a new
  ``--target`` (a TPxPPxDP parallelism label, a model name, serving
  knobs ``batch=/prompt=/tp=``, or a hardware retarget ``gpu=H200-SXM``
  — composable with one workload axis, ``"tp=8,gpu=H200-SXM"`` — the
  kind is auto-detected, or forced with a ``parallelism:`` / ``model:``
  / ``serving:`` / ``hardware:`` prefix); for continuous-batching
  traces the report includes TTFT, latency percentiles, tokens/s and
  SLO goodput at ``--slo-ms``;
* ``sweep``    — evaluate a whole grid of what-if scenarios from one base
  trace, with a process pool and an on-disk result cache; repeatable
  ``--target`` flags populate the axes the same way;
* ``export-timeline`` — render a trace's profiled, replayed and predicted
  schedules as chrome-trace JSON for Perfetto / ``chrome://tracing``;
  continuous-batching episodes add one per-request Gantt track block;
* ``serve``    — run the sweep service (:mod:`repro.service`): an HTTP
  API + worker queue over the shared on-disk sweep cache, with
  server-registered trace bundles (``--trace NAME=DIR``, repeatable);
* ``work``     — run a dedicated worker fleet (one process, ``--workers
  N`` threads) draining a *shared* service ``--root`` alongside any
  servers and other fleets on it; claims are heartbeated leases, so a
  SIGKILLed fleet's jobs are requeued and re-run by the survivors, and
  SIGTERM drains gracefully (finish the in-flight job, release its
  lease, exit 0);
* ``submit``   — submit a sweep (or ``--predict`` single prediction) to
  a running service, long-poll to completion and print the ranked
  table — the same unified ``--target`` flags as ``predict``/``sweep``;
  ``--webhook URL`` asks the server to POST the terminal job record
  (the server must opt in: ``serve --allow-webhooks`` / ``--webhook-host``);
* ``cache``    — operate a long-lived shared sweep cache: ``stats``
  prints entry/bundle counts and bytes, ``prune --max-size-mb`` evicts
  oldest-first down to a size budget.

``emulate --workload serving --arrival poisson:rate=100,n=16,seed=3``
emulates a continuous-batching *stream* (Poisson / bursty / trace
arrivals) instead of one fixed batch.

The pre-unification target flags (``--target-parallelism``,
``--target-model``, ``--target-serving``; sweep's ``--targets`` /
``--target-models`` / ``--serving``) keep working as hidden aliases but
emit a :class:`DeprecationWarning` and are scheduled for removal.

Every subcommand accepts ``--profile out.json`` to collect the pipeline's
own spans and metrics (:mod:`repro.observability`) and write the
structured run report next to the command's normal output.

Every subcommand is a thin presentation layer over :class:`repro.api.Study`
— the library owns replay, calibration, manipulation and memoization; the
CLI parses arguments, formats tables and maps typed errors (e.g.
:class:`repro.api.PredictError` for unsupported targets) to exit code 2.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

from dataclasses import replace

from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.api import (
    KIND_HARDWARE,
    KIND_PARALLELISM,
    KIND_SERVING,
    Study,
    StudyError,
    parse_target,
)
from repro.baselines.dpro import dpro_replay
from repro.core.breakdown import compute_breakdown
from repro.emulator.api import emulate
from repro.observability import export_timeline
from repro.observability import tracing as observability
from repro.sweep import SweepSpec, SweepSpecError, WhatIfSpec
from repro.sweep.analysis import format_report
from repro.trace.kineto import TraceBundle
from repro.version import __version__
from repro.workload.arrivals import parse_arrival
from repro.workload.inference import InferenceConfig
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="gpt3-15b", help="model name (Table 1/2)")
    parser.add_argument("--parallelism", default="2x2x4", help="TPxPPxDP label")
    parser.add_argument("--micro-batch-size", type=int, default=2)
    parser.add_argument("--num-microbatches", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)


def _training_from_args(args: argparse.Namespace) -> TrainingConfig:
    return TrainingConfig(micro_batch_size=args.micro_batch_size,
                          num_microbatches=args.num_microbatches)


def _study_from_args(args: argparse.Namespace) -> Study:
    return Study.from_trace(args.trace, model=args.model,
                            parallelism=args.parallelism,
                            training=_training_from_args(args))


def _inference_from_args(args: argparse.Namespace) -> InferenceConfig:
    arrival = parse_arrival(args.arrival) if getattr(args, "arrival", None) else None
    return InferenceConfig(batch_size=args.requests,
                           prompt_length=args.prompt_length,
                           decode_length=args.decode_length,
                           kv_dtype=args.kv_dtype,
                           arrival=arrival)


def _target_parent() -> argparse.ArgumentParser:
    """Shared ``--target`` options for predict / sweep / export-timeline."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--target", action="append", default=[],
                        metavar="[KIND:]TARGET",
                        help="prediction target (repeatable): a TPxPPxDP "
                             "label, a model name, serving knobs "
                             "'batch=N,prompt=N,tp=N', or a GPU retarget "
                             "'gpu=H200-SXM' (composable with one workload "
                             "axis, e.g. 'tp=8,gpu=H200-SXM' or "
                             "'parallelism=2x2x8,gpu=B200'); the kind is "
                             "auto-detected, or forced with a "
                             "'parallelism:'/'model:'/'serving:'/"
                             "'hardware:' prefix")
    # Pre-unification spellings, kept as working hidden aliases.
    parent.add_argument("--target-parallelism", help=argparse.SUPPRESS)
    parent.add_argument("--target-model", help=argparse.SUPPRESS)
    parent.add_argument("--target-serving", help=argparse.SUPPRESS)
    return parent


def _warn_legacy_flag(flag: str, replacement: str) -> None:
    warnings.warn(f"{flag} is deprecated and scheduled for removal; "
                  f"use {replacement} instead", DeprecationWarning,
                  stacklevel=3)


def _collect_targets(args: argparse.Namespace) -> list[str]:
    """Merge ``--target`` entries with the legacy per-kind flags.

    Legacy flags come last, prefixed so the unified parser cannot
    misclassify them, in the serving → model → parallelism order the
    pre-unification ``export-timeline`` appended its sections.  Each
    legacy flag warns: they are scheduled for removal.
    """
    targets = list(args.target)
    if args.target_serving:
        _warn_legacy_flag("--target-serving", "--target 'serving:...'")
        targets.append(f"serving:{args.target_serving}")
    if args.target_model:
        _warn_legacy_flag("--target-model", "--target 'model:...'")
        targets.append(f"model:{args.target_model}")
    if args.target_parallelism:
        _warn_legacy_flag("--target-parallelism", "--target 'parallelism:...'")
        targets.append(f"parallelism:{args.target_parallelism}")
    return targets


def _split_csv(values: list[str] | None) -> list[str]:
    parts: list[str] = []
    for value in values or []:
        parts.extend(part for part in value.split(",") if part)
    return parts


def _serving_metrics_lines(rows: list[tuple[str, object]]) -> list[str]:
    lines = []
    for label, m in rows:
        lines.append(f"  {label}: ttft p50/p99 {m.ttft_p50_ms:.2f}/"
                     f"{m.ttft_p99_ms:.2f} ms, latency p50/p99 "
                     f"{m.latency_p50_ms:.2f}/{m.latency_p99_ms:.2f} ms, "
                     f"{m.tokens_per_s:.0f} tokens/s, goodput "
                     f"{m.goodput_rps:.1f} req/s "
                     f"({m.slo_attainment:.0%} within SLO)")
    return lines


def _cmd_emulate(args: argparse.Namespace) -> int:
    model = gpt3_model(args.model)
    parallel = ParallelismConfig.parse(args.parallelism)
    if args.workload == "serving":
        # The builder itself validates too (TP divisibility, cluster
        # size); every configuration error maps to exit 2, not a traceback.
        try:
            parallel.validate_for_inference()
            inference = _inference_from_args(args)
            result = emulate(model, parallel, iterations=args.iterations,
                             seed=args.seed, inference=inference)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if inference.arrival is not None:
            label = (f"serving stream ({inference.arrival.label()}, "
                     f"batch cap {inference.batch_size}, "
                     f"{inference.prompt_length}+{inference.decode_length} tokens)")
        else:
            label = (f"serving episode ({inference.batch_size} requests, "
                     f"{inference.prompt_length}+{inference.decode_length} tokens)")
    else:
        result = emulate(model, parallel, _training_from_args(args),
                         iterations=args.iterations, seed=args.seed)
        label = "training job"
    result.profiled.save(args.output)
    print(f"saved profiled trace of {model.name} {parallel.label()} "
          f"{label} to {args.output}")
    for index in range(args.iterations):
        print(f"iteration {index}: {result.iteration_time(index) / 1000:.1f} ms")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    bundle = TraceBundle.load(args.trace)
    result = dpro_replay(bundle) if args.baseline == "dpro" \
        else Study.from_trace(bundle).replay()
    print(f"replayed iteration time: {result.iteration_time_ms:.1f} ms")
    rows = [format_breakdown_row("replayed", result.breakdown())]
    print(format_table(breakdown_headers(), rows))
    return 0


def _cmd_breakdown(args: argparse.Namespace) -> int:
    bundle = TraceBundle.load(args.trace)
    rows = [format_breakdown_row("measured", compute_breakdown(bundle))]
    print(f"iteration time: {bundle.iteration_time() / 1000:.1f} ms")
    print(format_table(breakdown_headers(), rows))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    targets = _collect_targets(args)
    if len(targets) != 1:
        print("predict requires a single --target (or exactly one of "
              "--target-parallelism, --target-model or --target-serving)",
              file=sys.stderr)
        args.parser.print_usage(sys.stderr)
        return 2
    try:
        study = _study_from_args(args)
        prediction = study.predict(targets[0])
        metrics = prediction.serving_metrics(deadline_ms=args.slo_ms)
        base_metrics = (study.base_serving_metrics(deadline_ms=args.slo_ms)
                        if metrics is not None else None)
    except StudyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"base replay: {study.base_time_ms:.1f} ms")
    print(f"predicted {prediction.label}: {prediction.iteration_time_ms:.1f} ms")
    rows = [
        format_breakdown_row("base", study.breakdown()),
        format_breakdown_row(prediction.label, prediction.breakdown()),
    ]
    print(format_table(breakdown_headers(), rows))
    if metrics is not None:
        print(f"serving metrics (SLO {metrics.deadline_ms:g} ms):")
        serving_rows = [(prediction.label, metrics)]
        if base_metrics is not None:
            serving_rows.insert(0, ("base", base_metrics))
        for line in _serving_metrics_lines(serving_rows):
            print(line)
    return 0


def _cmd_export_timeline(args: argparse.Namespace) -> int:
    try:
        bundle = TraceBundle.load(args.trace)
        study = Study.from_trace(bundle, model=args.model,
                                 parallelism=args.parallelism,
                                 training=_training_from_args(args))
        sections = [("profiled", bundle), ("replayed", study.replay())]
        serving_tracks = []
        base_metrics = study.base_serving_metrics()
        if base_metrics is not None:
            serving_tracks.append(("replayed", base_metrics))
        for target in _collect_targets(args):
            prediction = study.predict(target)
            sections.append((prediction.label, prediction))
            metrics = prediction.serving_metrics()
            if metrics is not None:
                serving_tracks.append((prediction.label, metrics))
        payload = export_timeline(sections, args.output, serving=serving_tracks)
    except (StudyError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    labels = ", ".join(payload["otherData"]["sections"])
    print(f"wrote {len(payload['traceEvents'])} chrome-trace events "
          f"({labels}) to {args.output}")
    if payload["otherData"].get("request_tracks"):
        print(f"per-request tracks: "
              f"{', '.join(payload['otherData']['request_tracks'])}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        if args.spec:
            spec = SweepSpec.load(args.spec)
            if args.slo_ms is not None:
                spec = replace(spec, slo_ms=args.slo_ms)
            study = Study.from_trace(args.trace, model=spec.base_model,
                                     parallelism=spec.base_parallelism,
                                     training=spec.training(),
                                     inference=spec.inference)
            result = study.sweep(spec, workers=args.workers,
                                 cache_dir=args.cache_dir, force=args.force)
        else:
            # The legacy axis flags map straight onto their axis; unified
            # --target entries decompose by manipulation kind (composite
            # 'tp=8,gpu=B200' targets populate two axes, which the spec
            # re-crosses into the full hardware × workload grid).
            if args.targets:
                _warn_legacy_flag("--targets", "--target")
            if args.target_models:
                _warn_legacy_flag("--target-models", "--target 'model:...'")
            if args.serving:
                _warn_legacy_flag("--serving", "--target 'serving:...'")
            parallelism_axis = _split_csv(args.targets)
            models_axis = _split_csv(args.target_models)
            serving_axis = list(args.serving)
            hardware_axis: list[str] = []
            for text in _collect_targets(args):
                for kind, label in parse_target(text).manipulations:
                    if kind == KIND_PARALLELISM:
                        parallelism_axis.append(label)
                    elif kind == KIND_SERVING:
                        serving_axis.append(label)
                    elif kind == KIND_HARDWARE:
                        name = (label[len("gpu="):]
                                if label.startswith("gpu=") else label)
                        if name not in hardware_axis:
                            hardware_axis.append(name)
                    else:
                        models_axis.append(label)
            if not (parallelism_axis or models_axis or serving_axis
                    or hardware_axis):
                print("sweep requires --spec, --target, --targets, "
                      "--target-models or --serving", file=sys.stderr)
                args.parser.print_usage(sys.stderr)
                return 2
            # The study recovers a serving base from the trace metadata, so
            # inline --serving axes need no spec-side inference block.
            study = Study.from_trace(args.trace, model=args.model,
                                     parallelism=args.parallelism,
                                     training=_training_from_args(args))
            result = study.sweep(
                parallelism=tuple(parallelism_axis),
                models=tuple(models_axis),
                serving=tuple(serving_axis),
                hardware=tuple(hardware_axis),
                whatif=tuple(WhatIfSpec.parse(w) for w in args.whatif),
                slo_ms=args.slo_ms,
                workers=args.workers, cache_dir=args.cache_dir, force=args.force)
    except (SweepSpecError, StudyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_report(result, top=args.top))
    return 0


def _parse_trace_registrations(entries: list[str]) -> dict[str, str]:
    """Parse repeated ``--trace NAME=DIR`` registrations."""
    traces: dict[str, str] = {}
    for entry in entries:
        name, sep, path = entry.partition("=")
        if not sep or not name or not path:
            raise ValueError(f"bad --trace '{entry}' (expected NAME=DIR)")
        traces[name] = path
    return traces


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ServiceApp

    if args.allow_webhooks:
        webhook_hosts: tuple[str, ...] | None = ("*",)
    elif args.webhook_host:
        webhook_hosts = tuple(args.webhook_host)
    else:
        webhook_hosts = None
    try:
        traces = _parse_trace_registrations(args.trace)
        app = ServiceApp(args.root, host=args.host, port=args.port,
                         workers=args.workers, traces=traces,
                         cache_root=args.cache_dir,
                         poll_interval=args.poll_interval,
                         lease_seconds=args.lease_seconds,
                         max_attempts=args.max_attempts,
                         webhook_hosts=webhook_hosts)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    host, port = app.address
    print(f"sweep service listening on http://{host}:{port} "
          f"(workers={args.workers}, traces={', '.join(traces) or 'none'}, "
          f"root={args.root})", flush=True)
    return app.serve_forever()


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.service.worker import WorkerFleet

    try:
        traces = _parse_trace_registrations(args.trace)
        fleet = WorkerFleet(args.root, traces=traces,
                            cache_root=args.cache_dir, workers=args.workers,
                            lease_seconds=args.lease_seconds,
                            max_attempts=args.max_attempts,
                            poll_interval=args.poll_interval)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    worker_ids = ", ".join(worker.worker_id for worker in fleet.workers)
    print(f"worker fleet draining {args.root} "
          f"(workers={len(fleet.workers)} [{worker_ids}], "
          f"lease={args.lease_seconds:g}s)", flush=True)
    status = fleet.run(install_signals=True)
    print(f"fleet drained: {fleet.jobs_processed} jobs processed", flush=True)
    return status


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.protocol import bundle_to_json
    from repro.sweep.runner import ScenarioResult
    from repro.sweep.analysis import format_ranked_table

    targets = _collect_targets(args)
    body: dict[str, object] = {
        "kind": "predict" if args.predict else "sweep",
        "reuse": args.reuse,
    }
    base: dict[str, object] = {}
    for key, value in (("model", args.base_model),
                       ("parallelism", args.base_parallelism),
                       ("micro_batch_size", args.micro_batch_size),
                       ("num_microbatches", args.num_microbatches)):
        if value is not None:
            base[key] = value
    if base:
        body["base"] = base
    if args.slo_ms is not None:
        body["slo_ms"] = args.slo_ms
    if args.webhook:
        body["webhook"] = args.webhook
    if args.predict:
        if len(targets) != 1:
            print("submit --predict requires exactly one --target", file=sys.stderr)
            return 2
        body["target"] = targets[0]
    else:
        if args.spec:
            try:
                spec = SweepSpec.load(args.spec)
            except SweepSpecError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            body["spec"] = spec.to_json()
        if targets:
            body["targets"] = targets
        if args.whatif:
            body["whatif"] = list(args.whatif)
        if not (args.spec or targets or args.whatif):
            print("submit requires --spec, --target or --whatif (or --predict)",
                  file=sys.stderr)
            return 2
    if args.trace_path:
        try:
            body["bundle"] = bundle_to_json(TraceBundle.load(args.trace_path))
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load trace bundle {args.trace_path}: {error}",
                  file=sys.stderr)
            return 2
    elif args.trace:
        body["trace"] = args.trace
    else:
        print("submit requires --trace NAME (server-registered) or "
              "--trace-path DIR (inline upload)", file=sys.stderr)
        return 2

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        submitted = client.submit(body)
        job = submitted["job"]
        print(f"job {job['job_id']}: {job['state']}"
              + (" (deduped)" if submitted["deduped"] else ""))
        if args.no_wait:
            return 0
        job = client.wait(job["job_id"], timeout=args.timeout,
                          poll_interval=args.poll_interval)
        if job["state"] != "done":
            error = job.get("error") or {}
            print(f"error: job {job['job_id']} {job['state']} "
                  f"[{error.get('code', 'unknown')}]: {error.get('message', '')}",
                  file=sys.stderr)
            return 2
        result = client.result(job["job_id"])["result"]
    except ServiceError as error:
        print(f"error [{error.code}]: {error}", file=sys.stderr)
        return 2
    if result["kind"] == "predict":
        print(f"base: {result['base_time_us'] / 1000.0:.1f} ms")
        print(f"predicted {result['label']}: "
              f"{result['iteration_time_us'] / 1000.0:.1f} ms "
              f"(speedup {result['speedup_vs_base']:.2f}x)")
        return 0
    cache = result["cache"]
    rows = [ScenarioResult.from_json(row, from_cache=bool(row["from_cache"]))
            for row in result["scenarios"]]
    print(f"evaluated {len(rows)} scenarios "
          f"(cache hits={cache['hits']} misses={cache['misses']} "
          f"hit-rate={cache['hit_rate']:.0%})")
    print(format_ranked_table(rows, top=args.top))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sweep.cache import SweepCache

    cache = SweepCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.disk_stats()
        print(f"cache {stats['root']}: {stats['entries']} entries across "
              f"{stats['bundles']} bundles, "
              f"{stats['total_bytes'] / 1e6:.2f} MB")
        return 0
    # prune
    budget = int(args.max_size_mb * 1e6)
    summary = cache.prune(budget)
    print(f"pruned {summary['removed']} entries "
          f"({summary['freed_bytes'] / 1e6:.2f} MB freed); "
          f"{summary['remaining_entries']} entries "
          f"({summary['remaining_bytes'] / 1e6:.2f} MB) remain")
    return 0


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", metavar="PATH",
                        help="collect pipeline spans/metrics during this "
                             "command and write the JSON run report to PATH")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-lumos",
                                     description="Lumos reproduction command-line interface")
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    emulate_parser = subparsers.add_parser(
        "emulate", help="emulate a training job or serving episode and save traces")
    _add_workload_arguments(emulate_parser)
    emulate_parser.add_argument("--iterations", type=int, default=2)
    emulate_parser.add_argument("--output", required=True, help="directory for the trace bundle")
    emulate_parser.add_argument("--workload", choices=["training", "serving"],
                                default="training",
                                help="emulate a training iteration (default) or an "
                                     "LLM inference episode (prefill + decode)")
    emulate_parser.add_argument("--requests", type=int, default=8,
                                help="serving: concurrent requests per decode batch")
    emulate_parser.add_argument("--prompt-length", type=int, default=512,
                                help="serving: prompt tokens per request")
    emulate_parser.add_argument("--decode-length", type=int, default=64,
                                help="serving: generated tokens per request")
    emulate_parser.add_argument("--kv-dtype", default="bf16",
                                choices=["bf16", "fp16", "fp32", "fp8"],
                                help="serving: KV-cache storage datatype")
    emulate_parser.add_argument("--arrival", metavar="KIND:KNOBS",
                                help="serving: request-arrival process for a "
                                     "continuous-batching stream, e.g. "
                                     "'poisson:rate=100,n=16,seed=3', "
                                     "'bursty:rate=100,cv=4,n=16' or "
                                     "'trace:0,2.5,7.25' (offsets in ms); "
                                     "--requests caps the decode batch")
    emulate_parser.set_defaults(func=_cmd_emulate)

    replay_parser = subparsers.add_parser("replay", help="replay a saved trace bundle")
    replay_parser.add_argument("--trace", required=True, help="trace bundle directory")
    replay_parser.add_argument("--baseline", choices=["lumos", "dpro"], default="lumos")
    replay_parser.set_defaults(func=_cmd_replay)

    breakdown_parser = subparsers.add_parser(
        "breakdown", help="print a trace's execution breakdown")
    breakdown_parser.add_argument("--trace", required=True, help="trace bundle directory")
    breakdown_parser.set_defaults(func=_cmd_breakdown)

    target_parent = _target_parent()

    predict_parser = subparsers.add_parser(
        "predict", parents=[target_parent],
        help="estimate a new configuration from a base trace")
    _add_workload_arguments(predict_parser)
    predict_parser.add_argument("--trace", required=True, help="base trace bundle directory")
    predict_parser.add_argument("--slo-ms", type=float, default=None,
                                help="per-request latency deadline for SLO "
                                     "attainment / goodput (continuous-"
                                     "batching traces; default 500 ms)")
    predict_parser.set_defaults(func=_cmd_predict, parser=predict_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", parents=[target_parent],
        help="evaluate a grid of what-if scenarios from a base trace")
    _add_workload_arguments(sweep_parser)
    sweep_parser.add_argument("--trace", required=True, help="base trace bundle directory")
    sweep_parser.add_argument("--spec", help="sweep spec JSON file (overrides inline axes)")
    # Pre-unification axis flags; --target entries append to the same axes.
    sweep_parser.add_argument("--targets", action="append",
                              help=argparse.SUPPRESS)
    sweep_parser.add_argument("--target-models", action="append",
                              help=argparse.SUPPRESS)
    sweep_parser.add_argument("--serving", action="append", default=[],
                              help=argparse.SUPPRESS)
    sweep_parser.add_argument("--whatif", action="append", default=[],
                              help="what-if scenario: 'launch', 'comm[:group]:S' or "
                                   "'CLASS:S' (repeatable)")
    sweep_parser.add_argument("--slo-ms", type=float, default=None,
                              help="per-request latency deadline for serving "
                                   "axes (ranked by goodput; default 500 ms)")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="process count for scenario evaluation")
    sweep_parser.add_argument("--cache-dir", help="on-disk result cache directory")
    sweep_parser.add_argument("--force", action="store_true",
                              help="re-evaluate scenarios even when cached")
    sweep_parser.add_argument("--top", type=int, default=None,
                              help="only print the best N scenarios")
    sweep_parser.set_defaults(func=_cmd_sweep, parser=sweep_parser)

    timeline_parser = subparsers.add_parser(
        "export-timeline", parents=[target_parent],
        help="export profiled/replayed/predicted schedules as chrome-trace JSON")
    _add_workload_arguments(timeline_parser)
    timeline_parser.add_argument("--trace", required=True,
                                 help="trace bundle directory")
    timeline_parser.add_argument("--output", required=True,
                                 help="chrome-trace JSON output path")
    timeline_parser.set_defaults(func=_cmd_export_timeline)

    serve_parser = subparsers.add_parser(
        "serve", help="run the sweep service (HTTP API + worker queue)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8321,
                              help="listen port (0 picks a free one)")
    serve_parser.add_argument("--root", required=True,
                              help="service state directory (job store, "
                                   "uploaded bundles, default cache)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="shared sweep-cache directory "
                                   "(default: <root>/sweep-cache)")
    serve_parser.add_argument("--workers", type=int, default=1,
                              help="in-process worker threads draining the queue")
    serve_parser.add_argument("--trace", action="append", default=[],
                              metavar="NAME=DIR",
                              help="register a saved trace bundle under NAME "
                                   "(repeatable)")
    serve_parser.add_argument("--poll-interval", type=float, default=0.05,
                              help="worker idle-poll interval in seconds")
    serve_parser.add_argument("--lease-seconds", type=float, default=30.0,
                              help="claim-lease lifetime without a heartbeat; "
                                   "an expired lease requeues the job")
    serve_parser.add_argument("--max-attempts", type=int, default=3,
                              help="attempts (initial + lease-expiry requeues) "
                                   "before a job fails as worker-lost")
    serve_parser.add_argument("--allow-webhooks", action="store_true",
                              help="accept submission 'webhook' URLs for any "
                                   "host (off by default: webhook POSTs "
                                   "originate from the service's network)")
    serve_parser.add_argument("--webhook-host", action="append", default=[],
                              metavar="HOST",
                              help="accept webhooks only for HOST "
                                   "(repeatable; implies webhooks are on)")
    serve_parser.set_defaults(func=_cmd_serve)

    work_parser = subparsers.add_parser(
        "work", help="run a dedicated worker fleet draining a shared "
                     "service root")
    work_parser.add_argument("--root", required=True,
                             help="shared service state directory (the same "
                                  "--root a server was given)")
    work_parser.add_argument("--cache-dir", default=None,
                             help="shared sweep-cache directory "
                                  "(default: <root>/cache)")
    work_parser.add_argument("--workers", type=int, default=1,
                             help="worker threads in this fleet process")
    work_parser.add_argument("--trace", action="append", default=[],
                             metavar="NAME=DIR",
                             help="register a saved trace bundle under NAME "
                                  "(repeatable); uploads spooled by a server "
                                  "on the shared root resolve automatically")
    work_parser.add_argument("--poll-interval", type=float, default=0.05,
                             help="idle-poll interval in seconds")
    work_parser.add_argument("--lease-seconds", type=float, default=30.0,
                             help="claim-lease lifetime without a heartbeat")
    work_parser.add_argument("--max-attempts", type=int, default=3,
                             help="attempts before a job fails as worker-lost")
    work_parser.set_defaults(func=_cmd_work)

    submit_parser = subparsers.add_parser(
        "submit", parents=[target_parent],
        help="submit a sweep or prediction job to a running sweep service")
    submit_parser.add_argument("--url", default="http://127.0.0.1:8321",
                               help="service base URL")
    submit_parser.add_argument("--trace", help="server-registered trace name")
    submit_parser.add_argument("--trace-path",
                               help="local trace bundle directory to upload inline")
    submit_parser.add_argument("--spec", help="sweep spec JSON file")
    submit_parser.add_argument("--whatif", action="append", default=[],
                               help="what-if scenario: 'launch', 'comm[:group]:S' "
                                    "or 'CLASS:S' (repeatable)")
    submit_parser.add_argument("--predict", action="store_true",
                               help="submit a single-prediction job for the one "
                                    "--target instead of a sweep")
    submit_parser.add_argument("--slo-ms", type=float, default=None,
                               help="per-request latency deadline for serving "
                                    "metrics / goodput ranking")
    submit_parser.add_argument("--base-model", default=None,
                               help="override the base model recorded in the "
                                    "trace metadata")
    submit_parser.add_argument("--base-parallelism", default=None,
                               help="override the base TPxPPxDP label")
    submit_parser.add_argument("--micro-batch-size", type=int, default=None,
                               help="override the base micro-batch size "
                                    "(not recorded in trace metadata)")
    submit_parser.add_argument("--num-microbatches", type=int, default=None,
                               help="override the base microbatch count")
    submit_parser.add_argument("--reuse", action="store_true",
                               help="reuse an identical completed job instead "
                                    "of re-running it")
    submit_parser.add_argument("--webhook", default=None, metavar="URL",
                               help="http(s) URL the server POSTs the "
                                    "terminal job record to")
    submit_parser.add_argument("--no-wait", action="store_true",
                               help="submit and print the job id without polling")
    submit_parser.add_argument("--timeout", type=float, default=300.0,
                               help="overall polling deadline in seconds")
    submit_parser.add_argument("--poll-interval", type=float, default=0.2)
    submit_parser.add_argument("--top", type=int, default=None,
                               help="only print the best N scenarios")
    submit_parser.set_defaults(func=_cmd_submit, parser=submit_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or prune a shared on-disk sweep cache")
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="print entry counts and bytes")
    cache_stats.add_argument("--cache-dir", required=True)
    cache_stats.set_defaults(func=_cmd_cache)
    cache_prune = cache_sub.add_parser(
        "prune", help="evict oldest entries down to a size budget")
    cache_prune.add_argument("--cache-dir", required=True)
    cache_prune.add_argument("--max-size-mb", type=float, required=True,
                             help="keep at most this many MB of cached results")
    cache_prune.set_defaults(func=_cmd_cache)

    for subparser in subparsers.choices.values():
        _add_profile_argument(subparser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-lumos`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "profile", None):
        return args.func(args)
    with observability.profile(label=args.command) as collecting:
        status = args.func(args)
    try:
        with open(args.profile, "w", encoding="utf-8") as sink:
            json.dump(collecting.report(), sink, indent=2, sort_keys=True)
    except OSError as error:
        print(f"error: cannot write pipeline profile: {error}", file=sys.stderr)
        return status or 2
    print(f"wrote pipeline profile to {args.profile}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
