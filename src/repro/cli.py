"""Command-line interface.

``repro-lumos`` exposes the core workflow of the paper's Figure 2:

* ``emulate``  — run the cluster emulator and save Kineto-style traces
  (the substitute for profiling a real training job); with
  ``--workload serving`` it emulates an LLM inference episode
  (prefill + autoregressive decode) instead of a training iteration;
* ``replay``   — build the execution graph from saved traces and replay it;
* ``breakdown`` — print the execution-time breakdown of saved traces;
* ``predict``  — manipulate the graph of a base trace to estimate a new
  parallelism configuration, model architecture, or (for serving traces)
  a new ``--target-serving batch=/prompt=/tp=`` deployment;
* ``sweep``    — evaluate a whole grid of what-if scenarios from one base
  trace, with a process pool and an on-disk result cache;
* ``export-timeline`` — render a trace's profiled, replayed and predicted
  schedules as chrome-trace JSON for Perfetto / ``chrome://tracing``.

Every subcommand accepts ``--profile out.json`` to collect the pipeline's
own spans and metrics (:mod:`repro.observability`) and write the
structured run report next to the command's normal output.

Every subcommand is a thin presentation layer over :class:`repro.api.Study`
— the library owns replay, calibration, manipulation and memoization; the
CLI parses arguments, formats tables and maps typed errors (e.g.
:class:`repro.api.PredictError` for unsupported targets) to exit code 2.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.api import Study, StudyError
from repro.baselines.dpro import dpro_replay
from repro.core.breakdown import compute_breakdown
from repro.emulator.api import emulate
from repro.observability import export_timeline
from repro.observability import tracing as observability
from repro.sweep import SweepSpec, SweepSpecError, WhatIfSpec
from repro.sweep.analysis import format_report
from repro.trace.kineto import TraceBundle
from repro.version import __version__
from repro.workload.inference import InferenceConfig
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="gpt3-15b", help="model name (Table 1/2)")
    parser.add_argument("--parallelism", default="2x2x4", help="TPxPPxDP label")
    parser.add_argument("--micro-batch-size", type=int, default=2)
    parser.add_argument("--num-microbatches", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)


def _training_from_args(args: argparse.Namespace) -> TrainingConfig:
    return TrainingConfig(micro_batch_size=args.micro_batch_size,
                          num_microbatches=args.num_microbatches)


def _study_from_args(args: argparse.Namespace) -> Study:
    return Study.from_trace(args.trace, model=args.model,
                            parallelism=args.parallelism,
                            training=_training_from_args(args))


def _inference_from_args(args: argparse.Namespace) -> InferenceConfig:
    return InferenceConfig(batch_size=args.requests,
                           prompt_length=args.prompt_length,
                           decode_length=args.decode_length,
                           kv_dtype=args.kv_dtype)


def _cmd_emulate(args: argparse.Namespace) -> int:
    model = gpt3_model(args.model)
    parallel = ParallelismConfig.parse(args.parallelism)
    if args.workload == "serving":
        # The builder itself validates too (TP divisibility, cluster
        # size); every configuration error maps to exit 2, not a traceback.
        try:
            parallel.validate_for_inference()
            inference = _inference_from_args(args)
            result = emulate(model, parallel, iterations=args.iterations,
                             seed=args.seed, inference=inference)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        label = (f"serving episode ({inference.batch_size} requests, "
                 f"{inference.prompt_length}+{inference.decode_length} tokens)")
    else:
        result = emulate(model, parallel, _training_from_args(args),
                         iterations=args.iterations, seed=args.seed)
        label = "training job"
    result.profiled.save(args.output)
    print(f"saved profiled trace of {model.name} {parallel.label()} "
          f"{label} to {args.output}")
    for index in range(args.iterations):
        print(f"iteration {index}: {result.iteration_time(index) / 1000:.1f} ms")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    bundle = TraceBundle.load(args.trace)
    result = dpro_replay(bundle) if args.baseline == "dpro" \
        else Study.from_trace(bundle).replay()
    print(f"replayed iteration time: {result.iteration_time_ms:.1f} ms")
    rows = [format_breakdown_row("replayed", result.breakdown())]
    print(format_table(breakdown_headers(), rows))
    return 0


def _cmd_breakdown(args: argparse.Namespace) -> int:
    bundle = TraceBundle.load(args.trace)
    rows = [format_breakdown_row("measured", compute_breakdown(bundle))]
    print(f"iteration time: {bundle.iteration_time() / 1000:.1f} ms")
    print(format_table(breakdown_headers(), rows))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    targets = [t for t in (args.target_parallelism, args.target_model,
                           args.target_serving) if t]
    if len(targets) != 1:
        print("predict requires exactly one of --target-parallelism, "
              "--target-model or --target-serving", file=sys.stderr)
        args.parser.print_usage(sys.stderr)
        return 2
    try:
        study = _study_from_args(args)
        if args.target_serving:
            prediction = study.predict(serving=args.target_serving)
        elif args.target_model:
            prediction = study.predict(model=args.target_model)
        else:
            prediction = study.predict(args.target_parallelism)
    except StudyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"base replay: {study.base_time_ms:.1f} ms")
    print(f"predicted {prediction.label}: {prediction.iteration_time_ms:.1f} ms")
    rows = [
        format_breakdown_row("base", study.breakdown()),
        format_breakdown_row(prediction.label, prediction.breakdown()),
    ]
    print(format_table(breakdown_headers(), rows))
    return 0


def _cmd_export_timeline(args: argparse.Namespace) -> int:
    try:
        bundle = TraceBundle.load(args.trace)
        study = Study.from_trace(bundle, model=args.model,
                                 parallelism=args.parallelism,
                                 training=_training_from_args(args))
        sections = [("profiled", bundle), ("replayed", study.replay())]
        if args.target_serving:
            sections.append((args.target_serving,
                             study.predict(serving=args.target_serving)))
        if args.target_model:
            sections.append((args.target_model,
                             study.predict(model=args.target_model)))
        if args.target_parallelism:
            sections.append((args.target_parallelism,
                             study.predict(args.target_parallelism)))
        payload = export_timeline(sections, args.output)
    except (StudyError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    labels = ", ".join(payload["otherData"]["sections"])
    print(f"wrote {len(payload['traceEvents'])} chrome-trace events "
          f"({labels}) to {args.output}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        if args.spec:
            spec = SweepSpec.load(args.spec)
            study = Study.from_trace(args.trace, model=spec.base_model,
                                     parallelism=spec.base_parallelism,
                                     training=spec.training(),
                                     inference=spec.inference)
            result = study.sweep(spec, workers=args.workers,
                                 cache_dir=args.cache_dir, force=args.force)
        else:
            if not (args.targets or args.target_models or args.serving):
                print("sweep requires --spec, --targets, --target-models or "
                      "--serving", file=sys.stderr)
                args.parser.print_usage(sys.stderr)
                return 2
            # The study recovers a serving base from the trace metadata, so
            # inline --serving axes need no spec-side inference block.
            study = Study.from_trace(args.trace, model=args.model,
                                     parallelism=args.parallelism,
                                     training=_training_from_args(args))
            result = study.sweep(
                parallelism=tuple(p for p in (args.targets or "").split(",") if p),
                models=tuple(m for m in (args.target_models or "").split(",") if m),
                serving=tuple(args.serving),
                whatif=tuple(WhatIfSpec.parse(w) for w in args.whatif),
                workers=args.workers, cache_dir=args.cache_dir, force=args.force)
    except (SweepSpecError, StudyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_report(result, top=args.top))
    return 0


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", metavar="PATH",
                        help="collect pipeline spans/metrics during this "
                             "command and write the JSON run report to PATH")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-lumos",
                                     description="Lumos reproduction command-line interface")
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    emulate_parser = subparsers.add_parser(
        "emulate", help="emulate a training job or serving episode and save traces")
    _add_workload_arguments(emulate_parser)
    emulate_parser.add_argument("--iterations", type=int, default=2)
    emulate_parser.add_argument("--output", required=True, help="directory for the trace bundle")
    emulate_parser.add_argument("--workload", choices=["training", "serving"],
                                default="training",
                                help="emulate a training iteration (default) or an "
                                     "LLM inference episode (prefill + decode)")
    emulate_parser.add_argument("--requests", type=int, default=8,
                                help="serving: concurrent requests per decode batch")
    emulate_parser.add_argument("--prompt-length", type=int, default=512,
                                help="serving: prompt tokens per request")
    emulate_parser.add_argument("--decode-length", type=int, default=64,
                                help="serving: generated tokens per request")
    emulate_parser.add_argument("--kv-dtype", default="bf16",
                                choices=["bf16", "fp16", "fp32", "fp8"],
                                help="serving: KV-cache storage datatype")
    emulate_parser.set_defaults(func=_cmd_emulate)

    replay_parser = subparsers.add_parser("replay", help="replay a saved trace bundle")
    replay_parser.add_argument("--trace", required=True, help="trace bundle directory")
    replay_parser.add_argument("--baseline", choices=["lumos", "dpro"], default="lumos")
    replay_parser.set_defaults(func=_cmd_replay)

    breakdown_parser = subparsers.add_parser(
        "breakdown", help="print a trace's execution breakdown")
    breakdown_parser.add_argument("--trace", required=True, help="trace bundle directory")
    breakdown_parser.set_defaults(func=_cmd_breakdown)

    predict_parser = subparsers.add_parser("predict",
                                           help="estimate a new configuration from a base trace")
    _add_workload_arguments(predict_parser)
    predict_parser.add_argument("--trace", required=True, help="base trace bundle directory")
    predict_parser.add_argument("--target-parallelism", help="target TPxPPxDP label")
    predict_parser.add_argument("--target-model", help="target model name (Table 2 variants)")
    predict_parser.add_argument("--target-serving",
                                help="serving target 'batch=N,prompt=N,tp=N' "
                                     "(requires a serving-episode trace)")
    predict_parser.set_defaults(func=_cmd_predict, parser=predict_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="evaluate a grid of what-if scenarios from a base trace")
    _add_workload_arguments(sweep_parser)
    sweep_parser.add_argument("--trace", required=True, help="base trace bundle directory")
    sweep_parser.add_argument("--spec", help="sweep spec JSON file (overrides inline axes)")
    sweep_parser.add_argument("--targets",
                              help="comma-separated target TPxPPxDP labels (inline axis)")
    sweep_parser.add_argument("--target-models",
                              help="comma-separated target model names (inline axis)")
    sweep_parser.add_argument("--serving", action="append", default=[],
                              help="serving target 'batch=N,prompt=N,tp=N' "
                                   "(repeatable; requires a serving-episode trace)")
    sweep_parser.add_argument("--whatif", action="append", default=[],
                              help="what-if scenario: 'launch', 'comm[:group]:S' or "
                                   "'CLASS:S' (repeatable)")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="process count for scenario evaluation")
    sweep_parser.add_argument("--cache-dir", help="on-disk result cache directory")
    sweep_parser.add_argument("--force", action="store_true",
                              help="re-evaluate scenarios even when cached")
    sweep_parser.add_argument("--top", type=int, default=None,
                              help="only print the best N scenarios")
    sweep_parser.set_defaults(func=_cmd_sweep, parser=sweep_parser)

    timeline_parser = subparsers.add_parser(
        "export-timeline",
        help="export profiled/replayed/predicted schedules as chrome-trace JSON")
    _add_workload_arguments(timeline_parser)
    timeline_parser.add_argument("--trace", required=True,
                                 help="trace bundle directory")
    timeline_parser.add_argument("--output", required=True,
                                 help="chrome-trace JSON output path")
    timeline_parser.add_argument("--target-parallelism",
                                 help="also export the predicted schedule of "
                                      "this TPxPPxDP target")
    timeline_parser.add_argument("--target-model",
                                 help="also export the predicted schedule of "
                                      "this model architecture")
    timeline_parser.add_argument("--target-serving",
                                 help="also export the predicted schedule of a "
                                      "serving target 'batch=N,prompt=N,tp=N'")
    timeline_parser.set_defaults(func=_cmd_export_timeline)

    for subparser in subparsers.choices.values():
        _add_profile_argument(subparser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-lumos`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "profile", None):
        return args.func(args)
    with observability.profile(label=args.command) as collecting:
        status = args.func(args)
    try:
        with open(args.profile, "w", encoding="utf-8") as sink:
            json.dump(collecting.report(), sink, indent=2, sort_keys=True)
    except OSError as error:
        print(f"error: cannot write pipeline profile: {error}", file=sys.stderr)
        return status or 2
    print(f"wrote pipeline profile to {args.profile}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
