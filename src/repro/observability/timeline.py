"""Chrome-trace / Perfetto export of simulated timelines and pipeline spans.

A predicted schedule is a *timeline*, not a scalar — the whole point of
replaying an execution graph is that every task has a start and an end on
a concrete rank and stream.  This module renders those timelines as
chrome-trace JSON (the ``chrome://tracing`` / Perfetto "JSON trace
format"), laying tasks out one process per rank and one track per CPU
thread / CUDA stream, so a predicted schedule can be loaded next to the
profiled Kineto trace and visually diffed.

Two export families share the format:

* :func:`timeline_json` — one or more labelled *sections* (the profiled
  bundle, the replayed bundle, a predicted target ...), each section's
  ranks offset into their own process-id block with ``process_name``
  metadata like ``"profiled · rank 0"``;
* :func:`pipeline_profile_json` — the tool's own
  :class:`~repro.observability.tracing.PipelineProfile` spans as one
  flame-graph track, so "where did the sweep's time go" opens in the
  same viewer as the schedules it produced.

Sections accept anything timeline-shaped: a
:class:`~repro.trace.kineto.TraceBundle`, a single
:class:`~repro.trace.kineto.KinetoTrace`, a
:class:`~repro.core.simulator.SimulationResult`, a
:class:`~repro.core.engine.SessionRun`, a replay/prediction result — see
:func:`coerce_bundle`.

:func:`validate_chrome_trace` schema-checks a payload (every event a
complete ``"X"`` event or a ``"M"`` metadata record with the fields the
viewers require); the test suite and the CI smoke both run exports
through it before calling them loadable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.observability.tracing import PipelineProfile
from repro.trace.events import TraceEvent
from repro.trace.kineto import KinetoTrace, TraceBundle

#: Each section's ranks live in their own pid block: section ``i`` maps
#: rank ``r`` to pid ``i * _PID_STRIDE + r``.
_PID_STRIDE = 10_000
#: GPU tracks are offset past CPU thread ids so a stream id never merges
#: with a thread id sharing the same number.
_GPU_TID_BASE = 1_000


def coerce_bundle(source: Any) -> TraceBundle:
    """Coerce anything timeline-shaped into a :class:`TraceBundle`.

    Accepts a bundle, one per-rank trace, a ``SimulationResult`` (or any
    object with ``to_trace_bundle``), a ``SessionRun`` (or any object with
    ``to_simulation_result``), a ``ReplayResult`` (``replayed_trace``) or
    a ``Prediction`` (``result``).  Raises ``TypeError`` otherwise.
    """
    if isinstance(source, TraceBundle):
        return source
    if isinstance(source, KinetoTrace):
        bundle = TraceBundle()
        bundle.add(source)
        return bundle
    if hasattr(source, "to_trace_bundle"):
        return source.to_trace_bundle()
    if hasattr(source, "to_simulation_result"):
        return source.to_simulation_result().to_trace_bundle()
    if hasattr(source, "replayed_trace"):
        return coerce_bundle(source.replayed_trace)
    if hasattr(source, "result"):
        return coerce_bundle(source.result)
    raise TypeError(f"cannot render a timeline from {type(source).__name__}")


def _metadata_event(name: str, pid: int, tid: int, value: Any) -> dict[str, Any]:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": {"name": value}
            if name in ("process_name", "thread_name") else {"sort_index": value}}


def _track_identity(event: TraceEvent) -> tuple[int, str, int]:
    """(tid, track name, sort index) for one event's row in the viewer."""
    if event.is_gpu():
        stream = int(event.stream if event.stream is not None else event.tid)
        return (_GPU_TID_BASE + stream, f"cuda stream {stream}", _GPU_TID_BASE + stream)
    return (int(event.tid), f"cpu thread {event.tid}", int(event.tid))


def bundle_events(bundle: TraceBundle, *, label: str,
                  pid_base: int = 0) -> list[dict[str, Any]]:
    """Chrome-trace events of one bundle: ranks as processes, streams as tracks."""
    events: list[dict[str, Any]] = []
    for trace in bundle:
        if not 0 <= trace.rank < _PID_STRIDE:
            raise ValueError(f"rank {trace.rank} does not fit the timeline's "
                             f"per-section pid block of {_PID_STRIDE}")
        pid = pid_base + trace.rank
        events.append(_metadata_event("process_name", pid, 0, f"{label} · rank {trace.rank}"))
        events.append(_metadata_event("process_sort_index", pid, 0, pid))
        tracks: dict[int, tuple[str, int]] = {}
        for event in trace.events:
            tid, track_name, sort_index = _track_identity(event)
            tracks.setdefault(tid, (track_name, sort_index))
            payload = event.to_json()
            payload["pid"] = pid
            payload["tid"] = tid
            events.append(payload)
        for tid in sorted(tracks):
            track_name, sort_index = tracks[tid]
            events.append(_metadata_event("thread_name", pid, tid, track_name))
            events.append(_metadata_event("thread_sort_index", pid, tid, sort_index))
    return events


def serving_request_events(metrics: Any, *, label: str,
                           pid_base: int = 0) -> list[dict[str, Any]]:
    """Per-request lifecycle tracks of one serving episode.

    ``metrics`` is a :class:`repro.core.serving_metrics.ServingMetrics`
    (duck-typed through its ``requests`` tuple — the import would point
    against the dependency order).  Each request gets its own track with
    two complete events: ``queue+prefill`` (arrival until the first
    sampled token — the TTFT span) and ``decode`` (first token until the
    last), so a continuous-batching schedule reads as a per-request Gantt
    chart next to the rank/stream timelines.
    """
    pid = pid_base
    events = [_metadata_event("process_name", pid, 0, f"{label} · requests"),
              _metadata_event("process_sort_index", pid, 0, pid)]
    for request in metrics.requests:
        tid = int(request.request)
        events.append(_metadata_event("thread_name", pid, tid, f"request {tid}"))
        events.append(_metadata_event("thread_sort_index", pid, tid, tid))
        events.append({
            "name": "queue+prefill", "cat": "serving-request", "ph": "X",
            "ts": float(request.arrival_us), "dur": float(request.ttft_us),
            "pid": pid, "tid": tid,
            "args": {"request": tid, "ttft_ms": request.ttft_ms},
        })
        events.append({
            "name": "decode", "cat": "serving-request", "ph": "X",
            "ts": float(request.first_token_us),
            "dur": float(request.completion_us - request.first_token_us),
            "pid": pid, "tid": tid,
            "args": {"request": tid, "latency_ms": request.latency_ms,
                     "tokens": request.tokens},
        })
    return events


def timeline_json(sections: Sequence[tuple[str, Any]],
                  metadata: dict[str, Any] | None = None, *,
                  serving: Sequence[tuple[str, Any]] = ()) -> dict[str, Any]:
    """Render labelled timeline sections as one chrome-trace JSON object.

    ``sections`` is ``[(label, source), ...]`` — typically the profiled
    trace first, then the replayed or predicted timelines to diff against
    it.  Every section's ranks get their own process-id block and
    ``"<label> · rank <r>"`` process names, so Perfetto shows the
    schedules stacked and aligned on one time axis.

    ``serving`` is ``[(label, ServingMetrics), ...]``: each entry adds a
    per-request track block (:func:`serving_request_events`) after the
    schedule sections; the labels are recorded under
    ``otherData["request_tracks"]``.
    """
    if not sections:
        raise ValueError("timeline export needs at least one (label, source) section")
    events: list[dict[str, Any]] = []
    rendered: list[str] = []
    for index, (label, source) in enumerate(sections):
        bundle = coerce_bundle(source)
        events.extend(bundle_events(bundle, label=str(label),
                                    pid_base=index * _PID_STRIDE))
        rendered.append(str(label))
    request_tracks: list[str] = []
    for offset, (label, metrics) in enumerate(serving):
        events.extend(serving_request_events(
            metrics, label=str(label),
            pid_base=(len(sections) + offset) * _PID_STRIDE))
        request_tracks.append(str(label))
    other: dict[str, Any] = {"tool": "repro-lumos", "sections": rendered}
    if request_tracks:
        other["request_tracks"] = request_tracks
    other.update(metadata or {})
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def export_timeline(sections: Sequence[tuple[str, Any]], path: str | Path,
                    metadata: dict[str, Any] | None = None, *,
                    serving: Sequence[tuple[str, Any]] = ()) -> dict[str, Any]:
    """Write :func:`timeline_json` output to ``path`` and return the payload."""
    payload = timeline_json(sections, metadata=metadata, serving=serving)
    Path(path).write_text(json.dumps(payload), encoding="utf-8")
    return payload


def pipeline_profile_json(profile: PipelineProfile) -> dict[str, Any]:
    """Render a pipeline profile's spans as a chrome-trace flame graph.

    Spans land on one shared track (tid 0), with nesting reconstructed by
    the viewer from the span intervals; attributes ride along in
    ``args``.  Spans carrying a ``stage`` attribute (the service-span
    convention — ``admit`` / ``queue_wait`` / ``run``) are routed onto
    their own named ``stage: <name>`` track instead, so the queue-wait
    vs. run split of service jobs reads as parallel swimlanes without the
    exporter special-casing span names.
    """
    events: list[dict[str, Any]] = [
        _metadata_event("process_name", 0, 0,
                        f"repro pipeline ({profile.label or 'run'})"),
        _metadata_event("thread_name", 0, 0, "pipeline spans"),
    ]
    stage_tids: dict[str, int] = {}
    for span in sorted(profile.spans, key=lambda s: (s.start_us, s.span_id)):
        stage = span.attrs.get("stage")
        if stage is None:
            tid = 0
        else:
            stage = str(stage)
            tid = stage_tids.get(stage, 0)
            if tid == 0:
                tid = len(stage_tids) + 1
                stage_tids[stage] = tid
                events.append(_metadata_event("thread_name", 0, tid, f"stage: {stage}"))
                events.append(_metadata_event("thread_sort_index", 0, tid, tid))
        events.append({
            "name": span.name, "cat": "pipeline", "ph": "X",
            "ts": span.start_us, "dur": span.duration_us, "pid": 0, "tid": tid,
            "args": {"depth": span.depth, **span.attrs},
        })
    other: dict[str, Any] = {"tool": "repro-lumos", "label": profile.label}
    if stage_tids:
        other["stages"] = sorted(stage_tids)
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def validate_chrome_trace(payload: Any) -> list[dict[str, Any]]:
    """Schema-check a chrome-trace JSON payload; returns its event list.

    Accepts the two shapes the viewers load — a top-level object with a
    ``traceEvents`` array, or a bare array — and checks every event is
    either a complete ``"X"`` event with numeric ``ts``/``dur`` and
    integer ``pid``/``tid``, or a ``"M"`` metadata record with an ``args``
    object.  Raises ``ValueError`` on the first violation.
    """
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
    else:
        events = payload
    if not isinstance(events, list):
        raise ValueError("chrome trace must be a list or carry a traceEvents list")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where} has no event name")
        phase = event.get("ph")
        if phase == "M":
            if not isinstance(event.get("args"), dict):
                raise ValueError(f"{where}: metadata event without args")
        elif phase == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(f"{where}: complete event without numeric {key}")
        else:
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: missing integer {key}")
    return events


def iter_section_labels(payload: dict[str, Any]) -> Iterable[str]:
    """The section labels recorded by :func:`timeline_json`."""
    return tuple(payload.get("otherData", {}).get("sections", ()))
