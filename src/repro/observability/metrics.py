"""Process-local metrics registry: counters, gauges and histograms.

The registry is deliberately tiny — a dictionary per instrument family,
no dependencies, no background threads — because its job is narrow:
while a pipeline profile is active (:mod:`repro.observability.tracing`),
instrumented code records *why* the pipeline behaved the way it did
(cache hit rates, batched-fast-path vs. fallback counts, calibration
residuals, scenario throughput), and the run report snapshots the
registry next to the span tree.

Instruments are created on first use and addressed by name.  Histogram
values are kept as streaming summaries (count / total / min / max), not
raw samples, so recording is O(1) and the snapshot stays small however
many kernels a calibration observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class HistogramSummary:
    """Streaming summary of one histogram's observations."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {"count": self.count, "total": self.total,
                "min": self.minimum, "max": self.maximum, "mean": self.mean}


class MetricsRegistry:
    """Counters, gauges and histograms for one profiled run."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}

    def count(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to the counter ``name`` (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0.0) + float(n)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = HistogramSummary()
        histogram.observe(value)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able snapshot of every instrument, sorted by name."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].to_json()
                           for name in sorted(self.histograms)},
        }

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)
