"""Zero-dependency pipeline tracing: spans, profiles and run reports.

The prediction pipeline — replay, calibrate, derive-graph, compile,
simulate, sweep — is itself a system whose time has to go somewhere, and
:func:`trace_span` is the one primitive every layer uses to account for
it::

    with trace_span("study.replay", workload="training"):
        ...

Spans nest (the active span is the parent of any span opened inside it),
record monotonic wall time (:func:`time.perf_counter`), and carry
free-form attributes, either at creation or later via ``span.set(...)``
(e.g. the batch kernel records *why* it fell back after the fact).

**Tracing is strictly off by default.**  When no profile is active,
:func:`trace_span` returns one shared no-op singleton — no span object,
no timestamp read, no list append — so instrumented code paths are
bit-identical and allocation-free compared to uninstrumented ones
(``tests/test_observability.py`` locks this down).  Profiles are enabled
per run::

    with profile(label="sweep") as prof:
        study.sweep(...)
    prof.report()          # structured JSON: spans, stages, metrics

The CLI's ``--profile out.json`` flag and :meth:`repro.api.Study.report`
are thin wrappers over this module.  Profiles are process-local: sweep
worker processes run with tracing disabled unless they enable it
themselves, so the parent's report accounts pool time as one
``sweep.pool`` span rather than double-counting worker-side spans.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.observability.metrics import MetricsRegistry

_REPORT_SCHEMA = 1


@dataclass
class SpanRecord:
    """One finished span: name, interval, tree position and attributes.

    ``start_us``/``duration_us`` are relative to the profile's start, in
    microseconds of monotonic wall time.  ``parent`` is the ``span_id`` of
    the enclosing span (``-1`` for roots); records are appended in
    *completion* order, so a parent's record follows its children's.
    """

    span_id: int
    name: str
    start_us: float
    duration_us: float
    depth: int
    parent: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: The singleton every disabled :func:`trace_span` call returns.
NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span bound to one profile (created by :func:`trace_span`)."""

    __slots__ = ("_profile", "name", "attrs", "_start", "_span_id", "_depth", "_parent")

    def __init__(self, profile: "PipelineProfile", name: str,
                 attrs: dict[str, Any]) -> None:
        self._profile = profile
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes to the span (inside or outside the ``with``)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        profile = self._profile
        stack = profile._stack()
        self._parent = stack[-1] if stack else -1
        self._depth = len(stack)
        self._span_id = profile._next_id()
        stack.append(self._span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        profile = self._profile
        stack = profile._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        profile._record(SpanRecord(
            span_id=self._span_id,
            name=self.name,
            start_us=(self._start - profile.origin) * 1e6,
            duration_us=(end - self._start) * 1e6,
            depth=self._depth,
            parent=self._parent,
            attrs=self.attrs,
        ))
        return False


class PipelineProfile:
    """Everything one profiled run recorded: spans plus the metrics registry."""

    def __init__(self, label: str | None = None) -> None:
        self.label = label
        self.spans: list[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self.origin = time.perf_counter()
        self.started_unix = time.time()
        self.wall_time_us: float | None = None
        self._lock = threading.Lock()
        self._ids = 0
        self._local = threading.local()

    # -- recording (called from _Span) --------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            span_id = self._ids
            self._ids += 1
        return span_id

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    def finish(self) -> None:
        """Freeze the profile's wall time (idempotent)."""
        if self.wall_time_us is None:
            self.wall_time_us = (time.perf_counter() - self.origin) * 1e6

    # -- reporting -----------------------------------------------------------

    def stages(self) -> dict[str, dict[str, float]]:
        """Per-stage wall-time aggregation: spans grouped by name.

        ``total_us`` sums every span of the name (nested spans of the same
        name each count, like an inclusive-time flame-graph rollup).
        """
        stages: dict[str, dict[str, float]] = {}
        for span in self.spans:
            stage = stages.get(span.name)
            if stage is None:
                stage = stages[span.name] = {
                    "count": 0, "total_us": 0.0, "max_us": 0.0}
            stage["count"] += 1
            stage["total_us"] += span.duration_us
            if span.duration_us > stage["max_us"]:
                stage["max_us"] = span.duration_us
        for stage in stages.values():
            stage["mean_us"] = stage["total_us"] / stage["count"]
        return {name: stages[name] for name in sorted(stages)}

    def report(self) -> dict[str, Any]:
        """The structured JSON run report (spans, stages, metrics)."""
        self.finish()
        ordered = sorted(self.spans, key=lambda span: (span.start_us, span.span_id))
        return {
            "schema": _REPORT_SCHEMA,
            "enabled": True,
            "label": self.label,
            "started_unix": self.started_unix,
            "wall_time_us": self.wall_time_us,
            "stages": self.stages(),
            "metrics": self.metrics.snapshot(),
            "spans": [span.to_json() for span in ordered],
        }


def empty_report() -> dict[str, Any]:
    """The report shape served when no profile was ever active."""
    return {
        "schema": _REPORT_SCHEMA,
        "enabled": False,
        "label": None,
        "started_unix": None,
        "wall_time_us": None,
        "stages": {},
        "metrics": MetricsRegistry().snapshot(),
        "spans": [],
    }


# -- module state (process-local) --------------------------------------------

_ACTIVE: PipelineProfile | None = None
_LAST: PipelineProfile | None = None


def tracing_enabled() -> bool:
    """True while a pipeline profile is collecting."""
    return _ACTIVE is not None


def active_profile() -> PipelineProfile | None:
    """The currently collecting profile, if any."""
    return _ACTIVE


def last_profile() -> PipelineProfile | None:
    """The collecting profile, or the most recently finished one."""
    return _ACTIVE if _ACTIVE is not None else _LAST


def report() -> dict[str, Any]:
    """Run report of the active-or-last profile (disabled marker when none)."""
    profile = last_profile()
    if profile is None:
        return empty_report()
    return profile.report()


def trace_span(name: str, **attrs: Any) -> "_Span | _NoopSpan":
    """A context-manager span named ``name`` (the shared no-op when disabled).

    By convention, spans describing service-job phases carry a ``stage``
    attribute (``"admit"`` / ``"queue_wait"`` / ``"run"``): stage-tagged
    spans get their own named track in
    :func:`~repro.observability.timeline.pipeline_profile_json`, so the
    queue-wait vs. run split of a service job renders without the
    exporter special-casing span names.
    """
    profile = _ACTIVE
    if profile is None:
        return NOOP_SPAN
    return _Span(profile, name, attrs)


def record_span(name: str, *, start_unix: float, end_unix: float,
                **attrs: Any) -> None:
    """Record an externally timed interval as a root span (no-op when disabled).

    :func:`trace_span` can only time intervals that start after the span
    opens; some intervals are measured from wall-clock timestamps that
    predate the measuring code — e.g. a service job's queue wait starts
    when the *server* admits it, but is recorded by the *worker* that
    eventually claims it.  ``record_span`` maps the ``time.time()``
    interval ``[start_unix, end_unix]`` onto the active profile's
    timeline (via its ``started_unix`` anchor) and appends a depth-0
    span, so stage rollups and timeline export treat it like any other
    span.  Intervals that began before the profile did are clamped to
    the profile's start.
    """
    profile = _ACTIVE
    if profile is None:
        return
    start_us = max(0.0, (start_unix - profile.started_unix) * 1e6)
    end_us = max(start_us, (end_unix - profile.started_unix) * 1e6)
    profile._record(SpanRecord(
        span_id=profile._next_id(),
        name=name,
        start_us=start_us,
        duration_us=end_us - start_us,
        depth=0,
        parent=-1,
        attrs=dict(attrs),
    ))


def count(name: str, n: float = 1.0) -> None:
    """Increment a counter on the active profile (no-op when disabled)."""
    profile = _ACTIVE
    if profile is not None:
        profile.metrics.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active profile (no-op when disabled)."""
    profile = _ACTIVE
    if profile is not None:
        profile.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active profile (no-op when disabled)."""
    profile = _ACTIVE
    if profile is not None:
        profile.metrics.observe(name, value)


def start_profiling(label: str | None = None) -> PipelineProfile:
    """Begin collecting spans and metrics; returns the new profile.

    Raises ``RuntimeError`` when a profile is already active — nested
    profiles would silently split one run's spans across two reports.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("pipeline profiling is already active; "
                           "stop the current profile first")
    _ACTIVE = PipelineProfile(label)
    return _ACTIVE


def stop_profiling() -> PipelineProfile:
    """Stop collecting and return the finished profile."""
    global _ACTIVE, _LAST
    if _ACTIVE is None:
        raise RuntimeError("no pipeline profile is active")
    finished = _ACTIVE
    finished.finish()
    _ACTIVE = None
    _LAST = finished
    return finished


@contextmanager
def profile(label: str | None = None) -> Iterator[PipelineProfile]:
    """Collect spans and metrics for the duration of the ``with`` block."""
    collecting = start_profiling(label)
    try:
        yield collecting
    finally:
        stop_profiling()
