"""Pipeline observability: spans, metrics, run reports and timeline export.

See :mod:`repro.observability.tracing` for the span API (strictly no-op
unless a profile is active), :mod:`repro.observability.metrics` for the
registry snapshotted into run reports, and
:mod:`repro.observability.timeline` for chrome-trace / Perfetto export of
simulated timelines and pipeline profiles.
"""

from repro.observability.metrics import HistogramSummary, MetricsRegistry
from repro.observability.timeline import (
    coerce_bundle,
    export_timeline,
    pipeline_profile_json,
    serving_request_events,
    timeline_json,
    validate_chrome_trace,
)
from repro.observability.tracing import (
    NOOP_SPAN,
    PipelineProfile,
    SpanRecord,
    active_profile,
    count,
    empty_report,
    gauge,
    last_profile,
    observe,
    profile,
    record_span,
    report,
    start_profiling,
    stop_profiling,
    trace_span,
    tracing_enabled,
)

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PipelineProfile",
    "SpanRecord",
    "active_profile",
    "coerce_bundle",
    "count",
    "empty_report",
    "export_timeline",
    "gauge",
    "last_profile",
    "observe",
    "pipeline_profile_json",
    "profile",
    "record_span",
    "report",
    "serving_request_events",
    "start_profiling",
    "stop_profiling",
    "timeline_json",
    "trace_span",
    "tracing_enabled",
    "validate_chrome_trace",
]
