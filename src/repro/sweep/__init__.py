"""Parallel what-if sweep engine.

Where ``repro-lumos predict`` answers one "what if" question per
invocation — re-replaying the base trace and re-calibrating the perf model
every time — this package evaluates whole design spaces from one profiled
trace:

``repro.sweep.spec``
    Declarative sweep specifications (parallelism / model / what-if axes)
    and their expansion into a scenario grid.
``repro.sweep.runner``
    The sweep executor: replay + calibrate once, then evaluate scenarios
    serially or across a process pool.
``repro.sweep.cache``
    Content-addressed on-disk result cache that makes repeated sweeps
    incremental.
``repro.sweep.analysis``
    Ranked tables and Pareto frontiers (iteration time vs. world size).
``repro.sweep.hashing``
    Canonical content hashes for trace bundles and scenario specs.

The one-call entry point is :func:`sweep`.
"""

from __future__ import annotations

import sys
from pathlib import Path
from types import ModuleType
from typing import Any, Mapping

from repro.sweep.analysis import (
    format_pareto_table,
    format_ranked_table,
    format_report,
    pareto_frontier,
    rank_results,
)
from repro.sweep.cache import CacheStats, SweepCache
from repro.sweep.hashing import hash_json, hash_trace_bundle
from repro.sweep.runner import ScenarioResult, SweepResult, run_sweep
from repro.sweep.spec import ScenarioSpec, SweepSpec, SweepSpecError, WhatIfSpec
from repro.trace.kineto import TraceBundle

__all__ = [
    "CacheStats",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "SweepSpecError",
    "WhatIfSpec",
    "format_pareto_table",
    "format_ranked_table",
    "format_report",
    "hash_json",
    "hash_trace_bundle",
    "pareto_frontier",
    "rank_results",
    "run_sweep",
    "sweep",
]


def sweep(trace: TraceBundle | str | Path,
          spec: SweepSpec | Mapping[str, Any] | str | Path, *,
          workers: int = 1, cache_dir: str | Path | None = None,
          force: bool = False) -> SweepResult:
    """Evaluate a what-if sweep from one base trace.

    Parameters
    ----------
    trace:
        A loaded :class:`TraceBundle` or the directory of a saved bundle.
    spec:
        A :class:`SweepSpec`, a spec-shaped mapping, or the path of a JSON
        spec file (see ``repro.sweep.spec`` for the format).
    workers:
        Process count for scenario evaluation; ``1`` runs serially.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables caching.
    force:
        Re-evaluate cached scenarios.
    """
    bundle = trace if isinstance(trace, TraceBundle) else TraceBundle.load(trace)
    cache = SweepCache(Path(cache_dir)) if cache_dir is not None else None
    return run_sweep(bundle, SweepSpec.coerce(spec), workers=workers,
                     cache=cache, force=force)


class _CallableSweepModule(ModuleType):
    """Lets ``repro.sweep`` act as both the subpackage and the entry point.

    ``from repro import sweep; sweep(trace, spec)`` calls :func:`sweep`,
    while ``repro.sweep.SweepSpec`` and ``import repro.sweep`` keep their
    ordinary module semantics.
    """

    __call__ = staticmethod(sweep)


sys.modules[__name__].__class__ = _CallableSweepModule
