"""Parallel sweep evaluation.

The runner amortises the expensive, shared work of a what-if sweep through
a :class:`~repro.api.Study`: the base trace is replayed and the kernel
performance model calibrated exactly once, after which every scenario of
the expanded grid only needs graph manipulation plus one simulation.
Scenario evaluation is grouped by target configuration (all what-if
variants of ``2x2x8`` share one derived graph and one compiled session —
both memoized on the study) and the groups fan out over a
``ProcessPoolExecutor`` when ``workers > 1``.

Determinism: graph manipulation and simulation are pure functions of the
base graph, so serial and parallel runs produce identical results — results
are collected in expansion order regardless of which worker finished first.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.api.study import Study
from repro.core.serving_metrics import metrics_from_task_times, stream_plan_of
from repro.core.whatif import evaluate_scenarios, scenario_for
from repro.observability import tracing as observability
from repro.sweep.cache import CacheStats, SweepCache
from repro.sweep.hashing import hash_json, hash_trace_bundle
from repro.sweep.spec import (
    ScenarioSpec,
    SweepSpec,
    SweepSpecError,
    scenario_cache_key,
)
from repro.trace.kineto import TraceBundle
from repro.workload.model_config import gpt3_model


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of evaluating one scenario of the grid."""

    label: str
    kind: str
    target: str
    whatif: str | None
    world_size: int
    iteration_time_us: float
    base_time_us: float
    affected_tasks: int = 0
    from_cache: bool = False
    #: Per-request serving metrics summary (the
    #: :meth:`~repro.core.serving_metrics.ServingMetrics.to_json` payload)
    #: for continuous-batching episodes; ``None`` everywhere else.
    serving: Mapping[str, Any] | None = None

    @property
    def iteration_time_ms(self) -> float:
        return self.iteration_time_us / 1000.0

    @property
    def speedup_vs_base(self) -> float:
        if self.iteration_time_us <= 0:
            return float("inf")
        return self.base_time_us / self.iteration_time_us

    @property
    def goodput_rps(self) -> float | None:
        """SLO-meeting requests per second, when serving metrics exist."""
        if self.serving is None:
            return None
        return float(self.serving["goodput_rps"])

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "label": self.label,
            "kind": self.kind,
            "target": self.target,
            "whatif": self.whatif,
            "world_size": self.world_size,
            "iteration_time_us": self.iteration_time_us,
            "base_time_us": self.base_time_us,
            "affected_tasks": self.affected_tasks,
        }
        # Omitted when absent so pre-serving cache entries parse back
        # byte-identically.
        if self.serving is not None:
            payload["serving"] = dict(self.serving)
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any], from_cache: bool = False) -> "ScenarioResult":
        return cls(
            label=str(payload["label"]),
            kind=str(payload["kind"]),
            target=str(payload["target"]),
            whatif=payload.get("whatif"),
            world_size=int(payload["world_size"]),
            iteration_time_us=float(payload["iteration_time_us"]),
            base_time_us=float(payload["base_time_us"]),
            affected_tasks=int(payload.get("affected_tasks", 0)),
            from_cache=from_cache,
            serving=payload.get("serving"),
        )


def rank_results(results: Iterable[ScenarioResult]) -> list[ScenarioResult]:
    """Order results best-first.

    Training sweeps (and fixed-batch serving sweeps) rank fastest-first.
    When every result carries serving metrics the sweep is a continuous-
    batching one, and deployments are ranked the way serving engineers
    pick them: highest goodput first, p99 latency breaking ties.
    """
    ordered = list(results)
    if ordered and all(r.serving is not None for r in ordered):
        return sorted(ordered,
                      key=lambda r: (-r.goodput_rps,
                                     float(r.serving["latency_p99_ms"]),
                                     r.label))
    return sorted(ordered, key=lambda r: (r.iteration_time_us, r.label))


@dataclass
class SweepResult:
    """All scenario results of one sweep run, in expansion order."""

    spec: SweepSpec
    results: list[ScenarioResult]
    base_time_us: float
    elapsed_seconds: float
    workers: int
    cache_stats: CacheStats = field(default_factory=CacheStats)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def scenarios_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return len(self.results) / self.elapsed_seconds

    def ranked(self) -> list[ScenarioResult]:
        """Results ordered fastest-first (stable on ties via the label)."""
        return rank_results(self.results)

    def best(self) -> ScenarioResult:
        return self.ranked()[0]


# -- per-worker state ---------------------------------------------------------

_WORKER_STUDY: Study | None = None


def _pool_initializer(study: Study) -> None:
    global _WORKER_STUDY
    _WORKER_STUDY = study


def _pool_evaluate(item: tuple[str, str, list[dict[str, Any]], float | None]) -> list[dict[str, Any]]:
    assert _WORKER_STUDY is not None, "worker pool used before initialisation"
    kind, target, scenarios, slo_ms = item
    # retain=False: each group is evaluated once, so its derived graph and
    # session are freed with the group instead of pinning in the worker.
    return _evaluate_group(_WORKER_STUDY, kind, target,
                           [ScenarioSpec.from_json(s) for s in scenarios],
                           retain=False, slo_ms=slo_ms)


# -- evaluation ---------------------------------------------------------------

def _evaluate_group(study: Study, kind: str, target: str,
                    scenarios: list[ScenarioSpec], *,
                    retain: bool = True,
                    slo_ms: float | None = None) -> list[dict[str, Any]]:
    """Evaluate every scenario sharing one target configuration.

    The group's derived graph is compiled into one simulation session,
    the group's what-if variants are stacked into one duration matrix,
    and the whole matrix is simulated by a single batched call
    (:func:`~repro.core.whatif.evaluate_scenarios`, which vectorizes
    across the batch axis and falls back to per-scenario sequential runs
    only for graphs without a duration-independent schedule) — no graph
    clones, no per-run scheduling-state rebuilds, one event-loop pass for
    the group.  ``retain`` memoizes the per-target state on the study
    (reusing anything a prior ``predict`` already derived); pass
    ``False`` for throwaway studies so groups free with the loop.
    """
    with observability.trace_span("sweep.group", kind=kind, target=target,
                                  scenarios=len(scenarios)):
        graph, world_size, session, config_run = study.config_state(kind, target,
                                                                    retain=retain)
        plan = stream_plan_of(graph.metadata)
        whatif_rows = [index for index, scenario in enumerate(scenarios)
                       if scenario.whatif is not None]
        batch = [scenario_for(scenarios[index].whatif.kind,
                              op_class=scenarios[index].whatif.op_class,
                              group=scenarios[index].whatif.group,
                              speedup=scenarios[index].whatif.speedup)
                 for index in whatif_rows]
        # Continuous-batching groups score every scenario's own simulation
        # (same timing arrays, no extra run) for per-request metrics.
        serving_rows: dict[int, dict[str, Any]] = {}
        collect = None
        if plan is not None:
            tasks = session.compiled.tasks

            def collect(row: int, starts, durations) -> None:
                serving_rows[whatif_rows[row]] = metrics_from_task_times(
                    tasks, starts, durations, plan,
                    deadline_ms=slo_ms).to_json()

        evaluated = dict(zip(whatif_rows, evaluate_scenarios(graph, batch,
                                                             baseline=config_run,
                                                             session=session,
                                                             collect=collect)))
        config_serving: dict[str, Any] | None = None
        if plan is not None:
            config_serving = metrics_from_task_times(
                session.compiled.tasks, config_run.starts,
                config_run.durations, plan, deadline_ms=slo_ms).to_json()
    results: list[dict[str, Any]] = []
    for index, scenario in enumerate(scenarios):
        if scenario.whatif is None:
            iteration_time = config_run.iteration_time_us
            affected = 0
            serving = config_serving
        else:
            whatif = evaluated[index]
            iteration_time = whatif.scenario_time_us
            affected = whatif.affected_tasks
            serving = serving_rows.get(index)
        results.append(ScenarioResult(
            label=scenario.label,
            kind=scenario.kind,
            target=scenario.target,
            whatif=scenario.whatif.describe() if scenario.whatif else None,
            world_size=world_size,
            iteration_time_us=iteration_time,
            base_time_us=study.base_time_us,
            affected_tasks=affected,
            serving=serving,
        ).to_json())
    return results


def _study_for(bundle: TraceBundle, spec: SweepSpec) -> Study:
    """Open a study over the base trace — the once-per-sweep shared work."""
    return Study.from_trace(bundle, model=spec.base_model,
                            parallelism=spec.base_parallelism,
                            training=spec.training(),
                            inference=spec.inference)


def run_sweep(bundle: TraceBundle, spec: SweepSpec, *, workers: int = 1,
              cache: SweepCache | None = None, force: bool = False,
              study: Study | None = None) -> SweepResult:
    """Evaluate every scenario of ``spec`` against one base trace.

    Parameters
    ----------
    bundle:
        The profiled base trace (what ``repro-lumos emulate`` saved).
    spec:
        The declarative sweep specification; it is validated first.
    workers:
        Process count for scenario evaluation.  ``1`` runs serially in
        process; parallel and serial runs produce identical results.
    cache:
        Optional on-disk result cache.  Cached scenarios skip evaluation,
        and a fully cached sweep skips base-trace replay and calibration.
    force:
        Re-evaluate every scenario even when cached (results are re-stored).
    study:
        An already-open :class:`~repro.api.Study` over ``bundle`` (what
        ``Study.sweep`` passes).  Its memoized replay, calibration and
        sessions are reused instead of re-deriving them; its base
        configuration must match the spec's.
    """
    started = time.perf_counter()
    spec.validate()
    if study is not None:
        study.ensure_matches(spec)
    elif spec.inference is not None:
        # A serving base may use a non-registry model when a caller-owned
        # study supplies the ModelConfig; standalone the runner can only
        # rebuild registry models, so fail here with the cause instead of
        # deep inside Study.from_trace.
        try:
            gpt3_model(spec.base_model)
        except KeyError as exc:
            raise SweepSpecError(
                f"serving base model '{spec.base_model}' is not in the GPT-3 "
                "registry; run this spec through Study.sweep on a study "
                "opened with the custom ModelConfig") from exc
    scenarios = spec.expand()
    observability.count("sweep.scenarios.total", len(scenarios))

    # Content hashing walks the full trace bundle, so only pay for it when
    # there is a cache to key.
    bundle_hash = ""
    scenario_hashes: dict[ScenarioSpec, str] = {}
    collected: dict[ScenarioSpec, ScenarioResult] = {}
    if cache is not None:
        with observability.trace_span("sweep.hash", scenarios=len(scenarios)):
            bundle_hash = hash_trace_bundle(bundle)
            scenario_hashes = {scenario: hash_json(scenario_cache_key(spec, scenario))
                               for scenario in scenarios}
        if not force:
            with observability.trace_span("sweep.cache.lookup"):
                for scenario in scenarios:
                    payload = cache.lookup(bundle_hash, scenario_hashes[scenario])
                    if payload is not None:
                        collected[scenario] = ScenarioResult.from_json(
                            payload, from_cache=True)
    observability.count("sweep.scenarios.cached", len(collected))

    missing = [scenario for scenario in scenarios if scenario not in collected]
    observability.count("sweep.scenarios.evaluated", len(missing))
    if missing:
        with observability.trace_span("sweep.prepare"):
            state = (study if study is not None else _study_for(bundle, spec)).prepare()
        groups: dict[tuple[str, str], list[ScenarioSpec]] = {}
        for scenario in missing:
            groups.setdefault((scenario.kind, scenario.target), []).append(scenario)
        items = [(kind, target, [s.to_json() for s in group], spec.slo_ms)
                 for (kind, target), group in groups.items()]
        if workers > 1 and len(items) > 1:
            # Worker processes run with tracing disabled, so the parent
            # accounts pool time as one span instead of per-worker spans.
            with observability.trace_span("sweep.pool", groups=len(items),
                                          workers=min(workers, len(items))), \
                    ProcessPoolExecutor(max_workers=min(workers, len(items)),
                                        initializer=_pool_initializer,
                                        initargs=(state,)) as pool:
                evaluated = list(pool.map(_pool_evaluate, items))
        else:
            # Memoize per-target state only on a caller-owned study (the
            # facade contract); a runner-private study is garbage after
            # this call, so groups should free with the loop.
            evaluated = [_evaluate_group(state, kind, target, group,
                                         retain=study is not None,
                                         slo_ms=spec.slo_ms)
                         for (kind, target), group in groups.items()]
        for (_, group), payloads in zip(groups.items(), evaluated):
            for scenario, payload in zip(group, payloads):
                result = ScenarioResult.from_json(payload)
                collected[scenario] = result
                if cache is not None:
                    cache.store(bundle_hash, scenario_hashes[scenario], payload)
        base_time_us = state.base_time_us
    else:
        base_time_us = next(iter(collected.values())).base_time_us

    results = [collected[scenario] for scenario in scenarios]
    swept = SweepResult(
        spec=spec,
        results=results,
        base_time_us=base_time_us,
        elapsed_seconds=time.perf_counter() - started,
        workers=workers,
        cache_stats=cache.stats if cache is not None else CacheStats(),
    )
    if observability.tracing_enabled():
        observability.gauge("sweep.cache.hits", swept.cache_stats.hits)
        observability.gauge("sweep.cache.misses", swept.cache_stats.misses)
        observability.gauge("sweep.cache.hit_rate", swept.cache_stats.hit_rate)
        observability.gauge("sweep.scenarios_per_sec", swept.scenarios_per_second)
    return swept
