"""Ranking and Pareto analysis of sweep results.

The sweep produces a flat list of scenario results; the questions engineers
actually ask are "what is the fastest configuration" (ranking) and "what is
the best iteration time I can buy at each cluster size" (the Pareto
frontier over iteration time vs. world size).  Table rendering goes through
``repro.analysis.reporting`` so sweep output matches the rest of the
benchmark harness.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.reporting import (
    format_serving_sweep_row,
    format_sweep_row,
    format_table,
    serving_sweep_headers,
    sweep_headers,
)
from repro.sweep.runner import ScenarioResult, SweepResult, rank_results

__all__ = ["rank_results", "pareto_frontier", "format_ranked_table",
           "format_pareto_table", "format_report"]


def _all_serving(results: Sequence[ScenarioResult]) -> bool:
    return bool(results) and all(r.serving is not None for r in results)


def pareto_frontier(results: Iterable[ScenarioResult]) -> list[ScenarioResult]:
    """Results not dominated on (world size, iteration time), both minimised.

    A scenario is dominated when another scenario needs no more GPUs and is
    no slower, and is strictly better on at least one of the two.  The
    frontier is returned ordered by world size, then time.
    """
    candidates = list(results)
    frontier = []
    for result in candidates:
        dominated = any(
            other.world_size <= result.world_size
            and other.iteration_time_us <= result.iteration_time_us
            and (other.world_size < result.world_size
                 or other.iteration_time_us < result.iteration_time_us)
            for other in candidates)
        if not dominated:
            frontier.append(result)
    return sorted(frontier, key=lambda r: (r.world_size, r.iteration_time_us, r.label))


def _rows(results: Sequence[ScenarioResult]) -> list[list[str]]:
    return [format_sweep_row(position + 1, result.label, result.kind, result.world_size,
                             result.iteration_time_ms, result.speedup_vs_base,
                             result.from_cache)
            for position, result in enumerate(results)]


def _serving_rows(results: Sequence[ScenarioResult]) -> list[list[str]]:
    rows = []
    for position, result in enumerate(results):
        serving = result.serving
        assert serving is not None
        rows.append(format_serving_sweep_row(
            position + 1, result.label, result.kind,
            float(serving["ttft_p99_ms"]), float(serving["latency_p99_ms"]),
            float(serving["tokens_per_s"]), float(serving["slo_attainment"]),
            float(serving["goodput_rps"]), result.from_cache))
    return rows


def format_ranked_table(results: Iterable[ScenarioResult], top: int | None = None) -> str:
    """Render the ranked scenario table (optionally truncated to ``top`` rows).

    Continuous-batching sweeps (every result carries serving metrics) are
    ranked by goodput and rendered with the serving columns — TTFT p99,
    latency p99, tokens/s, SLO attainment, goodput — instead of the
    iteration-time columns.
    """
    ranked = rank_results(results)
    if top is not None:
        ranked = ranked[:top]
    if _all_serving(ranked):
        return format_table(serving_sweep_headers(), _serving_rows(ranked))
    return format_table(sweep_headers(), _rows(ranked))


def format_pareto_table(results: Iterable[ScenarioResult]) -> str:
    """Render the Pareto frontier (iteration time vs. world size)."""
    return format_table(sweep_headers(), _rows(pareto_frontier(results)))


def format_report(sweep: SweepResult, top: int | None = None) -> str:
    """The full plain-text report the ``repro-lumos sweep`` command prints."""
    lines = [
        f"base iteration time: {sweep.base_time_us / 1000.0:.1f} ms",
        f"evaluated {len(sweep)} scenarios in {sweep.elapsed_seconds:.2f} s "
        f"({sweep.scenarios_per_second:.1f} scenarios/s, workers={sweep.workers}, "
        f"cache hits={sweep.cache_stats.hits} misses={sweep.cache_stats.misses} "
        f"hit-rate={sweep.cache_stats.hit_rate:.0%})",
        "",
        "ranked scenarios" + (f" (top {top})" if top is not None else ""),
        format_ranked_table(sweep.results, top=top),
        "",
        "pareto frontier (iteration time vs. world size)",
        format_pareto_table(sweep.results),
    ]
    return "\n".join(lines)
