"""Content hashing for sweep cache keys.

The sweep cache is keyed by *content*, not by file paths or timestamps: the
same trace bundle swept with the same scenario always maps to the same key,
no matter where the bundle lives on disk or when it was written.  Both
helpers reduce their input to canonical JSON (sorted keys, no whitespace)
before hashing so that dict ordering and formatting never change the key.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.trace.kineto import TraceBundle


def canonical_json(payload: Any) -> bytes:
    """Serialise ``payload`` to canonical JSON bytes (sorted keys, compact)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def hash_json(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(payload)).hexdigest()


def hash_trace_bundle(bundle: TraceBundle) -> str:
    """SHA-256 hex digest of a trace bundle's full content.

    Every per-rank trace is serialised through the same chrome-trace JSON
    schema that :meth:`TraceBundle.save` writes, so a bundle hashed from
    memory and the same bundle reloaded from disk produce identical digests
    (gzip headers and manifest formatting do not participate).
    """
    hasher = hashlib.sha256()
    hasher.update(canonical_json({"metadata": bundle.metadata, "ranks": bundle.ranks()}))
    for rank in bundle.ranks():
        hasher.update(canonical_json(bundle[rank].to_json()))
    return hasher.hexdigest()
