"""On-disk result cache for sweep scenarios.

Results are stored one JSON file per scenario under
``<root>/<bundle_hash>/<scenario_hash>.json`` where both hashes are content
hashes (see ``hashing.py``).  Repeated sweeps over the same trace therefore
only evaluate scenarios that were added or changed — and a fully cached
sweep skips trace replay and perf-model calibration entirely.

The cache is tolerant by construction: a missing, corrupted or
schema-mismatched entry is simply a miss, never an error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

_CACHE_SCHEMA = 1


@dataclass
class CacheStats:
    """Hit/miss counters for one sweep run."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class SweepCache:
    """Content-addressed store of evaluated scenario results."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _entry_path(self, bundle_hash: str, scenario_hash: str) -> Path:
        return self.root / bundle_hash[:32] / f"{scenario_hash[:32]}.json"

    def lookup(self, bundle_hash: str, scenario_hash: str) -> dict[str, Any] | None:
        """Return the cached result payload, or None on any kind of miss."""
        path = self._entry_path(bundle_hash, scenario_hash)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != _CACHE_SCHEMA:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload.get("result")

    def store(self, bundle_hash: str, scenario_hash: str, result: dict[str, Any]) -> None:
        """Persist one evaluated scenario result."""
        path = self._entry_path(bundle_hash, scenario_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": _CACHE_SCHEMA, "result": result}
        path.write_text(json.dumps(payload), encoding="utf-8")

    def entries(self) -> int:
        """Number of cached scenario results on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        for bucket in self.root.iterdir():
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
        return removed
