"""On-disk result cache for sweep scenarios.

Results are stored one JSON file per scenario under
``<root>/<bundle_hash>/<scenario_hash>.json`` where both hashes are content
hashes (see ``hashing.py``).  Repeated sweeps over the same trace therefore
only evaluate scenarios that were added or changed — and a fully cached
sweep skips trace replay and perf-model calibration entirely.

The cache is tolerant by construction: a missing, corrupted or
schema-mismatched entry is simply a miss, never an error.

Writes are atomic — :meth:`SweepCache.store` writes to a dot-prefixed
temporary file in the entry's bucket and renames it into place with
``os.replace`` — so concurrent writers (sweep pool workers, service workers, multiple
server processes sharing one cache root) can never leave a torn entry
behind, and readers only ever see complete payloads.

A long-lived shared cache is operable through :meth:`disk_stats` and
:meth:`prune` (oldest-first eviction down to a byte budget), surfaced by
the ``repro-lumos cache`` CLI subcommand.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

_CACHE_SCHEMA = 1


@dataclass
class CacheStats:
    """Hit/miss counters for one sweep run."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class SweepCache:
    """Content-addressed store of evaluated scenario results."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _entry_path(self, bundle_hash: str, scenario_hash: str) -> Path:
        return self.root / bundle_hash[:32] / f"{scenario_hash[:32]}.json"

    def lookup(self, bundle_hash: str, scenario_hash: str) -> dict[str, Any] | None:
        """Return the cached result payload, or None on any kind of miss."""
        path = self._entry_path(bundle_hash, scenario_hash)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != _CACHE_SCHEMA:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload.get("result")

    def store(self, bundle_hash: str, scenario_hash: str, result: dict[str, Any]) -> None:
        """Persist one evaluated scenario result (atomic, concurrency-safe).

        The payload is written to a dot-prefixed temporary file in the
        entry's bucket (invisible to ``entries()``'s ``*/*.json`` glob)
        and renamed into place with ``os.replace``, so a reader or a
        concurrent writer can never observe a torn entry.
        """
        path = self._entry_path(bundle_hash, scenario_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": _CACHE_SCHEMA, "result": result}
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload))
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def entries(self) -> int:
        """Number of cached scenario results on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def disk_stats(self) -> dict[str, Any]:
        """Sizes of what is on disk: entry/bundle counts and total bytes."""
        entry_count = 0
        total_bytes = 0
        bundles: set[str] = set()
        if self.root.is_dir():
            for entry in self.root.glob("*/*.json"):
                try:
                    size = entry.stat().st_size
                except OSError:  # deleted underneath us — it no longer counts
                    continue
                entry_count += 1
                total_bytes += size
                bundles.add(entry.parent.name)
        return {
            "root": str(self.root),
            "entries": entry_count,
            "bundles": len(bundles),
            "total_bytes": total_bytes,
        }

    def prune(self, max_size_bytes: int) -> dict[str, Any]:
        """Evict oldest entries (by mtime) until the cache fits the budget.

        Tolerates concurrent deletion races (an entry vanishing between
        listing and unlinking simply counts as already evicted) and
        removes bucket directories left empty.  Returns a summary dict
        with ``removed`` / ``freed_bytes`` / ``remaining_entries`` /
        ``remaining_bytes``.
        """
        listed: list[tuple[float, int, Path]] = []
        if self.root.is_dir():
            for entry in self.root.glob("*/*.json"):
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                listed.append((stat.st_mtime, stat.st_size, entry))
        listed.sort(key=lambda item: (item[0], str(item[2])))
        total = sum(size for _, size, _ in listed)
        removed = 0
        freed = 0
        for _, size, entry in listed:
            if total - freed <= max_size_bytes:
                break
            with contextlib.suppress(OSError):
                entry.unlink()
                removed += 1
                freed += size
        if self.root.is_dir():
            for bucket in self.root.iterdir():
                if bucket.is_dir():
                    with contextlib.suppress(OSError):
                        if not any(bucket.iterdir()):
                            bucket.rmdir()
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_entries": len(listed) - removed,
            "remaining_bytes": total - freed,
        }

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        for bucket in self.root.iterdir():
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
        return removed
