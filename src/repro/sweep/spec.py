"""Declarative sweep specifications.

A :class:`SweepSpec` describes a *what-if design space* around one profiled
base configuration: target parallelism labels (§3.4 graph manipulation),
target model variants (§4.3.2 architecture changes) and kernel-speedup
what-if scenarios (§5).  :meth:`SweepSpec.expand` turns the spec into the
concrete grid of :class:`ScenarioSpec` entries the runner evaluates — the
cartesian product of configurations and what-if variants.

Specs are plain JSON on disk::

    {
      "base": {"model": "gpt3-15b", "parallelism": "2x2x4",
               "micro_batch_size": 2, "num_microbatches": 4},
      "parallelism": ["2x2x8", "2x4x4"],
      "models": ["gpt3-v1"],
      "whatif": [{"kind": "kernel_class", "op_class": "gemm", "speedup": 2.0},
                 {"kind": "communication", "group": "dp", "speedup": 2.0},
                 {"kind": "launch_overhead"}],
      "include_baseline": true
    }

Tensor-parallelism targets of training bases are rejected up front: the
paper (and ``repro.core.manipulation``) does not support modifying TP of a
training iteration.

A spec whose base records an ``inference`` configuration sweeps a
*serving* episode instead; its configuration axis is ``serving`` (compact
``batch=/prompt=/tp=`` labels — serving TP resharding *is* supported,
because the serving graph is topology-invariant under it)::

    {
      "base": {"model": "gpt3-15b", "parallelism": "4x1x1",
               "inference": {"batch_size": 8, "prompt_length": 512,
                             "decode_length": 64}},
      "serving": ["batch=16", "batch=32", "tp=2,batch=16"],
      "whatif": [{"kind": "kernel_class", "op_class": "decode_attention"}]
    }

An optional ``"hardware": ["H200-SXM", "B200"]`` axis (registry GPU
names) crosses either grid with roofline hardware retargets: every
configuration is evaluated on the profiled GPU and once per listed GPU
(composite ``<kind>+hardware`` scenarios).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

# The scenario kinds are shared vocabulary defined by the manipulation
# layer (the one place that implements them); re-exported here for spec
# authors.
from repro.core.manipulation import (
    COMPOSITE_SEPARATOR,
    KIND_ARCHITECTURE,
    KIND_BASELINE,
    KIND_HARDWARE,
    KIND_PARALLELISM,
    KIND_SERVING,
)
from repro.hardware.gpu import resolve_gpu
from repro.workload.inference import (
    InferenceConfig,
    ServingTarget,
    validate_tp_for_model,
)
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


class SweepSpecError(ValueError):
    """Raised when a sweep spec is malformed or asks for unsupported changes."""


def _known_model(name: str):
    """Resolve a model name, reporting unknown names as spec errors."""
    try:
        return gpt3_model(name)
    except KeyError as error:
        raise SweepSpecError(error.args[0]) from error


def _parsed_label(label: str) -> "ParallelismConfig":
    """Parse a TPxPPxDP label, reporting malformed labels as spec errors."""
    try:
        return ParallelismConfig.parse(label)
    except ValueError as error:
        raise SweepSpecError(str(error)) from error


def _canonical_gpu(name: str) -> str:
    """Resolve a hardware-axis entry to its canonical registry GPU name.

    Specs are shareable, content-addressed artefacts, so the hardware
    axis takes registry names only — a JSON spec-file path would make the
    cache key depend on local filesystem content it does not hash.
    """
    text = name.strip()
    if text.lower().startswith("gpu="):
        text = text[len("gpu="):].strip()
    if "/" in text or "\\" in text or text.endswith(".json"):
        raise SweepSpecError(
            f"hardware axis entry {name!r} looks like a spec-file path; "
            "sweep specs take registry GPU names (custom specs are a "
            "Study.predict feature)")
    try:
        return resolve_gpu(text).name
    except ValueError as error:
        raise SweepSpecError(str(error)) from error


_WHATIF_KINDS = ("kernel_class", "communication", "launch_overhead")


@dataclass(frozen=True)
class WhatIfSpec:
    """One declarative kernel-speedup scenario (maps onto ``core/whatif.py``)."""

    kind: str
    op_class: str | None = None
    group: str | None = None
    speedup: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _WHATIF_KINDS:
            raise SweepSpecError(
                f"unknown what-if kind '{self.kind}' (expected one of {_WHATIF_KINDS})")
        if self.kind == "kernel_class" and not self.op_class:
            raise SweepSpecError("what-if kind 'kernel_class' requires 'op_class'")
        if self.speedup <= 0:
            raise SweepSpecError("what-if speedup must be positive")

    def describe(self) -> str:
        """Short human-readable label used in scenario names and tables."""
        if self.kind == "launch_overhead":
            return "zero-launch"
        scale = "inf" if math.isinf(self.speedup) else f"{self.speedup:g}"
        if self.kind == "communication":
            return f"{self.group or 'all'}-comm x{scale}"
        return f"{self.op_class} x{scale}"

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind}
        if self.op_class is not None:
            payload["op_class"] = self.op_class
        if self.group is not None:
            payload["group"] = self.group
        if self.kind != "launch_overhead":
            payload["speedup"] = "inf" if math.isinf(self.speedup) else self.speedup
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "WhatIfSpec":
        if not isinstance(payload, Mapping):
            raise SweepSpecError(f"what-if entry must be an object, got {payload!r}")
        kind = str(payload.get("kind", ""))
        speedup = float(payload.get("speedup", 2.0))
        if kind == "launch_overhead":
            speedup = float("inf")
        return cls(kind=kind, op_class=payload.get("op_class"),
                   group=payload.get("group"), speedup=speedup)

    @classmethod
    def parse(cls, text: str) -> "WhatIfSpec":
        """Parse the compact CLI form.

        ``launch`` — zero launch overhead; ``comm[:group]:S`` — communication
        (optionally one group) sped up ``S`` times; ``CLASS:S`` — one kernel
        class (e.g. ``gemm:2``) sped up ``S`` times.  ``S`` may be ``inf``.
        """
        parts = text.split(":")
        if parts[0] == "launch" and len(parts) == 1:
            return cls(kind="launch_overhead", speedup=float("inf"))
        try:
            if parts[0] == "comm" and len(parts) == 3:
                return cls(kind="communication", group=parts[1] or None,
                           speedup=float(parts[2]))
            if parts[0] == "comm" and len(parts) == 2:
                return cls(kind="communication", speedup=float(parts[1]))
            if len(parts) == 2:
                return cls(kind="kernel_class", op_class=parts[0], speedup=float(parts[1]))
        except ValueError as error:
            raise SweepSpecError(f"bad what-if '{text}': {error}") from error
        raise SweepSpecError(
            f"bad what-if '{text}' (expected 'launch', 'comm[:group]:S' or 'CLASS:S')")


@dataclass(frozen=True)
class ScenarioSpec:
    """One concrete point of the expanded sweep grid."""

    kind: str
    target: str
    whatif: WhatIfSpec | None = None

    @property
    def label(self) -> str:
        base = "base" if self.kind == KIND_BASELINE else self.target
        return f"{base} +{self.whatif.describe()}" if self.whatif else base

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind, "target": self.target}
        if self.whatif is not None:
            payload["whatif"] = self.whatif.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        whatif = payload.get("whatif")
        return cls(kind=str(payload["kind"]), target=str(payload["target"]),
                   whatif=WhatIfSpec.from_json(whatif) if whatif else None)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep over one base trace."""

    base_model: str = "gpt3-15b"
    base_parallelism: str = "2x2x4"
    micro_batch_size: int = 2
    num_microbatches: int = 4
    #: A serving-episode base; set to sweep ``serving`` targets instead of
    #: training manipulations.
    inference: InferenceConfig | None = None
    #: SLO deadline (ms) for the per-request serving metrics attached to
    #: continuous-batching scenario results; ``None`` keeps the default
    #: deadline and (like pre-serving specs) stays out of cache keys.
    slo_ms: float | None = None
    parallelism: tuple[str, ...] = ()
    models: tuple[str, ...] = ()
    serving: tuple[str, ...] = ()
    #: Registry GPU names to retarget onto.  The axis *crosses* the
    #: configuration axes: every configuration is evaluated on the
    #: profiled GPU (the reference column) and once per listed GPU.
    hardware: tuple[str, ...] = ()
    whatif: tuple[WhatIfSpec, ...] = ()
    include_baseline: bool = True

    @property
    def workload(self) -> str:
        return "training" if self.inference is None else "serving"

    # -- construction -------------------------------------------------------

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        base = payload.get("base", {})
        if not isinstance(base, Mapping):
            raise SweepSpecError("'base' must be an object")
        inference = base.get("inference")
        if inference is not None and not isinstance(inference, InferenceConfig):
            if not isinstance(inference, Mapping):
                raise SweepSpecError("'base.inference' must be an object")
            try:
                inference = InferenceConfig.from_json(inference)
            except (TypeError, ValueError) as error:
                raise SweepSpecError(f"malformed inference base: {error}") from error
        try:
            return cls(
                base_model=str(base.get("model", cls.base_model)),
                base_parallelism=str(base.get("parallelism", cls.base_parallelism)),
                micro_batch_size=int(base.get("micro_batch_size", cls.micro_batch_size)),
                num_microbatches=int(base.get("num_microbatches", cls.num_microbatches)),
                inference=inference,
                slo_ms=(None if base.get("slo_ms") is None
                        else float(base["slo_ms"])),
                parallelism=tuple(str(p) for p in payload.get("parallelism", ())),
                models=tuple(str(m) for m in payload.get("models", ())),
                serving=tuple(str(s) for s in payload.get("serving", ())),
                hardware=tuple(str(h) for h in payload.get("hardware", ())),
                whatif=tuple(WhatIfSpec.from_json(w) for w in payload.get("whatif", ())),
                include_baseline=bool(payload.get("include_baseline", True)),
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, SweepSpecError):
                raise
            raise SweepSpecError(f"malformed sweep spec: {error}") from error

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        """Read a spec from a JSON file."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise SweepSpecError(f"spec file {path} is not valid JSON: {error}") from error
        return cls.from_json(payload)

    @classmethod
    def coerce(cls, spec: "SweepSpec | Mapping[str, Any] | str | Path") -> "SweepSpec":
        """Accept a spec object, a JSON-style mapping, or a spec file path."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, Mapping):
            return cls.from_json(spec)
        if isinstance(spec, (str, Path)):
            return cls.load(spec)
        raise SweepSpecError(f"cannot build a SweepSpec from {type(spec).__name__}")

    # -- serialisation ------------------------------------------------------

    def base_json(self) -> dict[str, Any]:
        payload = {
            "model": self.base_model,
            "parallelism": self.base_parallelism,
            "micro_batch_size": self.micro_batch_size,
            "num_microbatches": self.num_microbatches,
        }
        # Only serving bases carry the extra keys, so training cache keys
        # (hashes of this payload) are unchanged by the workload family —
        # and a default-deadline serving spec hashes like a pre-SLO one.
        if self.inference is not None:
            payload["inference"] = self.inference.to_json()
        if self.slo_ms is not None:
            payload["slo_ms"] = self.slo_ms
        return payload

    def to_json(self) -> dict[str, Any]:
        payload = {
            "base": self.base_json(),
            "parallelism": list(self.parallelism),
            "models": list(self.models),
            "whatif": [w.to_json() for w in self.whatif],
            "include_baseline": self.include_baseline,
        }
        if self.serving:
            payload["serving"] = list(self.serving)
        # Omitted when empty, like 'serving': pre-hardware specs keep
        # their cache keys.
        if self.hardware:
            payload["hardware"] = list(self.hardware)
        return payload

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2), encoding="utf-8")

    # -- workload accessors -------------------------------------------------

    def base_parallel(self) -> ParallelismConfig:
        return ParallelismConfig.parse(self.base_parallelism)

    def training(self) -> TrainingConfig:
        return TrainingConfig(micro_batch_size=self.micro_batch_size,
                              num_microbatches=self.num_microbatches)

    # -- validation and expansion -------------------------------------------

    def validate(self) -> None:
        """Reject unsupported or inconsistent specs before any work happens."""
        base_parallel = _parsed_label(self.base_parallelism)
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise SweepSpecError("slo_ms must be positive")
        if self.inference is not None:
            # Serving manipulation regenerates operators from the study's
            # own ModelConfig, so the base model need not be in the GPT-3
            # registry (tiny test models, custom deployments).
            if self.parallelism or self.models:
                raise SweepSpecError(
                    "a serving-base spec sweeps 'serving' targets; the "
                    "'parallelism' and 'models' axes apply to training bases")
            try:
                base_parallel.validate_for_inference()
            except ValueError as error:
                raise SweepSpecError(str(error)) from error
            try:
                # Resolvable base models get their TP targets checked up
                # front; custom models (only reachable through Study.sweep)
                # are checked at evaluation time against the study's own
                # ModelConfig.
                serving_base_model = gpt3_model(self.base_model)
            except KeyError:
                serving_base_model = None
            for label in self.serving:
                try:
                    target = ServingTarget.parse(label)
                except ValueError as error:
                    raise SweepSpecError(str(error)) from error
                tp = target.tensor_parallel
                if tp is not None and tp > base_parallel.tp == 1:
                    raise SweepSpecError(
                        f"serving target '{label}' reshards a TP=1 base to "
                        f"TP={tp}; emulate a TP>1 base episode instead")
                if tp is not None and serving_base_model is not None:
                    try:
                        validate_tp_for_model(serving_base_model, tp)
                    except ValueError as error:
                        raise SweepSpecError(str(error)) from error
        else:
            if self.serving:
                raise SweepSpecError(
                    "the 'serving' axis requires an inference base "
                    "(set base.inference in the spec)")
            base_model = _known_model(self.base_model)
            for label in self.parallelism:
                target = _parsed_label(label)
                if target.tp != base_parallel.tp:
                    raise SweepSpecError(
                        f"target parallelism {label} changes tensor parallelism "
                        f"(base TP={base_parallel.tp}); TP modifications are not "
                        "supported by graph manipulation")
                try:
                    target.validate_for_model(base_model.n_layers)
                except ValueError as error:
                    raise SweepSpecError(str(error)) from error
            for name in self.models:
                _known_model(name)
        for name in self.hardware:
            _canonical_gpu(name)
        if not self.expand():
            raise SweepSpecError("sweep spec expands to zero scenarios")

    def configurations(self) -> list[tuple[str, str]]:
        """The ``(kind, target)`` configuration axis, de-duplicated in order.

        A non-empty ``hardware`` axis crosses the grid: every workload
        configuration appears once unretargeted (the profiled-GPU
        reference) and once per listed GPU, as a composite
        ``<kind>+hardware`` configuration (pure ``hardware`` for the
        baseline row).
        """
        configs: list[tuple[str, str]] = []
        if self.include_baseline:
            configs.append((KIND_BASELINE, self.base_parallelism))
        for label in self.parallelism:
            configs.append((KIND_PARALLELISM, label))
        for name in self.models:
            configs.append((KIND_ARCHITECTURE, name))
        for label in self.serving:
            configs.append((KIND_SERVING, ServingTarget.parse(label).label()))
        gpus = [_canonical_gpu(name) for name in self.hardware]
        if gpus:
            crossed: list[tuple[str, str]] = []
            for kind, target in configs:
                crossed.append((kind, target))
                for gpu in gpus:
                    if kind == KIND_BASELINE:
                        crossed.append((KIND_HARDWARE, f"gpu={gpu}"))
                    else:
                        crossed.append(
                            (f"{kind}{COMPOSITE_SEPARATOR}{KIND_HARDWARE}",
                             f"{target}{COMPOSITE_SEPARATOR}gpu={gpu}"))
            configs = crossed
        seen: set[tuple[str, str]] = set()
        unique = []
        for config in configs:
            if config not in seen:
                seen.add(config)
                unique.append(config)
        return unique

    def expand(self) -> list[ScenarioSpec]:
        """The full scenario grid: configurations × (no what-if + each what-if)."""
        variants: list[WhatIfSpec | None] = [None, *self.whatif]
        return [ScenarioSpec(kind=kind, target=target, whatif=variant)
                for kind, target in self.configurations()
                for variant in variants]


def scenario_cache_key(spec: SweepSpec, scenario: ScenarioSpec) -> dict[str, Any]:
    """The JSON payload whose hash keys one scenario in the result cache.

    The base configuration participates because graph manipulation depends
    on it; the trace content is hashed separately (see ``hashing.py``).
    """
    return {"schema": 1, "base": spec.base_json(), "scenario": scenario.to_json()}
