"""Analytical iteration-time baseline (AmPeD / Calculon style).

A closed-form estimate of the per-iteration training time from model and
parallelism parameters: compute from a FLOP count at an assumed achievable
throughput, tensor/data-parallel communication from ring alpha–beta models,
and the 1F1B pipeline bubble from the standard ``(PP-1)/(M+PP-1)`` formula.
No trace is consumed.  The ablation benchmark contrasts this with Lumos to
show what execution detail analytical models miss (overlap, launch gaps,
per-kernel effects).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.kernels.collectives import collective_time_us
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


@dataclass(frozen=True)
class AnalyticalEstimate:
    """Closed-form per-iteration time estimate, in microseconds."""

    compute_us: float
    tensor_parallel_comm_us: float
    data_parallel_comm_us: float
    pipeline_comm_us: float
    bubble_us: float

    @property
    def total_us(self) -> float:
        return (self.compute_us + self.tensor_parallel_comm_us + self.data_parallel_comm_us
                + self.pipeline_comm_us + self.bubble_us)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0


def analytical_iteration_time(model: ModelConfig, parallel: ParallelismConfig,
                              training: TrainingConfig,
                              cluster: ClusterSpec | None = None,
                              achievable_flops_fraction: float = 0.45) -> AnalyticalEstimate:
    """Estimate the per-iteration time of a 3D-parallel training job."""
    if not 0 < achievable_flops_fraction <= 1:
        raise ValueError("achievable_flops_fraction must be in (0, 1]")
    if cluster is None:
        cluster = ClusterSpec.for_world_size(parallel.world_size)
    groups = parallel.groups()

    tokens = training.tokens_per_replica()
    total_flops = model.flops_per_token() * tokens
    flops_per_rank = total_flops / (parallel.tp * parallel.pp)
    compute_us = flops_per_rank / (cluster.gpu.bf16_flops_per_us * achievable_flops_fraction)

    # Tensor parallelism: two all-reduces per layer in forward, two in backward.
    tp_comm_us = 0.0
    if parallel.tp > 1:
        activation_bytes = (training.micro_batch_size * training.sequence_length
                            * model.d_model * training.dtype_bytes)
        tp_ranks = groups.tp_group(0).ranks
        per_all_reduce = collective_time_us("all_reduce", activation_bytes, tp_ranks, cluster)
        layers_per_stage = model.n_layers / parallel.pp
        tp_comm_us = per_all_reduce * 4 * layers_per_stage * training.num_microbatches

    # Data parallelism: one gradient all-reduce per iteration of the stage's shard.
    dp_comm_us = 0.0
    if parallel.dp > 1:
        grad_bytes = (model.n_layers / parallel.pp * model.layer_parameters / parallel.tp
                      * training.dtype_bytes)
        dp_ranks = groups.dp_group(0).ranks
        dp_comm_us = collective_time_us("all_reduce", grad_bytes, dp_ranks, cluster)

    # Pipeline parallelism: per-boundary activation/gradient transfers plus the bubble.
    pp_comm_us = 0.0
    bubble_us = 0.0
    if parallel.pp > 1:
        activation_bytes = (training.micro_batch_size * training.sequence_length
                            * model.d_model * training.dtype_bytes)
        boundary_pair = groups.pp_group(0).ranks[:2]
        per_transfer = collective_time_us("broadcast", activation_bytes, boundary_pair, cluster)
        pp_comm_us = per_transfer * 2 * training.num_microbatches
        per_microbatch_us = (compute_us + tp_comm_us) / training.num_microbatches
        bubble_us = (parallel.pp - 1) / training.num_microbatches * per_microbatch_us

    return AnalyticalEstimate(
        compute_us=compute_us,
        tensor_parallel_comm_us=tp_comm_us,
        data_parallel_comm_us=dp_comm_us,
        pipeline_comm_us=pp_comm_us,
        bubble_us=bubble_us,
    )
