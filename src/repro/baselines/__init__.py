"""Baselines the paper compares against.

* :mod:`repro.baselines.dpro` — a dPRO-style trace replayer (Hu et al.,
  MLSys 2022): a global dataflow graph without the inter-stream
  dependencies Lumos reconstructs, which over-estimates compute/communication
  overlap on LLM workloads.
* :mod:`repro.baselines.analytical` — an AmPeD/Calculon-style closed-form
  iteration-time estimate from model and parallelism parameters, used in the
  ablation benchmarks to show what trace-driven modeling adds.
"""

from repro.baselines.dpro import DPRO_OPTIONS, dpro_replay
from repro.baselines.analytical import AnalyticalEstimate, analytical_iteration_time

__all__ = [
    "DPRO_OPTIONS",
    "dpro_replay",
    "AnalyticalEstimate",
    "analytical_iteration_time",
]
