"""dPRO-style replay baseline.

dPRO (Hu et al., 2022) builds a global dataflow graph from profiled traces
by tracking dependencies among operators across workers.  Its graph has
launch (CPU→GPU), per-stream ordering and cross-worker collective
dependencies, but — as the paper's Figure 1/Figure 5 analysis shows — it
does not reconstruct the event-based inter-stream dependencies that govern
how communication kernels serialise against compute on modern LLM stacks.
The baseline is therefore expressed here as the Lumos graph builder with
inter-stream dependency reconstruction disabled, replayed by the same
simulator.
"""

from __future__ import annotations

from repro.core.graph_builder import GraphBuilderOptions
from repro.core.replay import ReplayResult, replay
from repro.trace.kineto import KinetoTrace, TraceBundle

#: Graph-builder options reproducing dPRO's dependency model.
DPRO_OPTIONS = GraphBuilderOptions(
    include_inter_stream=False,
    include_inter_thread=True,
    include_sync=True,
    include_collective_groups=True,
)


def dpro_replay(traces: TraceBundle | KinetoTrace) -> ReplayResult:
    """Replay a profiled trace the way dPRO models execution."""
    return replay(traces, options=DPRO_OPTIONS)
