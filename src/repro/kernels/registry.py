"""Facade dispatching an :class:`~repro.workload.operators.OpSpec` to a cost model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.kernels.attention import attention_time_us
from repro.kernels.collectives import collective_time_us, point_to_point_time_us
from repro.kernels.decode import decode_attention_time_us
from repro.kernels.gemm import gemm_time_us
from repro.kernels.memory_bound import memory_bound_time_us
from repro.workload.operators import CollectiveKind, OpClass, OpSpec


@dataclass(frozen=True)
class KernelCostModel:
    """Predicts kernel durations (us) for operations on a given cluster.

    Parameters
    ----------
    cluster:
        Hardware description (GPU + fabric).
    gemm_peak_efficiency:
        Achievable fraction of peak tensor-core throughput for large GEMMs.
    attention_efficiency:
        Achievable fraction of peak for fused attention kernels.
    decode_bandwidth_efficiency:
        Achievable fraction of peak HBM bandwidth for decode-attention
        KV-cache sweeps.
    """

    cluster: ClusterSpec
    gemm_peak_efficiency: float = 0.62
    attention_efficiency: float = 0.45
    decode_bandwidth_efficiency: float = 0.80

    def duration_us(self, op: OpSpec, dtype_bytes: int = 2,
                    group_ranks: tuple[int, ...] | None = None) -> float:
        """Predict the duration of ``op`` in microseconds.

        ``group_ranks`` must be provided for communication operations so
        the collective model can decide whether the group crosses nodes.
        """
        gpu = self.cluster.gpu
        if op.is_communication:
            assert op.collective is not None
            if group_ranks is None:
                raise ValueError(f"communication op '{op.name}' requires group_ranks")
            if op.collective.kind in CollectiveKind.POINT_TO_POINT:
                if len(group_ranks) != 2:
                    raise ValueError("point-to-point ops require exactly two ranks")
                return point_to_point_time_us(op.collective.size_bytes, group_ranks[0],
                                              group_ranks[1], self.cluster)
            return collective_time_us(op.collective.kind, op.collective.size_bytes,
                                      group_ranks, self.cluster)

        if op.op_class == OpClass.GEMM:
            return gemm_time_us(op.m, op.n, op.k, dtype_bytes, gpu,
                                peak_efficiency=self.gemm_peak_efficiency)
        if op.op_class == OpClass.ATTENTION:
            return attention_time_us(op.flops, op.bytes_accessed, gpu,
                                     efficiency=self.attention_efficiency)
        if op.op_class == OpClass.DECODE_ATTENTION:
            return decode_attention_time_us(
                op.flops, op.bytes_accessed, gpu,
                bandwidth_efficiency=self.decode_bandwidth_efficiency)
        if op.op_class in OpClass.COMPUTE_CLASSES:
            return memory_bound_time_us(op.bytes_accessed, gpu, op_class=op.op_class)
        raise ValueError(f"unknown op class '{op.op_class}' for op '{op.name}'")
