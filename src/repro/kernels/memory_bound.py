"""Cost model for memory-bound kernels.

Layer norms, GELU, dropout, residual adds, embedding lookups, optimizer
updates and loss kernels are all bandwidth-bound on modern GPUs: their
runtime is their HBM traffic divided by achievable bandwidth plus a fixed
overhead.  Different op classes achieve different fractions of peak
bandwidth (gather/scatter patterns, small tensors), captured by per-class
efficiency factors.
"""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec

#: Achievable fraction of peak HBM bandwidth per op class.
BANDWIDTH_EFFICIENCY: dict[str, float] = {
    "layernorm": 0.65,
    "elementwise": 0.80,
    "gelu": 0.80,
    "dropout": 0.70,
    "softmax": 0.60,
    "embedding": 0.45,
    "cross_entropy": 0.55,
    "optimizer": 0.75,
}

_DEFAULT_EFFICIENCY = 0.70


def memory_bound_time_us(bytes_accessed: float, gpu: GPUSpec,
                         op_class: str = "elementwise") -> float:
    """Duration of a bandwidth-bound kernel moving ``bytes_accessed`` bytes."""
    if bytes_accessed < 0:
        raise ValueError("bytes_accessed must be non-negative")
    efficiency = BANDWIDTH_EFFICIENCY.get(op_class, _DEFAULT_EFFICIENCY)
    return bytes_accessed / (gpu.memory_bytes_per_us * efficiency) + gpu.kernel_fixed_overhead_us
