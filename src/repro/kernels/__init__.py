"""Analytical kernel and collective cost models.

These models translate the shape information of an
:class:`~repro.workload.operators.OpSpec` into a kernel duration in
microseconds on a given :class:`~repro.hardware.cluster.ClusterSpec`.  They
power the cluster emulator's ground truth and, in re-parameterised and
trace-calibrated form, Lumos's kernel performance model for kernels
introduced by graph manipulation.
"""

from repro.kernels.gemm import gemm_time_us
from repro.kernels.attention import attention_time_us
from repro.kernels.decode import decode_attention_time_us
from repro.kernels.memory_bound import memory_bound_time_us
from repro.kernels.collectives import collective_time_us, point_to_point_time_us
from repro.kernels.registry import KernelCostModel

__all__ = [
    "gemm_time_us",
    "attention_time_us",
    "decode_attention_time_us",
    "memory_bound_time_us",
    "collective_time_us",
    "point_to_point_time_us",
    "KernelCostModel",
]
