"""Collective communication cost models.

Ring-based alpha-beta models for NCCL-style collectives on a two-tier
fabric (NVLink inside a node, RoCE across nodes).

For groups that span nodes, NCCL builds multiple rings (channels) so that
every group member inside a node drives its own NIC.  The effective
inter-node bandwidth therefore scales with the number of group members per
node, which is why scaling data parallelism across nodes in the paper's
Figure 7a increases communication time only moderately instead of by the
single-NIC worst case.
"""

from __future__ import annotations

from collections import Counter

from repro.hardware.cluster import ClusterSpec

_NCCL_KERNEL_OVERHEAD_US = 6.0


def _ring_parameters(kind: str, group_size: int) -> tuple[float, int]:
    """Return ``(traffic_factor, latency_hops)`` for a ring collective.

    ``traffic_factor`` multiplies the message size to give bytes sent per
    rank; ``latency_hops`` counts ring steps for the alpha term.
    """
    n = group_size
    if n <= 1:
        return 0.0, 0
    if kind == "all_reduce":
        return 2.0 * (n - 1) / n, 2 * (n - 1)
    if kind in ("reduce_scatter", "all_gather"):
        return float(n - 1) / n, n - 1
    if kind == "broadcast":
        return 1.0, n - 1
    raise ValueError(f"unknown collective kind '{kind}'")


def effective_bandwidth_bytes_per_us(group_ranks: tuple[int, ...] | list[int],
                                     cluster: ClusterSpec) -> float:
    """Effective per-rank bus bandwidth for a ring over ``group_ranks``."""
    ranks = tuple(group_ranks)
    if cluster.is_intra_node(ranks):
        return cluster.network.bandwidth_bytes_per_us(intra_node=True)
    members_per_node = max(Counter(cluster.node_of(r) for r in ranks).values())
    nic_parallelism = min(members_per_node, cluster.gpus_per_node)
    return cluster.network.bandwidth_bytes_per_us(intra_node=False) * nic_parallelism


def collective_time_us(kind: str, size_bytes: float, group_ranks: tuple[int, ...] | list[int],
                       cluster: ClusterSpec) -> float:
    """Duration of a collective over ``group_ranks`` moving ``size_bytes`` per rank."""
    if size_bytes < 0:
        raise ValueError("size_bytes must be non-negative")
    group_size = len(group_ranks)
    if group_size <= 1 or size_bytes == 0:
        return _NCCL_KERNEL_OVERHEAD_US

    traffic_factor, hops = _ring_parameters(kind, group_size)
    bandwidth = effective_bandwidth_bytes_per_us(group_ranks, cluster)
    intra_node = cluster.is_intra_node(tuple(group_ranks))
    latency = cluster.network.latency_us(intra_node)
    transfer_us = traffic_factor * size_bytes / bandwidth
    return transfer_us + hops * latency + _NCCL_KERNEL_OVERHEAD_US


def point_to_point_time_us(size_bytes: float, src: int, dst: int,
                           cluster: ClusterSpec) -> float:
    """Duration of a send/recv pair moving ``size_bytes`` from ``src`` to ``dst``."""
    if size_bytes < 0:
        raise ValueError("size_bytes must be non-negative")
    intra_node = cluster.is_intra_node((src, dst))
    bandwidth = cluster.network.bandwidth_bytes_per_us(intra_node)
    latency = cluster.network.latency_us(intra_node)
    return size_bytes / bandwidth + latency + _NCCL_KERNEL_OVERHEAD_US
