"""Cost model for autoregressive decode-attention kernels.

During decode each request contributes a single query token that attends
over its accumulated KV cache, so the kernel's work is dominated by
*streaming the cache out of HBM once* — a flash-decoding style sweep —
rather than by tensor-core math.  The model is a roofline over the
kernel's KV traffic at a high achievable bandwidth fraction (the cache is
read contiguously) and its FLOPs at a low compute efficiency (batch-of-one
matrix-vector products cannot fill the tensor cores).
"""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec

#: Fraction of peak HBM bandwidth a contiguous KV-cache sweep achieves.
KV_BANDWIDTH_EFFICIENCY = 0.80

#: Fraction of peak tensor-core throughput the skinny attention math achieves.
DECODE_COMPUTE_EFFICIENCY = 0.25


def decode_attention_time_us(flops: float, bytes_accessed: float, gpu: GPUSpec,
                             bandwidth_efficiency: float = KV_BANDWIDTH_EFFICIENCY,
                             compute_efficiency: float = DECODE_COMPUTE_EFFICIENCY) -> float:
    """Duration of a decode-attention kernel over ``bytes_accessed`` of KV traffic."""
    if flops < 0 or bytes_accessed < 0:
        raise ValueError("flops and bytes_accessed must be non-negative")
    memory_us = bytes_accessed / (gpu.memory_bytes_per_us * bandwidth_efficiency)
    compute_us = flops / (gpu.bf16_flops_per_us * compute_efficiency)
    return max(memory_us, compute_us) + gpu.kernel_fixed_overhead_us
