"""GEMM kernel cost model.

A roofline-style model: the kernel takes the larger of its compute time at
an achievable fraction of peak tensor-core throughput and its memory time
at HBM bandwidth, plus a fixed launch/tail overhead.  The achievable
efficiency ramps with arithmetic intensity so that small or skinny GEMMs
(small ``m`` from small micro-batches, or narrow tensor-parallel shards)
run further from peak, which is what real traces show.
"""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec

_MIN_EFFICIENCY = 0.12


def gemm_efficiency(m: int, n: int, k: int, peak_efficiency: float = 0.62) -> float:
    """Achievable fraction of peak tensor-core FLOPs for an ``m×n×k`` GEMM.

    Efficiency saturates for large, square-ish problems and degrades as the
    smallest dimension shrinks (tile quantisation and wave quantisation
    effects).
    """
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    smallest = min(m, n, k)
    ramp = smallest / (smallest + 512.0)
    total = (m * n * k) ** (1.0 / 3.0)
    size_ramp = total / (total + 1024.0)
    return max(_MIN_EFFICIENCY, peak_efficiency * ramp * (0.5 + 0.5 * size_ramp))


def gemm_time_us(m: int, n: int, k: int, dtype_bytes: int, gpu: GPUSpec,
                 peak_efficiency: float = 0.62) -> float:
    """Duration in microseconds of an ``m×n×k`` GEMM on ``gpu``."""
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    flops = 2.0 * m * n * k
    efficiency = gemm_efficiency(m, n, k, peak_efficiency)
    compute_us = flops / (gpu.bf16_flops_per_us * efficiency)
    bytes_moved = dtype_bytes * (m * k + k * n + m * n)
    memory_us = bytes_moved / gpu.memory_bytes_per_us
    return max(compute_us, memory_us) + gpu.kernel_fixed_overhead_us
