"""Fused (flash) attention kernel cost model."""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec


def attention_time_us(flops: float, bytes_accessed: float, gpu: GPUSpec,
                      efficiency: float = 0.45) -> float:
    """Duration of a fused attention kernel.

    Flash attention reaches a lower fraction of peak than large GEMMs
    because of softmax/rescaling work and the causal mask halving useful
    FLOPs; ``efficiency`` captures that.  The model is a roofline over the
    kernel's total FLOPs and HBM traffic.
    """
    if flops < 0 or bytes_accessed < 0:
        raise ValueError("flops and bytes_accessed must be non-negative")
    compute_us = flops / (gpu.bf16_flops_per_us * efficiency)
    memory_us = bytes_accessed / gpu.memory_bytes_per_us
    return max(compute_us, memory_us) + gpu.kernel_fixed_overhead_us
