"""Shared settings for the evaluation experiments."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.workload.training import TrainingConfig


def _fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "").lower() in ("1", "true", "yes")


@dataclass(frozen=True)
class EvaluationSettings:
    """Knobs shared by every experiment runner.

    ``REPRO_FAST=1`` halves the number of micro-batches, which roughly halves
    event counts and wall-clock time of the benchmark suite without changing
    any qualitative result.
    """

    micro_batch_size: int = 2
    num_microbatches: int = 4
    sequence_length: int = 2048
    seed: int = 2025
    measured_iterations: int = 2

    @classmethod
    def default(cls) -> "EvaluationSettings":
        if _fast_mode():
            return cls(num_microbatches=2)
        return cls()

    def training(self) -> TrainingConfig:
        """Training configuration used by every emulated job."""
        return TrainingConfig(
            micro_batch_size=self.micro_batch_size,
            num_microbatches=self.num_microbatches,
            sequence_length=self.sequence_length,
        )
