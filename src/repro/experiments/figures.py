"""Runners for every figure and table of the paper's evaluation.

Each ``run_*`` function emulates the relevant workload on the modelled
cluster (the substitute for the paper's H100 testbed), applies Lumos and —
where the paper does — the dPRO baseline, and returns the per-configuration
comparisons.  Benchmarks print these; tests assert on their shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.comparison import (
    BreakdownComparison,
    ReplayComparison,
    compare_breakdowns,
    evaluate_replay,
)
from repro.baselines.dpro import dpro_replay
from repro.core.breakdown import compute_breakdown
from repro.core.manipulation import (
    change_architecture,
    scale_data_parallelism,
    scale_pipeline_parallelism,
)
from repro.core.perf_model import KernelPerfModel
from repro.core.replay import replay, simulate_graph
from repro.core.sm_utilization import sm_utilization_timeline
from repro.emulator.api import emulate
from repro.experiments.settings import EvaluationSettings
from repro.hardware.cluster import ClusterSpec
from repro.workload.model_config import GPT3_VARIANTS, ModelConfig, gpt3_model
from repro.workload.parallelism import ParallelismConfig

#: Figure 5 — the (model, TP×PP×DP) grid of the replay evaluation.
FIG5_CONFIGS: dict[str, list[str]] = {
    "gpt3-15b": ["2x2x4", "2x2x8", "2x4x2", "2x4x4", "4x2x2", "4x2x4"],
    "gpt3-44b": ["4x4x2", "4x4x4", "4x8x1", "4x8x2", "8x4x1", "8x4x2"],
    "gpt3-117b": ["4x8x2", "4x8x4", "8x4x2", "8x4x4", "8x8x1", "8x8x2"],
    "gpt3-175b": ["4x8x4", "4x8x8", "4x8x16", "8x4x4", "8x4x8", "8x4x16"],
}

#: Figure 7a/b/c — scale-out targets predicted from the GPT-3 15B 2x2x4 base trace.
FIG7_BASE_CONFIG = "2x2x4"
FIG7A_CONFIGS = ["2x2x8", "2x2x16", "2x2x32"]
FIG7B_CONFIGS = ["2x4x4", "2x8x4", "2x16x4"]
FIG7C_CONFIGS = ["2x4x8", "2x8x8", "2x4x16"]

#: Figure 8 / Table 2 — architecture variants predicted from the 15B base trace.
FIG8_VARIANTS = ["gpt3-v1", "gpt3-v2", "gpt3-v3", "gpt3-v4"]


@dataclass(frozen=True)
class MotivationComparison:
    """Figure 1: actual vs dPRO breakdown of one GPT-3 175B iteration."""

    actual: BreakdownComparison
    dpro_overlap_ratio: float
    dpro_underestimates_total: bool


@dataclass(frozen=True)
class SMUtilizationComparison:
    """Figure 6: actual / Lumos / dPRO SM-utilisation timelines of one rank."""

    actual: np.ndarray
    lumos: np.ndarray
    dpro: np.ndarray


def _emulate_pair(model: ModelConfig, parallel: ParallelismConfig,
                  settings: EvaluationSettings, seed_offset: int = 0):
    """Emulate one configuration, returning (profiled, measured) bundles."""
    result = emulate(model, parallel, settings.training(),
                     iterations=settings.measured_iterations,
                     seed=settings.seed + seed_offset)
    return result.profiled, result.measured


def run_replay_comparison(model_name: str, config_label: str,
                          settings: EvaluationSettings | None = None,
                          seed_offset: int = 0) -> ReplayComparison:
    """One Figure 5 cell: actual vs Lumos vs dPRO for one configuration."""
    settings = settings or EvaluationSettings.default()
    model = gpt3_model(model_name)
    parallel = ParallelismConfig.parse(config_label)
    profiled, measured = _emulate_pair(model, parallel, settings, seed_offset)
    return evaluate_replay(f"{model_name}:{config_label}", profiled, measured)


def run_motivation_comparison(settings: EvaluationSettings | None = None) -> MotivationComparison:
    """Figure 1: dPRO's breakdown of GPT-3 175B at 8x4x8 vs the actual one."""
    settings = settings or EvaluationSettings.default()
    model = gpt3_model("gpt3-175b")
    parallel = ParallelismConfig.parse("8x4x8")
    profiled, measured = _emulate_pair(model, parallel, settings)
    dpro = dpro_replay(profiled)
    comparison = compare_breakdowns("gpt3-175b:8x4x8", compute_breakdown(measured),
                                    dpro.breakdown())
    actual_overlap = comparison.actual.overlapped
    dpro_overlap = comparison.predicted.overlapped
    return MotivationComparison(
        actual=comparison,
        dpro_overlap_ratio=dpro_overlap / max(actual_overlap, 1e-9),
        dpro_underestimates_total=comparison.predicted.total < comparison.actual.total,
    )


def run_sm_utilization(settings: EvaluationSettings | None = None,
                       bin_us: float = 1000.0) -> SMUtilizationComparison:
    """Figure 6: SM utilisation of GPT-3 15B at 2x2x4, actual vs Lumos vs dPRO."""
    settings = settings or EvaluationSettings.default()
    model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse("2x2x4")
    profiled, measured = _emulate_pair(model, parallel, settings)
    rank = measured.ranks()[0]
    lumos = replay(profiled)
    dpro = dpro_replay(profiled)
    return SMUtilizationComparison(
        actual=sm_utilization_timeline(measured[rank], bin_us=bin_us),
        lumos=sm_utilization_timeline(lumos.replayed_trace[rank], bin_us=bin_us),
        dpro=sm_utilization_timeline(dpro.replayed_trace[rank], bin_us=bin_us),
    )


def run_parallelism_prediction(target_label: str, base_label: str = FIG7_BASE_CONFIG,
                               model_name: str = "gpt3-15b",
                               settings: EvaluationSettings | None = None) -> BreakdownComparison:
    """One Figure 7 bar pair: predict a scale-out configuration from the base trace."""
    settings = settings or EvaluationSettings.default()
    model = gpt3_model(model_name)
    base_parallel = ParallelismConfig.parse(base_label)
    target_parallel = ParallelismConfig.parse(target_label)
    if target_parallel.tp != base_parallel.tp:
        raise NotImplementedError("tensor-parallel changes are out of scope")
    training = settings.training()

    profiled, _ = _emulate_pair(model, base_parallel, settings)
    base_replay = replay(profiled)
    perf_model = KernelPerfModel.calibrate(
        base_replay.graph, ClusterSpec.for_world_size(base_parallel.world_size))

    if target_parallel.pp == base_parallel.pp:
        predicted_graph = scale_data_parallelism(base_replay.graph, base_parallel,
                                                 target_parallel.dp, perf_model)
    else:
        predicted_graph = scale_pipeline_parallelism(
            base_replay.graph, model, base_parallel, training,
            target_parallel.pp, perf_model, new_data_parallel=target_parallel.dp)
    predicted = simulate_graph(predicted_graph)

    _, measured = _emulate_pair(model, target_parallel, settings, seed_offset=17)
    return compare_breakdowns(f"{model_name}:{target_label}", compute_breakdown(measured),
                              predicted.breakdown())


def run_architecture_prediction(variant_name: str, base_model_name: str = "gpt3-15b",
                                config_label: str = FIG7_BASE_CONFIG,
                                settings: EvaluationSettings | None = None) -> BreakdownComparison:
    """One Figure 8 bar pair: predict a model variant from the base model's trace."""
    settings = settings or EvaluationSettings.default()
    base_model = gpt3_model(base_model_name)
    target_model = GPT3_VARIANTS[variant_name] if variant_name in GPT3_VARIANTS \
        else gpt3_model(variant_name)
    parallel = ParallelismConfig.parse(config_label)
    training = settings.training()

    profiled, _ = _emulate_pair(base_model, parallel, settings)
    base_replay = replay(profiled)
    cluster = ClusterSpec.for_world_size(parallel.world_size)
    perf_model = KernelPerfModel.calibrate(base_replay.graph, cluster)

    predicted_graph = change_architecture(base_replay.graph, base_model, parallel, training,
                                          target_model, perf_model, cluster=cluster)
    predicted = simulate_graph(predicted_graph)

    _, measured = _emulate_pair(target_model, parallel, settings, seed_offset=23)
    return compare_breakdowns(f"{variant_name}:{config_label}", compute_breakdown(measured),
                              predicted.breakdown())
