"""Experiment definitions and runners for the paper's tables and figures.

Each function corresponds to a figure or table of the evaluation section and
returns plain data structures; the benchmark harness prints them and the
tests assert on their qualitative shape.  ``EvaluationSettings`` centralises
the knobs (micro-batches, seeds) and honours the ``REPRO_FAST`` environment
variable so the full suite stays runnable on a laptop.
"""

from repro.experiments.settings import EvaluationSettings
from repro.experiments.figures import (
    FIG5_CONFIGS,
    FIG7A_CONFIGS,
    FIG7B_CONFIGS,
    FIG7C_CONFIGS,
    FIG8_VARIANTS,
    run_architecture_prediction,
    run_motivation_comparison,
    run_parallelism_prediction,
    run_replay_comparison,
    run_sm_utilization,
)

__all__ = [
    "EvaluationSettings",
    "FIG5_CONFIGS",
    "FIG7A_CONFIGS",
    "FIG7B_CONFIGS",
    "FIG7C_CONFIGS",
    "FIG8_VARIANTS",
    "run_replay_comparison",
    "run_motivation_comparison",
    "run_sm_utilization",
    "run_parallelism_prediction",
    "run_architecture_prediction",
]
