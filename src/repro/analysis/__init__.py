"""Comparison and reporting helpers used by the examples and benchmarks."""

from repro.analysis.comparison import (
    BreakdownComparison,
    ReplayComparison,
    compare_breakdowns,
    evaluate_replay,
)
from repro.analysis.reporting import format_breakdown_row, format_table

__all__ = [
    "ReplayComparison",
    "BreakdownComparison",
    "evaluate_replay",
    "compare_breakdowns",
    "format_table",
    "format_breakdown_row",
]
