"""Predicted-vs-actual comparisons.

These helpers produce the numbers the paper's figures report: per
configuration, the actual iteration time and breakdown, the Lumos and dPRO
replays, and the relative errors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.dpro import dpro_replay
from repro.core.breakdown import ExecutionBreakdown, compute_breakdown
from repro.core.metrics import absolute_relative_error_percent, relative_error_percent
from repro.core.replay import ReplayResult, replay
from repro.trace.kineto import TraceBundle


@dataclass(frozen=True)
class BreakdownComparison:
    """Actual vs predicted execution breakdown for one configuration."""

    label: str
    actual: ExecutionBreakdown
    predicted: ExecutionBreakdown

    @property
    def total_error_percent(self) -> float:
        return relative_error_percent(self.predicted.total, self.actual.total)

    def component_errors_percent(self) -> dict[str, float]:
        """Signed relative error of each breakdown component (percent of total)."""
        errors: dict[str, float] = {}
        for key, actual_value in self.actual.as_dict().items():
            predicted_value = self.predicted.as_dict()[key]
            errors[key] = (predicted_value - actual_value) / max(self.actual.total, 1e-9) * 100.0
        return errors


@dataclass(frozen=True)
class ReplayComparison:
    """Actual vs Lumos vs dPRO for one configuration (one Figure 5 group)."""

    label: str
    actual_time_us: float
    lumos_time_us: float
    dpro_time_us: float
    actual_breakdown: ExecutionBreakdown
    lumos_breakdown: ExecutionBreakdown
    dpro_breakdown: ExecutionBreakdown

    @property
    def lumos_error_percent(self) -> float:
        return relative_error_percent(self.lumos_time_us, self.actual_time_us)

    @property
    def dpro_error_percent(self) -> float:
        return relative_error_percent(self.dpro_time_us, self.actual_time_us)

    @property
    def lumos_abs_error_percent(self) -> float:
        return absolute_relative_error_percent(self.lumos_time_us, self.actual_time_us)

    @property
    def dpro_abs_error_percent(self) -> float:
        return absolute_relative_error_percent(self.dpro_time_us, self.actual_time_us)


def evaluate_replay(label: str, profiled: TraceBundle, measured: TraceBundle,
                    lumos_result: ReplayResult | None = None,
                    dpro_result: ReplayResult | None = None) -> ReplayComparison:
    """Replay ``profiled`` with Lumos and dPRO and compare against ``measured``."""
    lumos_result = lumos_result or replay(profiled)
    dpro_result = dpro_result or dpro_replay(profiled)
    return ReplayComparison(
        label=label,
        actual_time_us=measured.iteration_time(),
        lumos_time_us=lumos_result.iteration_time_us,
        dpro_time_us=dpro_result.iteration_time_us,
        actual_breakdown=compute_breakdown(measured),
        lumos_breakdown=lumos_result.breakdown(),
        dpro_breakdown=dpro_result.breakdown(),
    )


def compare_breakdowns(label: str, actual: TraceBundle | ExecutionBreakdown,
                       predicted: TraceBundle | ExecutionBreakdown) -> BreakdownComparison:
    """Compare a predicted breakdown (from manipulation) against ground truth."""
    actual_breakdown = (actual if isinstance(actual, ExecutionBreakdown)
                        else compute_breakdown(actual))
    predicted_breakdown = (predicted if isinstance(predicted, ExecutionBreakdown)
                           else compute_breakdown(predicted))
    return BreakdownComparison(label=label, actual=actual_breakdown,
                               predicted=predicted_breakdown)
