"""Plain-text rendering of evaluation tables.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.breakdown import ExecutionBreakdown

_BREAKDOWN_COLUMNS = ("exposed_compute", "overlapped", "exposed_communication", "other", "total")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [[str(header)] + [str(row[index]) for row in rows]
               for index, header in enumerate(headers)]
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    header_line = "  ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(str(value).ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def format_breakdown_row(label: str, breakdown: ExecutionBreakdown) -> list[str]:
    """One table row: label plus the four breakdown components and total (ms)."""
    values = breakdown.as_milliseconds()
    return [label] + [f"{values[column]:.1f}" for column in _BREAKDOWN_COLUMNS]


def breakdown_headers(prefix: str = "") -> list[str]:
    """Column headers matching :func:`format_breakdown_row`."""
    label = f"{prefix}config" if prefix else "config"
    return [label, "exposed_compute_ms", "overlapped_ms", "exposed_comm_ms", "other_ms", "total_ms"]


def format_sweep_row(rank: int, label: str, kind: str, world_size: int,
                     time_ms: float, speedup_vs_base: float, cached: bool) -> list[str]:
    """One row of a sweep ranking / Pareto table."""
    return [str(rank), label, kind, str(world_size), f"{time_ms:.1f}",
            f"{speedup_vs_base:.2f}x", "yes" if cached else "no"]


def sweep_headers() -> list[str]:
    """Column headers matching :func:`format_sweep_row`."""
    return ["rank", "scenario", "kind", "gpus", "time_ms", "vs_base", "cached"]


def format_serving_sweep_row(rank: int, label: str, kind: str,
                             ttft_p99_ms: float, latency_p99_ms: float,
                             tokens_per_s: float, slo_attainment: float,
                             goodput_rps: float, cached: bool) -> list[str]:
    """One row of a continuous-batching (serving) sweep ranking table."""
    return [str(rank), label, kind, f"{ttft_p99_ms:.2f}", f"{latency_p99_ms:.2f}",
            f"{tokens_per_s:.0f}", f"{slo_attainment:.0%}", f"{goodput_rps:.1f}",
            "yes" if cached else "no"]


def serving_sweep_headers() -> list[str]:
    """Column headers matching :func:`format_serving_sweep_row`."""
    return ["rank", "scenario", "kind", "ttft_p99_ms", "latency_p99_ms",
            "tokens_per_s", "slo_met", "goodput_rps", "cached"]
