"""Correlation-id utilities.

Kineto tags each CUDA runtime launch call and the GPU kernel it enqueues
with the same correlation id.  The graph builder uses this to create the
CPU→GPU dependency class described in §3.3.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import CudaRuntimeName, TraceEvent, is_kernel_event, is_runtime_event


@dataclass
class CorrelationIndex:
    """Bidirectional index between runtime launches and GPU kernels."""

    launch_by_correlation: dict[int, TraceEvent] = field(default_factory=dict)
    kernels_by_correlation: dict[int, list[TraceEvent]] = field(default_factory=dict)

    def kernel_for_launch(self, launch: TraceEvent) -> list[TraceEvent]:
        """GPU kernels enqueued by a runtime launch event."""
        correlation = launch.correlation
        if correlation is None:
            return []
        return self.kernels_by_correlation.get(correlation, [])

    def launch_for_kernel(self, kernel: TraceEvent) -> TraceEvent | None:
        """The runtime launch event that enqueued ``kernel``, if known."""
        correlation = kernel.correlation
        if correlation is None:
            return None
        return self.launch_by_correlation.get(correlation)

    def orphan_kernels(self) -> list[TraceEvent]:
        """Kernels whose correlation id has no matching launch event."""
        orphans: list[TraceEvent] = []
        for correlation, kernels in self.kernels_by_correlation.items():
            if correlation not in self.launch_by_correlation:
                orphans.extend(kernels)
        return orphans


def link_runtime_to_kernels(events: list[TraceEvent]) -> CorrelationIndex:
    """Build a :class:`CorrelationIndex` from one rank's events."""
    index = CorrelationIndex()
    for event in events:
        correlation = event.correlation
        if correlation is None:
            continue
        if is_runtime_event(event) and event.name in CudaRuntimeName.LAUNCHES:
            index.launch_by_correlation[correlation] = event
        elif is_kernel_event(event):
            index.kernels_by_correlation.setdefault(correlation, []).append(event)
    return index
