"""Trace validation.

Validation catches malformed traces before they reach the graph builder:
negative durations, kernels without streams, launch calls whose kernels are
missing, or overlapping events on the same CUDA stream (streams execute
kernels sequentially, so overlap indicates a broken trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.correlation import link_runtime_to_kernels
from repro.trace.events import CudaRuntimeName, TraceEvent
from repro.trace.kineto import KinetoTrace, TraceBundle

_STREAM_OVERLAP_TOLERANCE_US = 1e-6


class TraceValidationError(ValueError):
    """Raised when :func:`validate_trace` finds problems and ``strict`` is set."""


@dataclass
class ValidationReport:
    """Problems found in a trace, grouped by severity."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def extend(self, other: "ValidationReport") -> None:
        self.errors.extend(other.errors)
        self.warnings.extend(other.warnings)


def _validate_single(trace: KinetoTrace) -> ValidationReport:
    report = ValidationReport()
    for event in trace.events:
        if event.dur < 0:
            report.errors.append(
                f"rank {trace.rank}: event '{event.name}' at ts={event.ts} has negative duration"
            )
        if event.is_gpu() and event.stream is None:
            report.errors.append(
                f"rank {trace.rank}: GPU event '{event.name}' at ts={event.ts} has no stream id"
            )

    index = link_runtime_to_kernels(trace.events)
    for correlation, launch in index.launch_by_correlation.items():
        if (launch.name == CudaRuntimeName.LAUNCH_KERNEL
                and correlation not in index.kernels_by_correlation):
            report.warnings.append(
                f"rank {trace.rank}: launch correlation {correlation} has no matching kernel"
            )
    for kernel in index.orphan_kernels():
        report.warnings.append(
            f"rank {trace.rank}: kernel '{kernel.name}' correlation {kernel.correlation} "
            "has no launch event"
        )

    # Kernels on the same stream must not overlap.
    by_stream: dict[int, list[TraceEvent]] = {}
    for event in trace.kernels():
        by_stream.setdefault(int(event.stream), []).append(event)
    for stream, kernels in by_stream.items():
        kernels.sort(key=lambda e: e.ts)
        for previous, current in zip(kernels, kernels[1:]):
            if current.ts < previous.end - _STREAM_OVERLAP_TOLERANCE_US:
                report.errors.append(
                    f"rank {trace.rank}: kernels '{previous.name}' and '{current.name}' "
                    f"overlap on stream {stream}"
                )
    return report


def validate_trace(trace: KinetoTrace | TraceBundle, strict: bool = False) -> ValidationReport:
    """Validate a trace or bundle, optionally raising on errors.

    Parameters
    ----------
    trace:
        A single-rank trace or a multi-rank bundle.
    strict:
        When True, raise :class:`TraceValidationError` if any error is found.
    """
    report = ValidationReport()
    if isinstance(trace, TraceBundle):
        for single in trace:
            report.extend(_validate_single(single))
    else:
        report.extend(_validate_single(trace))
    if strict and not report.ok:
        raise TraceValidationError("; ".join(report.errors))
    return report
