"""Trace event schema.

Events follow the chrome-trace "complete event" (``ph == "X"``) convention
used by PyTorch Kineto.  Timestamps and durations are in microseconds.

Three event categories matter for performance modeling:

``cpu_op``
    Framework-level operators executed on a CPU thread (``aten::mm``,
    ``aten::layer_norm``, ...).
``cuda_runtime``
    CUDA runtime calls executed on a CPU thread (``cudaLaunchKernel``,
    ``cudaEventRecord``, ``cudaStreamWaitEvent``, ``cudaStreamSynchronize``,
    ...).  Launch calls carry a ``correlation`` id linking them to the GPU
    kernel they enqueue.
``kernel``
    GPU kernels.  ``tid`` holds the CUDA stream id (Kineto convention for
    device tracks) and ``args`` carries ``stream``/``correlation``.

``user_annotation`` events are emitted for profiler steps and per-layer
``record_function`` ranges; they are optional for replay but used for
layer grouping during graph manipulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


class Category:
    """Event category strings (the ``cat`` field)."""

    CPU_OP = "cpu_op"
    CUDA_RUNTIME = "cuda_runtime"
    KERNEL = "kernel"
    GPU_MEMCPY = "gpu_memcpy"
    GPU_MEMSET = "gpu_memset"
    USER_ANNOTATION = "user_annotation"
    PYTHON_FUNCTION = "python_function"

    CPU_CATEGORIES = frozenset({CPU_OP, CUDA_RUNTIME, USER_ANNOTATION, PYTHON_FUNCTION})
    GPU_CATEGORIES = frozenset({KERNEL, GPU_MEMCPY, GPU_MEMSET})


class CudaRuntimeName:
    """Names of the CUDA runtime calls the graph builder understands."""

    LAUNCH_KERNEL = "cudaLaunchKernel"
    MEMCPY_ASYNC = "cudaMemcpyAsync"
    MEMSET_ASYNC = "cudaMemsetAsync"
    EVENT_RECORD = "cudaEventRecord"
    STREAM_WAIT_EVENT = "cudaStreamWaitEvent"
    STREAM_SYNCHRONIZE = "cudaStreamSynchronize"
    DEVICE_SYNCHRONIZE = "cudaDeviceSynchronize"
    EVENT_SYNCHRONIZE = "cudaEventSynchronize"

    LAUNCHES = frozenset({LAUNCH_KERNEL, MEMCPY_ASYNC, MEMSET_ASYNC})
    SYNCS = frozenset({STREAM_SYNCHRONIZE, DEVICE_SYNCHRONIZE, EVENT_SYNCHRONIZE})


@dataclass
class TraceEvent:
    """A single chrome-trace complete event.

    Attributes
    ----------
    name:
        Event name (operator name, runtime call name or kernel name).
    cat:
        One of the :class:`Category` strings.
    ts:
        Start timestamp in microseconds.
    dur:
        Duration in microseconds.
    pid:
        Process id.  We use the global rank.
    tid:
        CPU thread id for CPU-side events; CUDA stream id for GPU events
        (Kineto places device events on per-stream tracks).
    args:
        Free-form metadata.  Recognised keys include ``correlation``,
        ``stream``, ``event_id``, ``wait_stream``, ``record_stream``,
        ``collective``, ``group``, ``group_id``, ``group_size``,
        ``size_bytes``, ``layer``, ``microbatch``, ``phase``, ``op_class``.
    """

    name: str
    cat: str
    ts: float
    dur: float
    pid: int
    tid: int
    args: dict[str, Any] = field(default_factory=dict)
    ph: str = "X"

    @property
    def end(self) -> float:
        """End timestamp in microseconds."""
        return self.ts + self.dur

    @property
    def correlation(self) -> int | None:
        """Correlation id linking a runtime launch to its kernel, if any."""
        value = self.args.get("correlation")
        return int(value) if value is not None else None

    @property
    def stream(self) -> int | None:
        """CUDA stream id for GPU events (falls back to ``tid``)."""
        if "stream" in self.args:
            return int(self.args["stream"])
        if self.cat in Category.GPU_CATEGORIES:
            return int(self.tid)
        return None

    def is_cpu(self) -> bool:
        """True if the event executed on a CPU thread."""
        return self.cat in Category.CPU_CATEGORIES

    def is_gpu(self) -> bool:
        """True if the event executed on the GPU."""
        return self.cat in Category.GPU_CATEGORIES

    def to_json(self) -> dict[str, Any]:
        """Serialise to a chrome-trace event dictionary."""
        return {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "TraceEvent":
        """Deserialise from a chrome-trace event dictionary."""
        return cls(
            name=str(payload["name"]),
            cat=str(payload.get("cat", "")),
            ts=float(payload["ts"]),
            dur=float(payload.get("dur", 0.0)),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            args=dict(payload.get("args", {})),
            ph=str(payload.get("ph", "X")),
        )


def is_kernel_event(event: TraceEvent) -> bool:
    """True for GPU kernel / memcpy / memset events."""
    return event.cat in Category.GPU_CATEGORIES


def is_runtime_event(event: TraceEvent) -> bool:
    """True for CUDA runtime events."""
    return event.cat == Category.CUDA_RUNTIME


def is_sync_runtime(event: TraceEvent) -> bool:
    """True for blocking CUDA synchronisation runtime calls."""
    return event.cat == Category.CUDA_RUNTIME and event.name in CudaRuntimeName.SYNCS


def is_collective_kernel(event: TraceEvent) -> bool:
    """True for communication kernels (NCCL-style names or tagged args)."""
    if not is_kernel_event(event):
        return False
    if event.args.get("collective"):
        return True
    name = event.name.lower()
    return name.startswith("nccl") or "allreduce" in name or "all_reduce" in name
