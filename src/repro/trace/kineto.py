"""Kineto-style trace containers and chrome-trace JSON I/O.

A :class:`KinetoTrace` holds the events collected on one rank for one or
more profiler steps (iterations).  A :class:`TraceBundle` groups the
per-rank traces of a distributed job, which is what the Lumos graph
builder consumes.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.trace.events import Category, TraceEvent

_SCHEMA_VERSION = 1
_PROFILER_STEP_PREFIX = "ProfilerStep#"


@dataclass(frozen=True)
class DistributedInfo:
    """Distributed-job metadata attached to every per-rank trace.

    Mirrors the ``distributedInfo`` block Kineto writes: the global rank,
    world size and the 3D-parallel degrees used by the job.
    """

    rank: int
    world_size: int
    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    data_parallel: int = 1

    def to_json(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "world_size": self.world_size,
            "tensor_parallel": self.tensor_parallel,
            "pipeline_parallel": self.pipeline_parallel,
            "data_parallel": self.data_parallel,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "DistributedInfo":
        return cls(
            rank=int(payload["rank"]),
            world_size=int(payload["world_size"]),
            tensor_parallel=int(payload.get("tensor_parallel", 1)),
            pipeline_parallel=int(payload.get("pipeline_parallel", 1)),
            data_parallel=int(payload.get("data_parallel", 1)),
        )


@dataclass
class KinetoTrace:
    """All events collected on one rank, sorted by start time."""

    rank: int
    events: list[TraceEvent] = field(default_factory=list)
    distributed: DistributedInfo | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: (e.ts, e.dur))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- selection helpers -------------------------------------------------

    def by_category(self, *categories: str) -> list[TraceEvent]:
        """Return events whose ``cat`` is one of ``categories``."""
        wanted = set(categories)
        return [e for e in self.events if e.cat in wanted]

    def cpu_ops(self) -> list[TraceEvent]:
        """Framework operator events."""
        return self.by_category(Category.CPU_OP)

    def runtime_events(self) -> list[TraceEvent]:
        """CUDA runtime events."""
        return self.by_category(Category.CUDA_RUNTIME)

    def kernels(self) -> list[TraceEvent]:
        """GPU kernel / memcpy / memset events."""
        return self.by_category(*Category.GPU_CATEGORIES)

    def annotations(self) -> list[TraceEvent]:
        """User annotation events (profiler steps, record_function ranges)."""
        return self.by_category(Category.USER_ANNOTATION)

    def threads(self) -> list[int]:
        """CPU thread ids present in the trace."""
        return sorted({e.tid for e in self.events if e.is_cpu()})

    def streams(self) -> list[int]:
        """CUDA stream ids present in the trace."""
        return sorted({int(e.stream) for e in self.events if e.is_gpu() and e.stream is not None})

    # -- timing helpers ----------------------------------------------------

    def start_time(self) -> float:
        """Earliest event start, or 0.0 for an empty trace."""
        return min((e.ts for e in self.events), default=0.0)

    def end_time(self) -> float:
        """Latest event end, or 0.0 for an empty trace."""
        return max((e.end for e in self.events), default=0.0)

    def span(self) -> float:
        """Wall-clock span covered by the trace in microseconds."""
        if not self.events:
            return 0.0
        return self.end_time() - self.start_time()

    def profiler_steps(self) -> list[TraceEvent]:
        """``ProfilerStep#N`` annotation events, sorted by step number."""
        steps = [
            e
            for e in self.annotations()
            if e.name.startswith(_PROFILER_STEP_PREFIX)
        ]
        steps.sort(key=lambda e: int(e.name[len(_PROFILER_STEP_PREFIX):]))
        return steps

    def iteration_window(self, step: int | None = None) -> tuple[float, float]:
        """Return the ``(start, end)`` window of one profiler step.

        If ``step`` is None the first recorded step is used.  Falls back to
        the whole trace span when no step annotations are present.
        """
        steps = self.profiler_steps()
        if not steps:
            return self.start_time(), self.end_time()
        if step is None:
            chosen = steps[0]
        else:
            by_number = {
                int(e.name[len(_PROFILER_STEP_PREFIX):]): e for e in steps
            }
            if step not in by_number:
                raise KeyError(
                    f"profiler step {step} not present in trace (have {sorted(by_number)})")
            chosen = by_number[step]
        return chosen.ts, chosen.end

    def slice(self, start: float, end: float) -> "KinetoTrace":
        """Return a new trace containing events fully inside ``[start, end]``."""
        events = [e for e in self.events if e.ts >= start and e.end <= end]
        return KinetoTrace(
            rank=self.rank,
            events=list(events),
            distributed=self.distributed,
            metadata=dict(self.metadata),
        )

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """Serialise to a chrome-trace compatible dictionary."""
        payload: dict[str, Any] = {
            "schemaVersion": _SCHEMA_VERSION,
            "traceEvents": [e.to_json() for e in self.events],
            "metadata": dict(self.metadata),
        }
        if self.distributed is not None:
            payload["distributedInfo"] = self.distributed.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any], rank: int | None = None) -> "KinetoTrace":
        """Deserialise from a chrome-trace dictionary."""
        distributed = None
        if "distributedInfo" in payload:
            distributed = DistributedInfo.from_json(payload["distributedInfo"])
        if rank is None:
            rank = distributed.rank if distributed is not None else 0
        events = [TraceEvent.from_json(e) for e in payload.get("traceEvents", [])]
        return cls(
            rank=rank,
            events=events,
            distributed=distributed,
            metadata=dict(payload.get("metadata", {})),
        )

    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` (gzip-compressed when ``.gz``)."""
        path = Path(path)
        text = json.dumps(self.to_json())
        if path.suffix == ".gz":
            with gzip.open(path, "wt", encoding="utf-8") as handle:
                handle.write(text)
        else:
            path.write_text(text, encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "KinetoTrace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
        else:
            payload = json.loads(path.read_text(encoding="utf-8"))
        return cls.from_json(payload)


@dataclass
class TraceBundle:
    """The per-rank traces of one distributed training job."""

    traces: dict[int, KinetoTrace] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[KinetoTrace]:
        for rank in self.ranks():
            yield self.traces[rank]

    def __getitem__(self, rank: int) -> KinetoTrace:
        return self.traces[rank]

    def ranks(self) -> list[int]:
        """Ranks present in the bundle, sorted."""
        return sorted(self.traces)

    def add(self, trace: KinetoTrace) -> None:
        """Add a per-rank trace, replacing any existing trace for that rank."""
        self.traces[trace.rank] = trace

    def events(self) -> Iterable[TraceEvent]:
        """Iterate over every event of every rank."""
        for trace in self:
            yield from trace.events

    def iteration_time(self, step: int | None = None) -> float:
        """Wall-clock duration of one iteration across all ranks (us).

        The iteration time of a distributed job is the span from the
        earliest rank's step start to the latest rank's step end.
        """
        starts: list[float] = []
        ends: list[float] = []
        for trace in self:
            start, end = trace.iteration_window(step)
            starts.append(start)
            ends.append(end)
        if not starts:
            return 0.0
        return max(ends) - min(starts)

    def save(self, directory: str | Path) -> None:
        """Write one ``rank_<r>.json.gz`` per rank plus a manifest."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {"ranks": self.ranks(), "metadata": self.metadata}
        (directory / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        for rank, trace in self.traces.items():
            trace.save(directory / f"rank_{rank}.json.gz")

    @classmethod
    def load(cls, directory: str | Path) -> "TraceBundle":
        """Read a bundle previously written by :meth:`save`."""
        directory = Path(directory)
        manifest = json.loads((directory / "manifest.json").read_text(encoding="utf-8"))
        bundle = cls(metadata=dict(manifest.get("metadata", {})))
        for rank in manifest["ranks"]:
            bundle.add(KinetoTrace.load(directory / f"rank_{rank}.json.gz"))
        return bundle
