"""Kineto-style trace schema and I/O.

The emulator (:mod:`repro.emulator`) emits traces in this format and the
Lumos graph builder (:mod:`repro.core.graph_builder`) consumes them.  The
schema mirrors the subset of PyTorch Kineto / chrome-trace conventions the
paper relies on: ``cpu_op``, ``cuda_runtime`` and ``kernel`` events linked by
correlation IDs, with stream/thread IDs and ``cudaEventRecord`` /
``cudaStreamWaitEvent`` synchronisation pairs.
"""

from repro.trace.events import (
    Category,
    CudaRuntimeName,
    TraceEvent,
    is_collective_kernel,
    is_kernel_event,
    is_runtime_event,
    is_sync_runtime,
)
from repro.trace.kineto import DistributedInfo, KinetoTrace, TraceBundle
from repro.trace.correlation import CorrelationIndex, link_runtime_to_kernels
from repro.trace.validation import TraceValidationError, validate_trace

__all__ = [
    "Category",
    "CudaRuntimeName",
    "TraceEvent",
    "KinetoTrace",
    "TraceBundle",
    "DistributedInfo",
    "CorrelationIndex",
    "link_runtime_to_kernels",
    "TraceValidationError",
    "validate_trace",
    "is_collective_kernel",
    "is_kernel_event",
    "is_runtime_event",
    "is_sync_runtime",
]
