"""Per-rank training programs.

A :class:`RankProgram` is the emulator's intermediate representation of one
iteration on one rank: an ordered list of CPU-side instructions.  Launch
instructions enqueue GPU kernels (``KernelIntent``) onto CUDA streams;
event-record / stream-wait instructions express the inter-stream
synchronisation that the paper identifies as essential for modeling LLM
execution; stream/device synchronisation instructions block the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Streams:
    """CUDA stream ids used by the emulated training job."""

    COMPUTE = 7
    TP_COMM = 20
    DP_COMM = 24
    PP_SEND_FWD = 28
    PP_RECV_FWD = 30
    PP_SEND_BWD = 32
    PP_RECV_BWD = 34

    ALL = (COMPUTE, TP_COMM, DP_COMM, PP_SEND_FWD, PP_RECV_FWD, PP_SEND_BWD, PP_RECV_BWD)
    COMM = (TP_COMM, DP_COMM, PP_SEND_FWD, PP_RECV_FWD, PP_SEND_BWD, PP_RECV_BWD)


class Threads:
    """CPU thread ids used by the emulated training job."""

    MAIN = 101
    BACKWARD = 102


@dataclass(frozen=True)
class KernelIntent:
    """A GPU kernel to enqueue, with enough metadata to emit a trace event.

    ``duration_us`` is the jitter-free base duration from the kernel cost
    model; the executor applies the noise model on top.  ``comm_key``
    identifies cross-rank collective instances (point-to-point pairs) that
    the executor must align in time.  ``flops`` / ``bytes_accessed`` carry
    the analytical inputs of kernels whose shape is not recoverable from
    the kernel name (decode attention), so trace-driven calibration can
    re-predict them.
    """

    name: str
    stream: int
    duration_us: float
    op_class: str
    collective: str | None = None
    group: str | None = None
    group_ranks: tuple[int, ...] = ()
    comm_key: str | None = None
    size_bytes: float = 0.0
    flops: float = 0.0
    bytes_accessed: float = 0.0
    layer: int | None = None
    microbatch: int | None = None
    phase: str | None = None
    op_name: str | None = None

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("kernel duration must be non-negative")


@dataclass(frozen=True)
class Instruction:
    """Base class for CPU-side instructions."""

    thread: int


@dataclass(frozen=True)
class CpuCompute(Instruction):
    """Host-only work (data loading, Python overhead, logging)."""

    name: str = "cpu"
    duration_us: float = 1.0
    phase: str | None = None


@dataclass(frozen=True)
class LaunchKernel(Instruction):
    """A framework operator that launches one GPU kernel.

    The instruction is emitted to the trace as a ``cpu_op`` event containing
    a ``cudaLaunchKernel`` runtime event correlated with the GPU kernel.
    """

    kernel: KernelIntent = None  # type: ignore[assignment]
    op_duration_us: float = 3.0
    launch_duration_us: float = 4.0

    @property
    def duration_us(self) -> float:
        return self.op_duration_us + self.launch_duration_us


@dataclass(frozen=True)
class EventRecord(Instruction):
    """``cudaEventRecord``: mark the current tail of ``stream``."""

    stream: int = 0
    event_id: int = 0
    duration_us: float = 1.5


@dataclass(frozen=True)
class StreamWaitEvent(Instruction):
    """``cudaStreamWaitEvent``: make the next kernel on ``stream`` wait for an event."""

    stream: int = 0
    event_id: int = 0
    duration_us: float = 1.5


@dataclass(frozen=True)
class StreamSync(Instruction):
    """``cudaStreamSynchronize``: block the CPU until ``stream`` drains."""

    stream: int = 0


@dataclass(frozen=True)
class DeviceSync(Instruction):
    """``cudaDeviceSynchronize``: block the CPU until every stream drains."""


@dataclass
class RankProgram:
    """The ordered instruction stream of one rank for one iteration."""

    rank: int
    stage: int
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, instructions: list[Instruction]) -> None:
        self.instructions.extend(instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def kernels(self) -> list[KernelIntent]:
        """All kernels the program launches, in enqueue order."""
        return [i.kernel for i in self.instructions if isinstance(i, LaunchKernel)]

    def num_kernels(self) -> int:
        return sum(1 for i in self.instructions if isinstance(i, LaunchKernel))
