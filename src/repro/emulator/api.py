"""High-level emulation API.

:func:`emulate` plays the role of "run the job on the cluster and profile
it": it returns Kineto-style traces for a profiled iteration plus
independently-perturbed traces for a measured iteration, which the
evaluation compares Lumos's replay against (mirroring how the paper
validates replay against real measurements rather than against the very
iteration that was profiled).

Two workload families share this entry point: 3D-parallel **training**
iterations (the default) and LLM **serving** episodes (pass
``inference=``), which emit prefill + autoregressive-decode traces through
the same executor and trace schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.emulator.emit import tasks_to_trace
from repro.emulator.executor import ProgramExecutor
from repro.emulator.inference_builder import InferenceProgramBuilder
from repro.emulator.noise import NoiseConfig, NoiseModel
from repro.emulator.program import RankProgram
from repro.emulator.program_builder import ProgramBuilder
from repro.hardware.cluster import ClusterSpec
from repro.observability import tracing as observability
from repro.trace.kineto import DistributedInfo, TraceBundle
from repro.workload.arrivals import STREAM_METADATA_KEY
from repro.workload.inference import (
    WORKLOAD_SERVING,
    WORKLOAD_TRAINING,
    InferenceConfig,
)
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

_ITERATION_START_US = 1000.0


@dataclass
class EmulationResult:
    """Traces produced by one emulated training run or serving episode."""

    model: ModelConfig
    parallel: ParallelismConfig
    training: TrainingConfig
    cluster: ClusterSpec
    inference: InferenceConfig | None = None
    iterations: list[TraceBundle] = field(default_factory=list)

    @property
    def workload(self) -> str:
        """Which workload family produced the traces."""
        return WORKLOAD_TRAINING if self.inference is None else WORKLOAD_SERVING

    @property
    def profiled(self) -> TraceBundle:
        """The iteration handed to Lumos (what the profiler captured)."""
        return self.iterations[0]

    @property
    def measured(self) -> TraceBundle:
        """The iteration used as ground truth for validation."""
        return self.iterations[-1]

    def iteration_time(self, index: int) -> float:
        """Wall-clock time of iteration ``index`` in microseconds."""
        return self.iterations[index].iteration_time()

    def measured_iteration_time(self) -> float:
        """Ground-truth iteration time in microseconds."""
        return self.measured.iteration_time()


class ClusterEmulator:
    """Emulates a 3D-parallel training job (or serving episode) on a cluster."""

    def __init__(self, model: ModelConfig, parallel: ParallelismConfig,
                 training: TrainingConfig | None = None,
                 cluster: ClusterSpec | None = None,
                 seed: int = 0, noise: NoiseConfig | None = None,
                 inference: InferenceConfig | None = None) -> None:
        if inference is not None and training is not None:
            raise ValueError("pass either a training or an inference "
                             "configuration, not both")
        self.model = model
        self.parallel = parallel
        self.training = training or TrainingConfig()
        self.inference = inference
        self.cluster = cluster or ClusterSpec.for_world_size(parallel.world_size)
        self.noise_model = NoiseModel(seed=seed, config=noise)
        if inference is not None:
            self._builder = InferenceProgramBuilder(model, parallel, inference,
                                                    self.cluster)
        else:
            self._builder = ProgramBuilder(model, parallel, self.training, self.cluster)
        self._programs: dict[int, RankProgram] | None = None

    def programs(self) -> dict[int, RankProgram]:
        """The per-rank programs of one iteration (built lazily, cached)."""
        if self._programs is None:
            with observability.trace_span("emulate.build_programs",
                                          workload=self.workload,
                                          ranks=self.parallel.world_size):
                self._programs = self._builder.build()
        return self._programs

    @property
    def workload(self) -> str:
        """Which workload family this emulator builds."""
        return WORKLOAD_TRAINING if self.inference is None else WORKLOAD_SERVING

    def run(self, iterations: int = 2) -> EmulationResult:
        """Emulate ``iterations`` training iterations and return their traces."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        programs = self.programs()
        result = EmulationResult(model=self.model, parallel=self.parallel,
                                 training=self.training, cluster=self.cluster,
                                 inference=self.inference)
        for iteration in range(iterations):
            result.iterations.append(self._run_iteration(programs, iteration))
        return result

    def _run_iteration(self, programs: dict[int, RankProgram], iteration: int) -> TraceBundle:
        noise_streams = {
            rank: self.noise_model.rank_stream(iteration, rank) for rank in programs
        }
        executor = ProgramExecutor(noise_streams=noise_streams)
        with observability.trace_span("emulate.iteration", iteration=iteration):
            executed = executor.execute(programs, start_time=_ITERATION_START_US)
        metadata = {
            "model": self.model.name,
            "parallelism": self.parallel.label(),
            "iteration": iteration,
        }
        if self.inference is not None:
            metadata["workload"] = WORKLOAD_SERVING
            metadata["inference"] = self.inference.to_json()
            stream_plan = getattr(self._builder, "stream_plan", None)
            if stream_plan is not None:
                metadata[STREAM_METADATA_KEY] = stream_plan.to_json()
        else:
            metadata["num_microbatches"] = self.training.num_microbatches
        bundle = TraceBundle(metadata=metadata)
        for rank, tasks in executed.items():
            distributed = DistributedInfo(
                rank=rank, world_size=self.parallel.world_size,
                tensor_parallel=self.parallel.tp, pipeline_parallel=self.parallel.pp,
                data_parallel=self.parallel.dp,
            )
            bundle.add(tasks_to_trace(rank, tasks, iteration, distributed))
        return bundle


def emulate(model: ModelConfig, parallel: ParallelismConfig,
            training: TrainingConfig | None = None, cluster: ClusterSpec | None = None,
            iterations: int = 2, seed: int = 0,
            noise: NoiseConfig | None = None,
            inference: InferenceConfig | None = None) -> EmulationResult:
    """Emulate a training job (or, with ``inference=``, a serving episode)."""
    emulator = ClusterEmulator(model=model, parallel=parallel, training=training,
                               cluster=cluster, seed=seed, noise=noise,
                               inference=inference)
    return emulator.run(iterations=iterations)
