"""Builds per-rank serving programs from an inference workload description.

The builder expands a (model, parallelism, inference) configuration into
the instruction stream of one *serving episode* on one representative rank
(tensor-parallel peers execute mirrored work whose cost is captured
through communicator group sizes; data-parallel replicas serve independent
request batches and never communicate):

* a **prefill** phase runs the whole prompt batch through every layer —
  the same large compute kernels as a training forward pass — and samples
  the first token;
* ``decode_length`` **decode steps** each run one token per request
  through every layer: skinny GEMMs, a memory-bound KV-cache attention
  sweep, and (under TP) a per-step all-reduce after the attention and MLP
  blocks, fenced against compute exactly like training TP collectives.

The emulated serving loop launches ahead, async-engine style: sampled
tokens stay on-device and feed the next step through compute-stream
ordering, and the host only blocks on a final device synchronisation
before detokenising the responses.  (Mid-episode ``cudaStreamSynchronize``
calls would also break the replay engine's full-drain synchronisation
invariant — a blocking sync must be the last consumer of its streams.)
Everything runs on the main thread (no autograd thread, no pipeline
streams), so the emitted graphs keep the per-processor dependency chains
that make the batched simulation kernel's fast path provable.
"""

from __future__ import annotations

from repro.emulator.program import (
    CpuCompute,
    DeviceSync,
    RankProgram,
    Threads,
)
from repro.emulator.program_builder import (
    _DATA_LOADER_US,
    _ITERATION_END_US,
    ProgramEmitter,
    _RankContext,
)
from repro.hardware.cluster import ClusterSpec
from repro.kernels.registry import KernelCostModel
from repro.observability import tracing as observability
from repro.workload.arrivals import RequestSchedule, StreamPlan
from repro.workload.inference import (
    InferenceConfig,
    decode_embedding_ops,
    decode_head_ops,
    decode_layer_ops,
    prefill_embedding_ops,
    prefill_head_ops,
    prefill_layer_ops,
    stream_decode_embedding_ops,
    stream_decode_head_ops,
    stream_decode_layer_ops,
    stream_prefill_embedding_ops,
    stream_prefill_head_ops,
    stream_prefill_layer_ops,
    validate_tp_for_model,
)
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig

_TOKENIZE_US = 350.0
_TOKENIZE_PER_REQUEST_US = 45.0
_PREFILL_PYTHON_US = 80.0
_DECODE_PYTHON_US = 45.0


class ContinuousBatchingPlanner:
    """Deterministic FCFS continuous-batching scheduler.

    Plays the engine's admission policy forward over the (seeded,
    deterministic) arrival schedule using the analytical kernel cost
    model as the clock:

    * whenever at least one request has arrived and the decode batch has
      a free slot, the earliest arrivals are admitted (up to
      ``batch_size``) as one *prefill chunk*;
    * otherwise, if any request is in flight, one decode step runs with
      the current batch (each request at its own KV context length);
    * otherwise the host idles until the next arrival (a ``wait`` item).

    A request leaves the batch at its decode horizon
    (``decode_length`` steps after its prefill).  The output
    :class:`StreamPlan` fixes the program structure; the simulated
    timings later come from replay/calibration, so the cost model here
    only decides *scheduling order*, never the reported latencies.
    """

    def __init__(self, model: ModelConfig, parallel: ParallelismConfig,
                 config: InferenceConfig, cost: KernelCostModel,
                 groups) -> None:
        if config.arrival is None:
            raise ValueError("continuous batching needs an arrival process "
                             "(InferenceConfig.arrival)")
        self.model = model
        self.parallel = parallel
        self.config = config
        self.cost = cost
        self._tp_ranks = groups.tp_group(0).ranks

    def _op_us(self, op) -> float:
        if op.is_communication:
            return self.cost.duration_us(op, dtype_bytes=self.config.dtype_bytes,
                                         group_ranks=self._tp_ranks)
        return self.cost.duration_us(op, dtype_bytes=self.config.dtype_bytes)

    def _ops_us(self, ops) -> float:
        return sum(self._op_us(op) + InferenceProgramBuilder.launch_call_us
                   for op in ops)

    def _prefill_us(self, batch: int) -> float:
        total = _TOKENIZE_PER_REQUEST_US * batch + _PREFILL_PYTHON_US
        total += self._ops_us(stream_prefill_embedding_ops(
            self.model, self.parallel, self.config, batch))
        total += self.model.n_layers * self._ops_us(stream_prefill_layer_ops(
            self.model, self.parallel, self.config, batch))
        total += self._ops_us(stream_prefill_head_ops(
            self.model, self.parallel, self.config, batch))
        return total

    def _decode_us(self, contexts: tuple[int, ...]) -> float:
        total = _DECODE_PYTHON_US
        total += self._ops_us(stream_decode_embedding_ops(
            self.model, self.parallel, self.config, contexts))
        total += self.model.n_layers * self._ops_us(stream_decode_layer_ops(
            self.model, self.parallel, self.config, contexts))
        total += self._ops_us(stream_decode_head_ops(
            self.model, self.parallel, self.config, contexts))
        return total

    def plan(self) -> StreamPlan:
        config = self.config
        arrivals = config.arrival.arrival_times_us()
        cap = config.batch_size
        n = len(arrivals)
        pending = list(range(n))  # arrivals are non-decreasing, so FCFS order
        active: dict[int, int] = {}  # request -> decode steps completed
        first_step: dict[int, int] = {}
        last_step: dict[int, int] = {}
        chunk_of: dict[int, int] = {}
        chunks: list[tuple[int, ...]] = []
        steps: list[tuple[int, ...]] = []
        items: list[tuple[str, int]] = []
        waits: list[float] = []
        clock = 0.0
        max_queue = 0

        while pending or active:
            arrived = [r for r in pending if arrivals[r] <= clock]
            max_queue = max(max_queue, len(arrived))
            free = cap - len(active)
            if arrived and free > 0:
                admitted = arrived[:free]
                for request in admitted:
                    pending.remove(request)
                    chunk_of[request] = len(chunks)
                    first_step[request] = len(steps)
                    active[request] = 0
                items.append(("prefill", len(chunks)))
                chunks.append(tuple(admitted))
                clock += self._prefill_us(len(admitted))
                continue
            if not active:
                next_arrival = min(arrivals[r] for r in pending)
                wait = next_arrival - clock
                if wait > 0:
                    items.append(("wait", len(waits)))
                    waits.append(wait)
                clock = next_arrival
                continue
            step = len(steps)
            participants = tuple(sorted(active))
            contexts = tuple(config.prompt_length + (step - first_step[r])
                             for r in participants)
            items.append(("decode", step))
            steps.append(participants)
            clock += self._decode_us(contexts)
            for request in participants:
                active[request] += 1
                if active[request] >= config.decode_length:
                    last_step[request] = step
                    del active[request]

        requests = tuple(
            RequestSchedule(request=r, arrival_us=arrivals[r],
                            prefill_chunk=chunk_of[r], first_step=first_step[r],
                            last_step=last_step[r])
            for r in range(n))
        return StreamPlan(arrival=config.arrival, requests=requests,
                          chunk_requests=tuple(chunks), step_requests=tuple(steps),
                          items=tuple(items), waits_us=tuple(waits),
                          max_queue_depth=max_queue)


class InferenceProgramBuilder(ProgramEmitter):
    """Expands an inference workload configuration into per-rank programs."""

    # Decode is launch-bound, so the wrapper-op / runtime-call split must
    # survive the graph builder's wrapper-dropping (see ProgramEmitter):
    # fold the whole launch cost into the runtime call.
    launch_op_us = 0.0
    launch_call_us = ProgramEmitter.launch_op_us + ProgramEmitter.launch_call_us

    def __init__(self, model: ModelConfig, parallel: ParallelismConfig,
                 inference: InferenceConfig, cluster: ClusterSpec | None = None,
                 cost_model: KernelCostModel | None = None) -> None:
        parallel.validate_for_inference()
        validate_tp_for_model(model, parallel.tp)
        if cluster is None:
            cluster = ClusterSpec.for_world_size(parallel.world_size)
        if parallel.world_size > cluster.num_gpus:
            raise ValueError(
                f"configuration {parallel.label()} needs {parallel.world_size} GPUs "
                f"but the cluster has {cluster.num_gpus}"
            )
        self.model = model
        self.parallel = parallel
        self.inference = inference
        self.cluster = cluster
        self.cost = cost_model or KernelCostModel(cluster)
        self.groups = parallel.groups()
        #: The continuous-batching schedule (None for fixed episodes).  The
        #: emulator serialises it into trace metadata so replayed graphs can
        #: be scored with per-request serving metrics.
        self.stream_plan: StreamPlan | None = None
        if inference.arrival is not None:
            planner = ContinuousBatchingPlanner(model, parallel, inference,
                                                self.cost, self.groups)
            self.stream_plan = planner.plan()
            plan = self.stream_plan
            observability.gauge("serving.requests", plan.num_requests)
            observability.gauge("serving.prefill_chunks", plan.num_chunks)
            observability.gauge("serving.decode_steps", plan.num_steps)
            observability.gauge("serving.max_queue_depth", plan.max_queue_depth)
            observability.gauge("serving.max_step_batch", plan.max_step_batch)

    @property
    def dtype_bytes(self) -> int:
        return self.inference.dtype_bytes

    # -- public API -----------------------------------------------------------

    def build(self) -> dict[int, RankProgram]:
        """Build the program of the one representative serving rank."""
        return {0: self._build_rank(0)}

    # -- per-rank construction ------------------------------------------------

    def _build_rank(self, rank: int) -> RankProgram:
        if self.stream_plan is not None:
            return self._build_stream_rank(rank, self.stream_plan)
        context = _RankContext(rank=rank, stage=0,
                               program=RankProgram(rank=rank, stage=0))
        program = context.program
        program.append(CpuCompute(thread=Threads.MAIN, name="request_batch_next",
                                  duration_us=_DATA_LOADER_US, phase="other"))
        program.append(CpuCompute(thread=Threads.MAIN, name="tokenize_prompts",
                                  duration_us=_TOKENIZE_US, phase="other"))
        self._emit_prefill(context)
        for step in range(self.inference.decode_length):
            self._emit_decode_step(context, step)
        program.append(DeviceSync(thread=Threads.MAIN))
        program.append(CpuCompute(thread=Threads.MAIN, name="detokenize_responses",
                                  duration_us=_ITERATION_END_US, phase="other"))
        return program

    def _emit_prefill(self, context: _RankContext) -> None:
        program = context.program
        program.append(CpuCompute(thread=Threads.MAIN, name="python_prefill_step",
                                  duration_us=_PREFILL_PYTHON_US, phase="prefill"))
        for op in prefill_embedding_ops(self.model, self.parallel, self.inference):
            self._launch_compute(context, op, layer=None, microbatch=0,
                                 thread=Threads.MAIN)
        for layer in range(self.model.n_layers):
            for op in prefill_layer_ops(self.model, self.parallel, self.inference):
                self._launch_op(context, op, layer=layer, microbatch=0,
                                thread=Threads.MAIN)
        for op in prefill_head_ops(self.model, self.parallel, self.inference):
            self._launch_op(context, op, layer=None, microbatch=0,
                            thread=Threads.MAIN)

    def _emit_decode_step(self, context: _RankContext, step: int) -> None:
        """One autoregressive step; ``microbatch`` carries the step index."""
        program = context.program
        program.append(CpuCompute(thread=Threads.MAIN, name="python_decode_step",
                                  duration_us=_DECODE_PYTHON_US, phase="decode"))
        for op in decode_embedding_ops(self.model, self.parallel, self.inference, step):
            self._launch_compute(context, op, layer=None, microbatch=step,
                                 thread=Threads.MAIN)
        for layer in range(self.model.n_layers):
            for op in decode_layer_ops(self.model, self.parallel, self.inference, step):
                self._launch_op(context, op, layer=layer, microbatch=step,
                                thread=Threads.MAIN)
        for op in decode_head_ops(self.model, self.parallel, self.inference, step):
            self._launch_op(context, op, layer=None, microbatch=step,
                            thread=Threads.MAIN)

    # -- continuous-batching stream construction -------------------------------
    # Prefill chunks carry their chunk index in ``microbatch`` and decode
    # steps their global step index (phase disambiguates, exactly like the
    # fixed episode).  The structure keeps the batched-kernel fast path
    # provable: all kernels chain on the compute stream, TP collectives
    # stay event-fenced, waits are plain host compute, and the only
    # blocking sync is the final full drain.

    def _build_stream_rank(self, rank: int, plan: StreamPlan) -> RankProgram:
        context = _RankContext(rank=rank, stage=0,
                               program=RankProgram(rank=rank, stage=0))
        program = context.program
        program.append(CpuCompute(thread=Threads.MAIN, name="request_batch_next",
                                  duration_us=_DATA_LOADER_US, phase="other"))
        for kind, index in plan.items:
            if kind == "wait":
                program.append(CpuCompute(thread=Threads.MAIN, name="await_requests",
                                          duration_us=plan.waits_us[index],
                                          phase="other"))
            elif kind == "prefill":
                self._emit_stream_prefill(context, plan, index)
            else:
                self._emit_stream_decode(context, plan, index)
        program.append(DeviceSync(thread=Threads.MAIN))
        program.append(CpuCompute(thread=Threads.MAIN, name="detokenize_responses",
                                  duration_us=_ITERATION_END_US, phase="other"))
        return program

    def _emit_stream_prefill(self, context: _RankContext, plan: StreamPlan,
                             chunk: int) -> None:
        program = context.program
        batch = len(plan.chunk_requests[chunk])
        program.append(CpuCompute(thread=Threads.MAIN, name="tokenize_prompts",
                                  duration_us=_TOKENIZE_PER_REQUEST_US * batch,
                                  phase="other"))
        program.append(CpuCompute(thread=Threads.MAIN, name="python_prefill_step",
                                  duration_us=_PREFILL_PYTHON_US, phase="prefill"))
        for op in stream_prefill_embedding_ops(self.model, self.parallel,
                                               self.inference, batch):
            self._launch_compute(context, op, layer=None, microbatch=chunk,
                                 thread=Threads.MAIN)
        for layer in range(self.model.n_layers):
            for op in stream_prefill_layer_ops(self.model, self.parallel,
                                               self.inference, batch):
                self._launch_op(context, op, layer=layer, microbatch=chunk,
                                thread=Threads.MAIN)
        for op in stream_prefill_head_ops(self.model, self.parallel,
                                          self.inference, batch):
            self._launch_op(context, op, layer=None, microbatch=chunk,
                            thread=Threads.MAIN)

    def _emit_stream_decode(self, context: _RankContext, plan: StreamPlan,
                            step: int) -> None:
        program = context.program
        contexts = plan.step_contexts(self.inference.prompt_length, step)
        program.append(CpuCompute(thread=Threads.MAIN, name="python_decode_step",
                                  duration_us=_DECODE_PYTHON_US, phase="decode"))
        for op in stream_decode_embedding_ops(self.model, self.parallel,
                                              self.inference, contexts):
            self._launch_compute(context, op, layer=None, microbatch=step,
                                 thread=Threads.MAIN)
        for layer in range(self.model.n_layers):
            for op in stream_decode_layer_ops(self.model, self.parallel,
                                              self.inference, contexts):
                self._launch_op(context, op, layer=layer, microbatch=step,
                                thread=Threads.MAIN)
        for op in stream_decode_head_ops(self.model, self.parallel,
                                         self.inference, contexts):
            self._launch_op(context, op, layer=None, microbatch=step,
                            thread=Threads.MAIN)
