"""Builds per-rank serving programs from an inference workload description.

The builder expands a (model, parallelism, inference) configuration into
the instruction stream of one *serving episode* on one representative rank
(tensor-parallel peers execute mirrored work whose cost is captured
through communicator group sizes; data-parallel replicas serve independent
request batches and never communicate):

* a **prefill** phase runs the whole prompt batch through every layer —
  the same large compute kernels as a training forward pass — and samples
  the first token;
* ``decode_length`` **decode steps** each run one token per request
  through every layer: skinny GEMMs, a memory-bound KV-cache attention
  sweep, and (under TP) a per-step all-reduce after the attention and MLP
  blocks, fenced against compute exactly like training TP collectives.

The emulated serving loop launches ahead, async-engine style: sampled
tokens stay on-device and feed the next step through compute-stream
ordering, and the host only blocks on a final device synchronisation
before detokenising the responses.  (Mid-episode ``cudaStreamSynchronize``
calls would also break the replay engine's full-drain synchronisation
invariant — a blocking sync must be the last consumer of its streams.)
Everything runs on the main thread (no autograd thread, no pipeline
streams), so the emitted graphs keep the per-processor dependency chains
that make the batched simulation kernel's fast path provable.
"""

from __future__ import annotations

from repro.emulator.program import (
    CpuCompute,
    DeviceSync,
    RankProgram,
    Threads,
)
from repro.emulator.program_builder import (
    _DATA_LOADER_US,
    _ITERATION_END_US,
    ProgramEmitter,
    _RankContext,
)
from repro.hardware.cluster import ClusterSpec
from repro.kernels.registry import KernelCostModel
from repro.workload.inference import (
    InferenceConfig,
    decode_embedding_ops,
    decode_head_ops,
    decode_layer_ops,
    prefill_embedding_ops,
    prefill_head_ops,
    prefill_layer_ops,
    validate_tp_for_model,
)
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig

_TOKENIZE_US = 350.0
_PREFILL_PYTHON_US = 80.0
_DECODE_PYTHON_US = 45.0


class InferenceProgramBuilder(ProgramEmitter):
    """Expands an inference workload configuration into per-rank programs."""

    # Decode is launch-bound, so the wrapper-op / runtime-call split must
    # survive the graph builder's wrapper-dropping (see ProgramEmitter):
    # fold the whole launch cost into the runtime call.
    launch_op_us = 0.0
    launch_call_us = ProgramEmitter.launch_op_us + ProgramEmitter.launch_call_us

    def __init__(self, model: ModelConfig, parallel: ParallelismConfig,
                 inference: InferenceConfig, cluster: ClusterSpec | None = None,
                 cost_model: KernelCostModel | None = None) -> None:
        parallel.validate_for_inference()
        validate_tp_for_model(model, parallel.tp)
        if cluster is None:
            cluster = ClusterSpec.for_world_size(parallel.world_size)
        if parallel.world_size > cluster.num_gpus:
            raise ValueError(
                f"configuration {parallel.label()} needs {parallel.world_size} GPUs "
                f"but the cluster has {cluster.num_gpus}"
            )
        self.model = model
        self.parallel = parallel
        self.inference = inference
        self.cluster = cluster
        self.cost = cost_model or KernelCostModel(cluster)
        self.groups = parallel.groups()

    @property
    def dtype_bytes(self) -> int:
        return self.inference.dtype_bytes

    # -- public API -----------------------------------------------------------

    def build(self) -> dict[int, RankProgram]:
        """Build the program of the one representative serving rank."""
        return {0: self._build_rank(0)}

    # -- per-rank construction ------------------------------------------------

    def _build_rank(self, rank: int) -> RankProgram:
        context = _RankContext(rank=rank, stage=0,
                               program=RankProgram(rank=rank, stage=0))
        program = context.program
        program.append(CpuCompute(thread=Threads.MAIN, name="request_batch_next",
                                  duration_us=_DATA_LOADER_US, phase="other"))
        program.append(CpuCompute(thread=Threads.MAIN, name="tokenize_prompts",
                                  duration_us=_TOKENIZE_US, phase="other"))
        self._emit_prefill(context)
        for step in range(self.inference.decode_length):
            self._emit_decode_step(context, step)
        program.append(DeviceSync(thread=Threads.MAIN))
        program.append(CpuCompute(thread=Threads.MAIN, name="detokenize_responses",
                                  duration_us=_ITERATION_END_US, phase="other"))
        return program

    def _emit_prefill(self, context: _RankContext) -> None:
        program = context.program
        program.append(CpuCompute(thread=Threads.MAIN, name="python_prefill_step",
                                  duration_us=_PREFILL_PYTHON_US, phase="prefill"))
        for op in prefill_embedding_ops(self.model, self.parallel, self.inference):
            self._launch_compute(context, op, layer=None, microbatch=0,
                                 thread=Threads.MAIN)
        for layer in range(self.model.n_layers):
            for op in prefill_layer_ops(self.model, self.parallel, self.inference):
                self._launch_op(context, op, layer=layer, microbatch=0,
                                thread=Threads.MAIN)
        for op in prefill_head_ops(self.model, self.parallel, self.inference):
            self._launch_op(context, op, layer=None, microbatch=0,
                            thread=Threads.MAIN)

    def _emit_decode_step(self, context: _RankContext, step: int) -> None:
        """One autoregressive step; ``microbatch`` carries the step index."""
        program = context.program
        program.append(CpuCompute(thread=Threads.MAIN, name="python_decode_step",
                                  duration_us=_DECODE_PYTHON_US, phase="decode"))
        for op in decode_embedding_ops(self.model, self.parallel, self.inference, step):
            self._launch_compute(context, op, layer=None, microbatch=step,
                                 thread=Threads.MAIN)
        for layer in range(self.model.n_layers):
            for op in decode_layer_ops(self.model, self.parallel, self.inference, step):
                self._launch_op(context, op, layer=layer, microbatch=step,
                                thread=Threads.MAIN)
        for op in decode_head_ops(self.model, self.parallel, self.inference, step):
            self._launch_op(context, op, layer=None, microbatch=step,
                            thread=Threads.MAIN)
