"""Executes per-rank programs and produces concrete task timings.

The executor turns instruction streams into a global task graph and runs a
deterministic list-scheduling pass over it:

* CPU instructions of one rank execute sequentially (one host sequencer per
  rank, as in an eager-mode training loop);
* GPU kernels execute in enqueue order on their stream;
* ``cudaStreamWaitEvent`` constraints delay the next kernel enqueued on the
  waiting stream until the recorded point on the producing stream;
* ``cudaStreamSynchronize`` / ``cudaDeviceSynchronize`` block the CPU until
  the relevant streams drain;
* point-to-point kernels that share a ``comm_key`` (pipeline send/recv
  pairs) start together once both sides are ready and take the same time.

This is the emulator's own engine; the Lumos replay simulator in
:mod:`repro.core.simulator` is an independent implementation that works
from trace-derived dependencies instead of program intent.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.emulator.noise import RankNoise, ZeroNoise
from repro.emulator.program import (
    CpuCompute,
    DeviceSync,
    EventRecord,
    Instruction,
    KernelIntent,
    LaunchKernel,
    RankProgram,
    StreamSync,
    StreamWaitEvent,
)

_SYNC_CALL_US = 3.0


@dataclass
class ExecutedTask:
    """One executed CPU instruction or GPU kernel with concrete timing."""

    uid: int
    rank: int
    kind: str  # "cpu" or "kernel"
    name: str
    start: float
    duration: float
    thread: int
    stream: int | None = None
    correlation: int | None = None
    instruction: Instruction | None = None
    kernel: KernelIntent | None = None
    called_at: float | None = None  # for blocking syncs: when the CPU invoked the call

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class _Node:
    uid: int
    rank: int
    kind: str
    name: str
    duration: float
    thread: int
    stream: int | None = None
    correlation: int | None = None
    instruction: Instruction | None = None
    kernel: KernelIntent | None = None
    comm_key: str | None = None
    cpu_prev: int | None = None
    deps: list[int] = field(default_factory=list)


class ProgramExecutor:
    """Executes a set of per-rank programs into concrete task timings."""

    def __init__(self, noise_streams: dict[int, RankNoise] | None = None) -> None:
        self._noise_streams = noise_streams or {}

    def _noise(self, rank: int) -> RankNoise:
        return self._noise_streams.get(rank) or ZeroNoise()

    # -- graph construction -----------------------------------------------------

    def _build_nodes(self, programs: dict[int, RankProgram]) -> list[_Node]:
        nodes: list[_Node] = []
        for rank in sorted(programs):
            program = programs[rank]
            noise = self._noise(rank)
            cpu_prev: int | None = None
            stream_last: dict[int, int] = {}
            pending_waits: dict[int, list[int]] = defaultdict(list)
            events: dict[int, int | None] = {}
            correlation = 0

            def add(node: _Node) -> int:
                node.uid = len(nodes)
                nodes.append(node)
                return node.uid

            for instruction in program.instructions:
                if isinstance(instruction, CpuCompute):
                    uid = add(_Node(uid=-1, rank=rank, kind="cpu", name=instruction.name,
                                    duration=instruction.duration_us * noise.cpu_factor(),
                                    thread=instruction.thread, instruction=instruction,
                                    deps=[cpu_prev] if cpu_prev is not None else []))
                    cpu_prev = uid
                elif isinstance(instruction, LaunchKernel):
                    correlation += 1
                    op_name = instruction.kernel.op_name or instruction.kernel.name
                    launch_uid = add(_Node(uid=-1, rank=rank, kind="cpu",
                                           name=f"aten::{op_name}",
                                           duration=instruction.duration_us * noise.cpu_factor(),
                                           thread=instruction.thread, instruction=instruction,
                                           correlation=correlation,
                                           deps=[cpu_prev] if cpu_prev is not None else []))
                    cpu_prev = launch_uid
                    intent = instruction.kernel
                    is_comm = intent.collective is not None
                    kernel_deps = [launch_uid]
                    if intent.stream in stream_last:
                        kernel_deps.append(stream_last[intent.stream])
                    if pending_waits[intent.stream]:
                        kernel_deps.extend(pending_waits[intent.stream])
                        pending_waits[intent.stream] = []
                    kernel_uid = add(_Node(uid=-1, rank=rank, kind="kernel", name=intent.name,
                                           duration=(intent.duration_us
                                                     * noise.kernel_factor(is_comm)),
                                           thread=instruction.thread, stream=intent.stream,
                                           correlation=correlation, kernel=intent,
                                           comm_key=intent.comm_key, deps=kernel_deps))
                    stream_last[intent.stream] = kernel_uid
                elif isinstance(instruction, EventRecord):
                    uid = add(_Node(uid=-1, rank=rank, kind="cpu", name="cudaEventRecord",
                                    duration=instruction.duration_us * noise.cpu_factor(),
                                    thread=instruction.thread, instruction=instruction,
                                    deps=[cpu_prev] if cpu_prev is not None else []))
                    cpu_prev = uid
                    events[instruction.event_id] = stream_last.get(instruction.stream)
                elif isinstance(instruction, StreamWaitEvent):
                    uid = add(_Node(uid=-1, rank=rank, kind="cpu", name="cudaStreamWaitEvent",
                                    duration=instruction.duration_us * noise.cpu_factor(),
                                    thread=instruction.thread, instruction=instruction,
                                    deps=[cpu_prev] if cpu_prev is not None else []))
                    cpu_prev = uid
                    marker = events.get(instruction.event_id)
                    if marker is not None:
                        pending_waits[instruction.stream].append(marker)
                elif isinstance(instruction, StreamSync):
                    deps = [cpu_prev] if cpu_prev is not None else []
                    if instruction.stream in stream_last:
                        deps.append(stream_last[instruction.stream])
                    uid = add(_Node(uid=-1, rank=rank, kind="cpu", name="cudaStreamSynchronize",
                                    duration=_SYNC_CALL_US, thread=instruction.thread,
                                    instruction=instruction, cpu_prev=cpu_prev, deps=deps))
                    cpu_prev = uid
                elif isinstance(instruction, DeviceSync):
                    deps = [cpu_prev] if cpu_prev is not None else []
                    deps.extend(stream_last.values())
                    uid = add(_Node(uid=-1, rank=rank, kind="cpu", name="cudaDeviceSynchronize",
                                    duration=_SYNC_CALL_US, thread=instruction.thread,
                                    instruction=instruction, cpu_prev=cpu_prev, deps=deps))
                    cpu_prev = uid
                else:
                    raise TypeError(f"unknown instruction type {type(instruction)!r}")
        return nodes

    # -- scheduling ---------------------------------------------------------------

    def execute(self, programs: dict[int, RankProgram],
                start_time: float = 0.0) -> dict[int, list[ExecutedTask]]:
        """Execute all programs and return per-rank executed tasks in creation order."""
        nodes = self._build_nodes(programs)
        n = len(nodes)
        successors: list[list[int]] = [[] for _ in range(n)]
        indegree = [0] * n
        for node in nodes:
            indegree[node.uid] = len(node.deps)
            for dep in node.deps:
                successors[dep].append(node.uid)

        rank_start: dict[int, float] = {}
        for rank in programs:
            rank_start[rank] = start_time + self._noise(rank).start_skew_us()

        ready_time = [rank_start[node.rank] for node in nodes]
        start = [0.0] * n
        finish: list[float | None] = [None] * n

        group_members: dict[str, list[int]] = defaultdict(list)
        for node in nodes:
            if node.comm_key is not None:
                group_members[node.comm_key].append(node.uid)
        group_ready: dict[str, dict[int, float]] = defaultdict(dict)

        queue: deque[int] = deque(uid for uid in range(n) if indegree[uid] == 0)
        processed = 0

        def finalize(uid: int, at: float) -> None:
            nonlocal processed
            start[uid] = at
            finish[uid] = at + nodes[uid].duration
            processed += 1
            for successor in successors[uid]:
                ready_time[successor] = max(ready_time[successor], finish[uid])
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    queue.append(successor)

        while queue:
            uid = queue.popleft()
            node = nodes[uid]
            if node.comm_key is None:
                finalize(uid, ready_time[uid])
                continue
            group_ready[node.comm_key][uid] = ready_time[uid]
            members = group_members[node.comm_key]
            if len(group_ready[node.comm_key]) == len(members):
                common_start = max(group_ready[node.comm_key].values())
                common_duration = max(nodes[m].duration for m in members)
                for member in members:
                    nodes[member].duration = common_duration
                    finalize(member, common_start)

        if processed != n:
            unfinished = [nodes[uid].name for uid in range(n) if finish[uid] is None][:10]
            raise RuntimeError(
                f"program execution deadlocked: {n - processed} of {n} tasks unscheduled "
                f"(first unfinished: {unfinished})"
            )

        results: dict[int, list[ExecutedTask]] = {rank: [] for rank in programs}
        for node in nodes:
            called_at = None
            if node.cpu_prev is not None and finish[node.cpu_prev] is not None:
                called_at = finish[node.cpu_prev]
            results[node.rank].append(ExecutedTask(
                uid=node.uid, rank=node.rank, kind=node.kind, name=node.name,
                start=start[node.uid], duration=node.duration, thread=node.thread,
                stream=node.stream, correlation=node.correlation,
                instruction=node.instruction, kernel=node.kernel, called_at=called_at,
            ))
        return results
