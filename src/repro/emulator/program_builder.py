"""Builds per-rank training programs from a workload description.

The builder expands a (model, parallelism, training) configuration into the
per-rank instruction streams of one training iteration, following the
structure of Megatron-style 3D-parallel training:

* a 1F1B pipeline schedule decides the order of forward/backward
  micro-batches on each stage;
* compute kernels run on the default compute stream, launched from the
  main thread (forward, optimizer) or the autograd thread (backward);
* tensor-parallel all-reduces run on a dedicated communication stream,
  fenced by ``cudaEventRecord`` / ``cudaStreamWaitEvent`` pairs in both
  directions (compute produces the input, and the next compute kernel
  consumes the output);
* data-parallel gradient all-reduces are launched per bucket during the
  last micro-batch's backward pass and only fence in the
  compute→communication direction, so they overlap with the remaining
  backward compute;
* pipeline point-to-point transfers run on dedicated send/recv streams,
  matched across stages through ``comm_key``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.kernels.registry import KernelCostModel
from repro.workload.model_config import ModelConfig
from repro.workload.operators import (
    CollectiveKind,
    CollectiveSpec,
    OpClass,
    OpSpec,
    dp_gradient_buckets,
    embedding_backward_ops,
    embedding_forward_ops,
    head_backward_ops,
    head_forward_ops,
    layer_backward_ops,
    layer_forward_ops,
    optimizer_ops,
    pp_activation_bytes,
)
from repro.workload.parallelism import ParallelismConfig
from repro.workload.pipeline import one_f_one_b_schedule, stage_layers
from repro.workload.training import TrainingConfig
from repro.emulator.program import (
    CpuCompute,
    DeviceSync,
    EventRecord,
    KernelIntent,
    LaunchKernel,
    RankProgram,
    StreamSync,
    StreamWaitEvent,
    Streams,
    Threads,
)

_CPU_OP_US = 3.0
_CPU_LAUNCH_US = 4.0
_DATA_LOADER_US = 900.0
_MICROBATCH_PYTHON_US = 60.0
_OPTIMIZER_PYTHON_US = 250.0
_ITERATION_END_US = 400.0


@dataclass
class _RankContext:
    """Mutable per-rank state used while emitting instructions."""

    rank: int
    stage: int
    program: RankProgram
    next_event_id: int = 0

    def new_event(self) -> int:
        self.next_event_id += 1
        return self.next_event_id


class ProgramEmitter:
    """Shared kernel-launch emission for workload program builders.

    Subclasses (the training :class:`ProgramBuilder` and the serving
    :class:`~repro.emulator.inference_builder.InferenceProgramBuilder`)
    provide ``self.cost`` (a kernel cost model), ``self.groups``
    (communicator groups) and :attr:`dtype_bytes`; the emitter turns
    :class:`~repro.workload.operators.OpSpec` lists into launch
    instructions with the tensor-parallel fencing both workloads share.
    """

    cost: KernelCostModel
    groups: object  # CommunicatorGroups

    #: How each launch's CPU cost is split between the framework operator
    #: and the ``cudaLaunchKernel`` runtime call.  The graph builder keeps
    #: only the runtime event (dropping the wrapper op, as real Kineto
    #: consumers must to avoid double-counting), so launch-bound workloads
    #: (autoregressive decode) fold the whole cost into the runtime call
    #: to keep the trace representation lossless.
    launch_op_us = _CPU_OP_US
    launch_call_us = _CPU_LAUNCH_US

    @property
    def dtype_bytes(self) -> int:
        raise NotImplementedError

    def _launch_op(self, context: _RankContext, op: OpSpec, layer: int | None,
                   microbatch: int | None, thread: int) -> None:
        """Launch a compute or tensor-parallel communication op."""
        if op.is_communication:
            self._launch_tp_comm(context, op, layer=layer, microbatch=microbatch, thread=thread)
        else:
            self._launch_compute(context, op, layer=layer, microbatch=microbatch, thread=thread)

    def _launch_compute(self, context: _RankContext, op: OpSpec, layer: int | None,
                        microbatch: int | None, thread: int) -> None:
        duration = self.cost.duration_us(op, dtype_bytes=self.dtype_bytes)
        # Decode-attention shapes are not recoverable from the kernel name
        # (unlike GEMM m/n/k), so carry the analytical inputs on the intent
        # for trace-driven calibration.
        carry_shape = op.op_class == OpClass.DECODE_ATTENTION
        kernel = KernelIntent(
            name=self._kernel_name(op),
            stream=Streams.COMPUTE,
            duration_us=duration,
            op_class=op.op_class,
            flops=op.flops if carry_shape else 0.0,
            bytes_accessed=op.bytes_accessed if carry_shape else 0.0,
            layer=layer,
            microbatch=microbatch,
            phase=op.metadata.get("phase"),
            op_name=op.name,
        )
        context.program.append(LaunchKernel(thread=thread, kernel=kernel,
                                            op_duration_us=self.launch_op_us,
                                            launch_duration_us=self.launch_call_us))

    def _launch_tp_comm(self, context: _RankContext, op: OpSpec, layer: int | None,
                        microbatch: int | None, thread: int) -> None:
        """Tensor-parallel collective: fenced against compute in both directions."""
        assert op.collective is not None
        group_ranks = self.groups.tp_group(context.rank).ranks
        duration = self.cost.duration_us(op, dtype_bytes=self.dtype_bytes,
                                         group_ranks=group_ranks)
        kernel = KernelIntent(
            name=self._kernel_name(op),
            stream=Streams.TP_COMM,
            duration_us=duration,
            op_class=OpClass.COMM,
            collective=op.collective.kind,
            group="tp",
            group_ranks=group_ranks,
            size_bytes=op.collective.size_bytes,
            layer=layer,
            microbatch=microbatch,
            phase=op.metadata.get("phase"),
            op_name=op.name,
        )
        program = context.program
        produce = context.new_event()
        program.append(EventRecord(thread=thread, stream=Streams.COMPUTE, event_id=produce))
        program.append(StreamWaitEvent(thread=thread, stream=Streams.TP_COMM, event_id=produce))
        program.append(LaunchKernel(thread=thread, kernel=kernel,
                                    op_duration_us=self.launch_op_us,
                                    launch_duration_us=self.launch_call_us))
        consume = context.new_event()
        program.append(EventRecord(thread=thread, stream=Streams.TP_COMM, event_id=consume))
        program.append(StreamWaitEvent(thread=thread, stream=Streams.COMPUTE, event_id=consume))

    def _kernel_name(self, op: OpSpec) -> str:
        if op.is_communication:
            assert op.collective is not None
            return (f"ncclDevKernel_{op.collective.kind.title().replace('_', '')}"
                    f"_Sum_bf16_RING({op.collective.group}:{op.name})")
        if op.op_class == OpClass.GEMM:
            return f"sm90_xmma_gemm_bf16_{op.name}_m{op.m}_n{op.n}_k{op.k}"
        if op.op_class == OpClass.ATTENTION:
            return f"flash::{op.name}"
        if op.op_class == OpClass.DECODE_ATTENTION:
            return f"flash_decoding::{op.name}_ctx{op.n}"
        return f"vectorized_{op.op_class}_kernel({op.name})"


class ProgramBuilder(ProgramEmitter):
    """Expands a workload configuration into per-rank programs."""

    def __init__(self, model: ModelConfig, parallel: ParallelismConfig,
                 training: TrainingConfig, cluster: ClusterSpec | None = None,
                 cost_model: KernelCostModel | None = None) -> None:
        parallel.validate_for_model(model.n_layers)
        if cluster is None:
            cluster = ClusterSpec.for_world_size(parallel.world_size)
        if parallel.world_size > cluster.num_gpus:
            raise ValueError(
                f"configuration {parallel.label()} needs {parallel.world_size} GPUs "
                f"but the cluster has {cluster.num_gpus}"
            )
        self.model = model
        self.parallel = parallel
        self.training = training
        self.cluster = cluster
        self.cost = cost_model or KernelCostModel(cluster)
        self.groups = parallel.groups()

    @property
    def dtype_bytes(self) -> int:
        return self.training.dtype_bytes

    # -- public API -----------------------------------------------------------

    def build(self) -> dict[int, RankProgram]:
        """Build programs for one representative rank per pipeline stage."""
        programs: dict[int, RankProgram] = {}
        for stage in range(self.parallel.pp):
            rank = self.groups.rank_of(0, 0, stage)
            programs[rank] = self._build_rank(rank, stage)
        return programs

    # -- per-rank construction ------------------------------------------------

    def _build_rank(self, rank: int, stage: int) -> RankProgram:
        context = _RankContext(rank=rank, stage=stage, program=RankProgram(rank=rank, stage=stage))
        program = context.program
        pp = self.parallel.pp
        layers = stage_layers(self.model.n_layers, pp, stage)
        schedule = one_f_one_b_schedule(self.training.num_microbatches, pp, stage)

        buckets = dp_gradient_buckets(self.model, self.parallel, self.training,
                                      layers, include_embedding=(stage == 0))
        bucket_of_layer: dict[int, int] = {}
        bucket_remaining: list[set[int]] = []
        bucket_bytes: list[float] = []
        for index, (bucket_layers, size_bytes) in enumerate(buckets):
            bucket_remaining.append(set(bucket_layers))
            bucket_bytes.append(size_bytes)
            for layer in bucket_layers:
                bucket_of_layer[layer] = index

        program.append(CpuCompute(thread=Threads.MAIN, name="data_loader_next",
                                  duration_us=_DATA_LOADER_US, phase="other"))

        for action in schedule:
            if action.kind == "F":
                self._emit_forward(context, layers, action.microbatch)
            else:
                self._emit_backward(context, layers, action.microbatch,
                                    bucket_of_layer, bucket_remaining, bucket_bytes)

        self._emit_optimizer(context, layers)
        return program

    # -- forward / backward ----------------------------------------------------

    def _emit_forward(self, context: _RankContext, layers: list[int], microbatch: int) -> None:
        stage, pp = context.stage, self.parallel.pp
        program = context.program
        program.append(CpuCompute(thread=Threads.MAIN, name="python_forward_step",
                                  duration_us=_MICROBATCH_PYTHON_US, phase="forward"))

        if stage > 0:
            self._emit_p2p(context, direction="recv", stream=Streams.PP_RECV_FWD,
                           peer_stage=stage - 1, comm_key=f"act:{stage}:{microbatch}",
                           microbatch=microbatch, phase="forward", thread=Threads.MAIN)
        else:
            for op in embedding_forward_ops(self.model, self.parallel, self.training):
                self._launch_compute(context, op, layer=None, microbatch=microbatch,
                                     thread=Threads.MAIN)

        for layer in layers:
            for op in layer_forward_ops(self.model, self.parallel, self.training):
                self._launch_op(context, op, layer=layer, microbatch=microbatch,
                                thread=Threads.MAIN)

        if stage == pp - 1:
            for op in head_forward_ops(self.model, self.parallel, self.training):
                self._launch_op(context, op, layer=None, microbatch=microbatch,
                                thread=Threads.MAIN)
        else:
            self._emit_p2p(context, direction="send", stream=Streams.PP_SEND_FWD,
                           peer_stage=stage + 1, comm_key=f"act:{stage + 1}:{microbatch}",
                           microbatch=microbatch, phase="forward", thread=Threads.MAIN)

    def _emit_backward(self, context: _RankContext, layers: list[int], microbatch: int,
                       bucket_of_layer: dict[int, int], bucket_remaining: list[set[int]],
                       bucket_bytes: list[float]) -> None:
        stage, pp = context.stage, self.parallel.pp
        program = context.program
        is_last_microbatch = microbatch == self.training.num_microbatches - 1
        program.append(CpuCompute(thread=Threads.BACKWARD, name="python_backward_step",
                                  duration_us=_MICROBATCH_PYTHON_US, phase="backward"))

        if stage < pp - 1:
            self._emit_p2p(context, direction="recv", stream=Streams.PP_RECV_BWD,
                           peer_stage=stage + 1, comm_key=f"grad:{stage}:{microbatch}",
                           microbatch=microbatch, phase="backward", thread=Threads.BACKWARD)
        else:
            for op in head_backward_ops(self.model, self.parallel, self.training):
                self._launch_op(context, op, layer=None, microbatch=microbatch,
                                thread=Threads.BACKWARD)

        for layer in reversed(layers):
            for op in layer_backward_ops(self.model, self.parallel, self.training):
                self._launch_op(context, op, layer=layer, microbatch=microbatch,
                                thread=Threads.BACKWARD)
            if is_last_microbatch and self.parallel.dp > 1 and layer in bucket_of_layer:
                bucket = bucket_of_layer[layer]
                bucket_remaining[bucket].discard(layer)
                if not bucket_remaining[bucket]:
                    self._emit_dp_bucket(context, bucket, bucket_bytes[bucket],
                                         thread=Threads.BACKWARD)

        if stage == 0:
            for op in embedding_backward_ops(self.model, self.parallel, self.training):
                self._launch_compute(context, op, layer=None, microbatch=microbatch,
                                     thread=Threads.BACKWARD)
            if is_last_microbatch and self.parallel.dp > 1 and bucket_bytes:
                # The embedding bucket is the last entry when present.
                embedding_bucket = len(bucket_bytes) - 1
                if not any(bucket_remaining[embedding_bucket]):
                    self._emit_dp_bucket(context, embedding_bucket,
                                         bucket_bytes[embedding_bucket],
                                         thread=Threads.BACKWARD)
        else:
            self._emit_p2p(context, direction="send", stream=Streams.PP_SEND_BWD,
                           peer_stage=stage - 1, comm_key=f"grad:{stage - 1}:{microbatch}",
                           microbatch=microbatch, phase="backward", thread=Threads.BACKWARD)

    def _emit_optimizer(self, context: _RankContext, layers: list[int]) -> None:
        program = context.program
        stage = context.stage
        program.append(CpuCompute(thread=Threads.MAIN, name="optimizer_prep",
                                  duration_us=_OPTIMIZER_PYTHON_US, phase="optimizer"))
        if self.parallel.dp > 1:
            program.append(StreamSync(thread=Threads.MAIN, stream=Streams.DP_COMM))
        for op in optimizer_ops(self.model, self.parallel, self.training,
                                n_stage_layers=len(layers), include_embedding=(stage == 0)):
            self._launch_compute(context, op, layer=None, microbatch=None,
                                 thread=Threads.MAIN)
        program.append(DeviceSync(thread=Threads.MAIN))
        program.append(CpuCompute(thread=Threads.MAIN, name="iteration_end_logging",
                                  duration_us=_ITERATION_END_US, phase="other"))

    # -- instruction helpers ---------------------------------------------------
    # (_launch_op / _launch_compute / _launch_tp_comm come from ProgramEmitter)

    def _emit_dp_bucket(self, context: _RankContext, bucket_index: int, size_bytes: float,
                        thread: int) -> None:
        """Data-parallel gradient bucket all-reduce, overlapped with backward."""
        group_ranks = self.groups.dp_group(context.rank).ranks
        op = OpSpec(
            name=f"dp_grad_bucket_{bucket_index}",
            op_class=OpClass.COMM,
            collective=CollectiveSpec(kind=CollectiveKind.ALL_REDUCE,
                                      size_bytes=size_bytes, group="dp"),
            stream_role="dp_comm",
        )
        duration = self.cost.duration_us(op, dtype_bytes=self.training.dtype_bytes,
                                         group_ranks=group_ranks)
        kernel = KernelIntent(
            name=f"ncclDevKernel_AllReduce_Sum_bf16_RING(dp_bucket_{bucket_index})",
            stream=Streams.DP_COMM,
            duration_us=duration,
            op_class=OpClass.COMM,
            collective=CollectiveKind.ALL_REDUCE,
            group="dp",
            group_ranks=group_ranks,
            size_bytes=size_bytes,
            phase="backward",
            op_name=op.name,
        )
        program = context.program
        produce = context.new_event()
        program.append(EventRecord(thread=thread, stream=Streams.COMPUTE, event_id=produce))
        program.append(StreamWaitEvent(thread=thread, stream=Streams.DP_COMM, event_id=produce))
        program.append(LaunchKernel(thread=thread, kernel=kernel,
                                    op_duration_us=_CPU_OP_US,
                                    launch_duration_us=_CPU_LAUNCH_US))

    def _emit_p2p(self, context: _RankContext, direction: str, stream: int, peer_stage: int,
                  comm_key: str, microbatch: int, phase: str, thread: int) -> None:
        """Pipeline-parallel activation/gradient transfer."""
        rank = context.rank
        peer = self.groups.rank_of(0, 0, peer_stage)
        size_bytes = pp_activation_bytes(self.model, self.training)
        kind = CollectiveKind.SEND if direction == "send" else CollectiveKind.RECV
        op = OpSpec(
            name=f"pp_{direction}",
            op_class=OpClass.COMM,
            collective=CollectiveSpec(kind=kind, size_bytes=size_bytes, group="pp"),
            stream_role="pp_comm",
        )
        pair = (rank, peer) if direction == "send" else (peer, rank)
        duration = self.cost.duration_us(op, dtype_bytes=self.training.dtype_bytes,
                                         group_ranks=pair)
        kernel = KernelIntent(
            name=f"ncclDevKernel_SendRecv({direction})",
            stream=stream,
            duration_us=duration,
            op_class=OpClass.COMM,
            collective=kind,
            group="pp",
            group_ranks=pair,
            comm_key=comm_key,
            size_bytes=size_bytes,
            microbatch=microbatch,
            phase=phase,
            op_name=op.name,
        )
        program = context.program
        if direction == "send":
            # The transfer consumes data produced on the compute stream.
            produce = context.new_event()
            program.append(EventRecord(thread=thread, stream=Streams.COMPUTE, event_id=produce))
            program.append(StreamWaitEvent(thread=thread, stream=stream, event_id=produce))
            program.append(LaunchKernel(thread=thread, kernel=kernel,
                                        op_duration_us=_CPU_OP_US,
                                        launch_duration_us=_CPU_LAUNCH_US))
        else:
            # Subsequent compute consumes the received tensor.
            program.append(LaunchKernel(thread=thread, kernel=kernel,
                                        op_duration_us=_CPU_OP_US,
                                        launch_duration_us=_CPU_LAUNCH_US))
            consume = context.new_event()
            program.append(EventRecord(thread=thread, stream=stream, event_id=consume))
            program.append(StreamWaitEvent(thread=thread, stream=Streams.COMPUTE, event_id=consume))

