"""Distributed-training cluster emulator.

This package substitutes for the paper's production H100 cluster: it models
how a Megatron-style 3D-parallel training job executes — CPU launch threads,
CUDA streams, 1F1B pipeline schedules, tensor/data/pipeline collectives and
event-based inter-stream synchronisation — and emits Kineto-style traces
that the Lumos toolkit consumes unchanged.

The emulator models one representative rank per pipeline stage (tensor- and
data-parallel peers execute mirrored work whose cost is captured through
communicator group sizes), which keeps event counts tractable while
preserving the pipeline structure and compute/communication overlap that
Lumos must capture.
"""

from repro.emulator.program import (
    CpuCompute,
    DeviceSync,
    EventRecord,
    Instruction,
    KernelIntent,
    LaunchKernel,
    RankProgram,
    StreamSync,
    StreamWaitEvent,
    Streams,
    Threads,
)
from repro.emulator.program_builder import ProgramBuilder, ProgramEmitter
from repro.emulator.inference_builder import InferenceProgramBuilder
from repro.emulator.noise import NoiseModel
from repro.emulator.executor import ExecutedTask, ProgramExecutor
from repro.emulator.api import (
    WORKLOAD_SERVING,
    WORKLOAD_TRAINING,
    ClusterEmulator,
    EmulationResult,
    emulate,
)

__all__ = [
    "Streams",
    "Threads",
    "KernelIntent",
    "Instruction",
    "CpuCompute",
    "LaunchKernel",
    "EventRecord",
    "StreamWaitEvent",
    "StreamSync",
    "DeviceSync",
    "RankProgram",
    "ProgramBuilder",
    "ProgramEmitter",
    "InferenceProgramBuilder",
    "NoiseModel",
    "ProgramExecutor",
    "ExecutedTask",
    "ClusterEmulator",
    "EmulationResult",
    "emulate",
    "WORKLOAD_SERVING",
    "WORKLOAD_TRAINING",
]
