"""Converts executed tasks into Kineto-style trace events."""

from __future__ import annotations

from repro.emulator.executor import ExecutedTask
from repro.emulator.program import (
    CpuCompute,
    DeviceSync,
    EventRecord,
    LaunchKernel,
    StreamSync,
    StreamWaitEvent,
)
from repro.trace.events import Category, CudaRuntimeName, TraceEvent
from repro.trace.kineto import DistributedInfo, KinetoTrace


def _kernel_args(task: ExecutedTask) -> dict:
    intent = task.kernel
    assert intent is not None
    args: dict = {
        "stream": intent.stream,
        "correlation": task.correlation,
        "op_class": intent.op_class,
    }
    if intent.layer is not None:
        args["layer"] = intent.layer
    if intent.microbatch is not None:
        args["microbatch"] = intent.microbatch
    if intent.phase is not None:
        args["phase"] = intent.phase
    if intent.collective is not None:
        args["collective"] = intent.collective
        args["group"] = intent.group
        args["group_size"] = len(intent.group_ranks)
        args["group_ranks"] = list(intent.group_ranks)
        args["size_bytes"] = intent.size_bytes
    if intent.flops:
        args["flops"] = intent.flops
    if intent.bytes_accessed:
        args["bytes_accessed"] = intent.bytes_accessed
    if intent.comm_key is not None:
        args["comm_id"] = intent.comm_key
    if intent.op_name is not None:
        args["op_name"] = intent.op_name
    return args


def tasks_to_trace(rank: int, tasks: list[ExecutedTask], iteration: int,
                   distributed: DistributedInfo) -> KinetoTrace:
    """Convert one rank's executed tasks to a :class:`KinetoTrace`."""
    events: list[TraceEvent] = []
    for task in tasks:
        if task.kind == "kernel":
            intent = task.kernel
            assert intent is not None
            events.append(TraceEvent(
                name=task.name, cat=Category.KERNEL, ts=task.start, dur=task.duration,
                pid=rank, tid=intent.stream, args=_kernel_args(task),
            ))
            continue

        instruction = task.instruction
        if isinstance(instruction, CpuCompute):
            events.append(TraceEvent(
                name=task.name, cat=Category.CPU_OP, ts=task.start, dur=task.duration,
                pid=rank, tid=task.thread,
                args={"phase": instruction.phase} if instruction.phase else {},
            ))
        elif isinstance(instruction, LaunchKernel):
            total = task.duration
            op_fraction = instruction.op_duration_us / max(instruction.duration_us, 1e-9)
            op_duration = total * op_fraction
            events.append(TraceEvent(
                name=task.name, cat=Category.CPU_OP, ts=task.start, dur=total,
                pid=rank, tid=task.thread, args={"correlation": task.correlation},
            ))
            events.append(TraceEvent(
                name=CudaRuntimeName.LAUNCH_KERNEL, cat=Category.CUDA_RUNTIME,
                ts=task.start + op_duration, dur=max(total - op_duration, 0.5),
                pid=rank, tid=task.thread,
                args={"correlation": task.correlation, "stream": instruction.kernel.stream},
            ))
        elif isinstance(instruction, EventRecord):
            events.append(TraceEvent(
                name=CudaRuntimeName.EVENT_RECORD, cat=Category.CUDA_RUNTIME,
                ts=task.start, dur=task.duration, pid=rank, tid=task.thread,
                args={"event_id": instruction.event_id, "stream": instruction.stream},
            ))
        elif isinstance(instruction, StreamWaitEvent):
            events.append(TraceEvent(
                name=CudaRuntimeName.STREAM_WAIT_EVENT, cat=Category.CUDA_RUNTIME,
                ts=task.start, dur=task.duration, pid=rank, tid=task.thread,
                args={"event_id": instruction.event_id, "stream": instruction.stream},
            ))
        elif isinstance(instruction, StreamSync):
            called_at = task.called_at if task.called_at is not None else task.start
            events.append(TraceEvent(
                name=CudaRuntimeName.STREAM_SYNCHRONIZE, cat=Category.CUDA_RUNTIME,
                ts=called_at, dur=task.end - called_at, pid=rank, tid=task.thread,
                args={"stream": instruction.stream},
            ))
        elif isinstance(instruction, DeviceSync):
            called_at = task.called_at if task.called_at is not None else task.start
            events.append(TraceEvent(
                name=CudaRuntimeName.DEVICE_SYNCHRONIZE, cat=Category.CUDA_RUNTIME,
                ts=called_at, dur=task.end - called_at, pid=rank, tid=task.thread,
                args={},
            ))
        else:
            raise TypeError(f"unknown instruction type {type(instruction)!r}")

    if events:
        start = min(e.ts for e in events)
        end = max(e.end for e in events)
        events.append(TraceEvent(
            name=f"ProfilerStep#{iteration}", cat=Category.USER_ANNOTATION,
            ts=start, dur=end - start, pid=rank, tid=0, args={"iteration": iteration},
        ))
    return KinetoTrace(rank=rank, events=events, distributed=distributed,
                       metadata={"iteration": iteration})
