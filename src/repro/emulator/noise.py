"""Execution-time noise models.

Real kernel durations vary between iterations (clock throttling, cache
effects, network congestion); CPU-side durations vary even more (Python
overhead, allocator behaviour).  The emulator applies this noise so that
the profiled iteration Lumos replays and the measured iteration it is
compared against differ the same way a real profiled run differs from a
later run — which is what produces a non-trivial replay error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseConfig:
    """Noise magnitudes (standard deviations of multiplicative factors).

    Per-kernel noise is independent and largely averages out over an
    iteration; the iteration-level drift terms model systematic run-to-run
    variation (GPU clock/thermal state, network congestion) that does not
    average out and therefore dominates the difference between the profiled
    iteration and later measured iterations.
    """

    kernel_sigma: float = 0.015
    comm_sigma: float = 0.04
    cpu_sigma: float = 0.10
    straggler_probability: float = 0.01
    straggler_scale: float = 1.3
    rank_start_skew_us: float = 150.0
    iteration_compute_drift_sigma: float = 0.025
    iteration_comm_drift_sigma: float = 0.08
    iteration_cpu_drift_sigma: float = 0.10

    def __post_init__(self) -> None:
        if not 0 <= self.straggler_probability <= 1:
            raise ValueError("straggler_probability must be in [0, 1]")
        for name in ("kernel_sigma", "comm_sigma", "cpu_sigma",
                     "iteration_compute_drift_sigma", "iteration_comm_drift_sigma",
                     "iteration_cpu_drift_sigma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class NoiseModel:
    """Deterministic per-(iteration, rank) noise streams."""

    def __init__(self, seed: int = 0, config: NoiseConfig | None = None) -> None:
        self.seed = seed
        self.config = config or NoiseConfig()

    def iteration_drift(self, iteration: int) -> tuple[float, float, float]:
        """(compute, communication, cpu) drift factors shared by all ranks."""
        if iteration == 0:
            # The profiled iteration is the reference point.
            return 1.0, 1.0, 1.0
        rng = np.random.default_rng([self.seed, iteration, 987_654_321])
        compute = float(np.exp(rng.normal(0.0, self.config.iteration_compute_drift_sigma)))
        comm = float(np.exp(rng.normal(0.0, self.config.iteration_comm_drift_sigma)))
        cpu = float(np.exp(rng.normal(0.0, self.config.iteration_cpu_drift_sigma)))
        return compute, comm, cpu

    def rank_stream(self, iteration: int, rank: int) -> "RankNoise":
        """Noise stream for one rank in one iteration."""
        rng = np.random.default_rng([self.seed, iteration, rank])
        compute_drift, comm_drift, cpu_drift = self.iteration_drift(iteration)
        return RankNoise(rng=rng, config=self.config, compute_drift=compute_drift,
                         comm_drift=comm_drift, cpu_drift=cpu_drift)


class RankNoise:
    """Sequential noise draws for one rank's program execution."""

    def __init__(self, rng: np.random.Generator, config: NoiseConfig,
                 compute_drift: float = 1.0, comm_drift: float = 1.0,
                 cpu_drift: float = 1.0) -> None:
        self._rng = rng
        self._config = config
        self._compute_drift = compute_drift
        self._comm_drift = comm_drift
        self._cpu_drift = cpu_drift

    def start_skew_us(self) -> float:
        """Per-rank skew of the iteration start (launch/NCCL setup jitter)."""
        return float(self._rng.uniform(0.0, self._config.rank_start_skew_us))

    def kernel_factor(self, is_communication: bool) -> float:
        """Multiplicative duration factor for one GPU kernel."""
        sigma = self._config.comm_sigma if is_communication else self._config.kernel_sigma
        drift = self._comm_drift if is_communication else self._compute_drift
        factor = drift * float(np.exp(self._rng.normal(0.0, sigma)))
        if is_communication and self._rng.random() < self._config.straggler_probability:
            factor *= self._config.straggler_scale
        return factor

    def cpu_factor(self) -> float:
        """Multiplicative duration factor for one CPU-side task."""
        return self._cpu_drift * float(np.exp(self._rng.normal(0.0, self._config.cpu_sigma)))


class ZeroNoise(RankNoise):
    """A noise stream that applies no perturbation (for deterministic tests)."""

    def __init__(self) -> None:  # noqa: D107 - trivial
        pass

    def start_skew_us(self) -> float:
        return 0.0

    def kernel_factor(self, is_communication: bool) -> float:
        return 1.0

    def cpu_factor(self) -> float:
        return 1.0
