"""The programmable facade over the paper's workflow (Figure 2).

``repro.api`` packages the profile → replay → calibrate → manipulate →
predict loop behind one stateful object:

``repro.api.study``
    :class:`Study` (the facade), :class:`Prediction`,
    :class:`WhatIfBuilder`, the shared :func:`derive_graph` manipulation
    dispatcher and the one-call :func:`predict` convenience wrapper.
``repro.api.target``
    :class:`Target` and :func:`parse_target` — the unified prediction-
    target type every study method accepts (parallelism, model, serving
    and hardware targets — composable as ``"tp=8,gpu=H200-SXM"`` —
    behind one ``target=`` parameter).
``repro.api.errors``
    :class:`StudyError` and :class:`PredictError` — the typed errors the
    facade raises instead of printing to stderr.

The CLI and the sweep runner are clients of this package; anything they
can do is available programmatically here.
"""

from repro.api.errors import PredictError, StudyError
from repro.api.study import (
    KIND_ARCHITECTURE,
    KIND_BASELINE,
    KIND_HARDWARE,
    KIND_PARALLELISM,
    KIND_SERVING,
    Prediction,
    Study,
    WhatIfBuilder,
    derive_graph,
    predict,
)
from repro.api.target import Target, parse_target

__all__ = [
    "KIND_ARCHITECTURE",
    "KIND_BASELINE",
    "KIND_HARDWARE",
    "KIND_PARALLELISM",
    "KIND_SERVING",
    "Prediction",
    "PredictError",
    "Study",
    "StudyError",
    "Target",
    "WhatIfBuilder",
    "derive_graph",
    "parse_target",
    "predict",
]
