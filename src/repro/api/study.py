"""The :class:`Study` facade: one stateful object for the paper's workflow.

Figure 2 of the paper is a loop — profile, replay, calibrate, manipulate,
predict — and every step after "profile" shares expensive state: the base
replay, the calibrated :class:`~repro.core.perf_model.KernelPerfModel`, and
one compiled :class:`~repro.core.engine.SimulationSession` per derived
configuration.  A :class:`Study` owns that state and memoizes it:

* the base trace is replayed once (:meth:`Study.replay`);
* the perf model is calibrated lazily, on the first manipulation that
  needs it (:attr:`Study.perf_model`);
* derived graphs and their compiled sessions are cached per target, so a
  repeated :meth:`Study.predict` of the same configuration is a lookup and
  a batch of :meth:`Study.whatif` scenarios against one target is a series
  of duration-vector swaps on a single session.

The sweep runner (:mod:`repro.sweep.runner`) and the CLI are thin clients
of this class; :func:`derive_graph` below is the one place that dispatches
a ``(kind, target)`` configuration onto :mod:`repro.core.manipulation`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.api.errors import PredictError, StudyError
from repro.api.target import Target, parse_target
from repro.core import whatif as whatif_mod
from repro.core.breakdown import ExecutionBreakdown
from repro.core.engine import SessionRun, SimulationSession, compile_graph
from repro.core.graph import ExecutionGraph
from repro.core.manipulation import (
    COMPOSITE_SEPARATOR,
    KIND_ARCHITECTURE,
    KIND_BASELINE,
    KIND_HARDWARE,
    KIND_PARALLELISM,
    KIND_SERVING,
    DeriveContext,
)
from repro.core.manipulation import derive as _dispatch_derive
from repro.core.perf_model import KernelPerfModel
from repro.core.replay import ReplayResult
from repro.core.replay import replay as _replay_trace
from repro.core.serving_metrics import (
    ServingMetrics,
    compute_serving_metrics,
    metrics_from_task_times,
    stream_plan_of,
)
from repro.observability import tracing as observability
from repro.core.tasks import Task
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import GPUSpec, registry_gpu
from repro.trace.kineto import TraceBundle
from repro.workload.inference import (
    WORKLOAD_SERVING,
    WORKLOAD_TRAINING,
    InferenceConfig,
    ServingTarget,
)
from repro.workload.model_config import ModelConfig, gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

if TYPE_CHECKING:
    from pathlib import Path

    from repro.core.graph_builder import GraphBuilderOptions
    from repro.core.whatif import WhatIfResult
    from repro.emulator.api import EmulationResult
    from repro.emulator.noise import NoiseConfig
    from repro.sweep.cache import SweepCache
    from repro.sweep.runner import SweepResult
    from repro.sweep.spec import SweepSpec, WhatIfSpec

_DEFAULT_MODEL = "gpt3-15b"
_DEFAULT_PARALLELISM = "2x2x4"


def _resolve_model(model: ModelConfig | str,
                   error: type[StudyError] = StudyError) -> ModelConfig:
    if isinstance(model, ModelConfig):
        return model
    try:
        return gpt3_model(model)
    except KeyError as exc:
        raise error(str(exc.args[0])) from exc


def _resolve_parallelism(parallelism: ParallelismConfig | str,
                         error: type[StudyError] = StudyError) -> ParallelismConfig:
    if isinstance(parallelism, ParallelismConfig):
        return parallelism
    try:
        return ParallelismConfig.parse(parallelism)
    except ValueError as exc:
        raise error(str(exc)) from exc


def derive_graph(graph: ExecutionGraph, kind: str, target: str, *,
                 base_model: ModelConfig, base_parallel: ParallelismConfig,
                 training: TrainingConfig, perf_model: KernelPerfModel,
                 cluster: ClusterSpec,
                 target_model: ModelConfig | None = None,
                 target_gpu: "GPUSpec | None" = None,
                 base_inference: InferenceConfig | None = None,
                 world_size: int | None = None) -> tuple[ExecutionGraph, int]:
    """Derive the execution graph for one ``(kind, target)`` configuration.

    This is the single manipulation-dispatch point of the library: the
    :class:`Study` methods and the sweep runner both route through the
    registry populated by :mod:`repro.core.manipulation` (each
    manipulation kind registers its own handler there, so new kinds add
    no branches here).  ``kind`` and ``target`` may be composite
    (``+``-separated segments, e.g. ``"serving+hardware"`` /
    ``"batch=64+gpu=B200"``) and are applied left to right.

    Returns the derived graph and the target's world size; raises
    :class:`PredictError` for unsupported targets (TP changes, unknown
    models or GPUs, malformed labels) and for the hardware axis's typed
    refusals (memory-capacity overflow, unclassifiable kernels — see
    :mod:`repro.core.manipulation.hardware`).  ``target_model`` /
    ``target_gpu`` supply payload objects that are not in the respective
    registries (custom model variants, custom GPU specs); labels resolve
    through the registries otherwise.  ``base_inference`` marks the base
    trace as a serving episode: serving targets require it, and the
    training-iteration manipulations refuse to run against it.
    ``world_size`` seeds the chain when ``graph`` is an already-derived
    prefix rather than the base replay (see :meth:`Study.derived_graph`'s
    composite-prefix reuse).
    """
    context = DeriveContext(
        base_model=base_model, base_parallel=base_parallel, training=training,
        perf_model=perf_model, cluster=cluster, target_model=target_model,
        target_gpu=target_gpu, base_inference=base_inference)
    try:
        return _dispatch_derive(graph, kind, target, context,
                                world_size=world_size)
    except PredictError:
        raise
    except ValueError as exc:
        raise PredictError(str(exc), base_tp=getattr(exc, "base_tp", None),
                           target_tp=getattr(exc, "target_tp", None),
                           code=getattr(exc, "code", None)) from exc


@dataclass(frozen=True)
class Prediction:
    """Outcome of predicting one target configuration from a base trace."""

    target: str
    kind: str
    world_size: int
    base_time_us: float
    result: ReplayResult

    @property
    def label(self) -> str:
        return self.target

    @property
    def iteration_time_us(self) -> float:
        return self.result.iteration_time_us

    @property
    def iteration_time_ms(self) -> float:
        return self.result.iteration_time_ms

    @property
    def speedup_vs_base(self) -> float:
        if self.iteration_time_us <= 0:
            return float("inf")
        return self.base_time_us / self.iteration_time_us

    @property
    def graph(self) -> ExecutionGraph:
        return self.result.graph

    def breakdown(self) -> ExecutionBreakdown:
        return self.result.breakdown()

    @property
    def is_stream(self) -> bool:
        """Whether the predicted graph is a continuous-batching episode."""
        return stream_plan_of(self.result.graph.metadata) is not None

    def serving_metrics(self, deadline_ms: float | None = None) -> ServingMetrics | None:
        """Per-request serving metrics of the predicted episode.

        ``None`` for targets whose graph carries no continuous-batching
        stream plan (training iterations and fixed-batch serving
        episodes).  ``deadline_ms`` sets the SLO-attainment deadline
        (default :data:`~repro.core.serving_metrics.DEFAULT_SLO_MS`).
        """
        plan = stream_plan_of(self.result.graph.metadata)
        if plan is None:
            return None
        return compute_serving_metrics(self.result.simulation, plan,
                                       deadline_ms=deadline_ms)


class WhatIfBuilder:
    """Fluent batch of what-if scenarios against one study configuration.

    Builder methods queue :class:`~repro.core.whatif.Scenario` objects and
    return ``self``; :meth:`run` evaluates the whole batch against the
    study's memoized session for the bound configuration — one compile,
    one batched simulation of the stacked duration matrix (bit-identical
    to evaluating each scenario alone)::

        results = (study.whatif()
                   .kernel_class("gemm", 2.0)
                   .communication(2.0, group="dp")
                   .launch_overhead()
                   .run())
    """

    def __init__(self, study: "Study", key: tuple[str, str]) -> None:
        self._study = study
        self._key = key
        self._scenarios: list[whatif_mod.Scenario] = []

    def __len__(self) -> int:
        return len(self._scenarios)

    # -- scenario vocabulary (mirrors repro.core.whatif) --------------------

    def kernel_class(self, op_class: str, speedup: float = 2.0) -> "WhatIfBuilder":
        """What if every kernel of one class (e.g. ``"gemm"``) were faster?"""
        return self.apply("kernel_class", op_class=op_class, speedup=speedup)

    def communication(self, speedup: float = 2.0, *,
                      group: str | None = None) -> "WhatIfBuilder":
        """What if communication kernels (optionally one group) were faster?"""
        return self.apply("communication", group=group, speedup=speedup)

    def launch_overhead(self) -> "WhatIfBuilder":
        """What if CPU-side kernel-launch overhead were free?"""
        return self.apply("launch_overhead")

    def scenario(self, name: str, predicate: Callable[[Task], bool],
                 speedup: float = 2.0) -> "WhatIfBuilder":
        """A custom scenario: rescale every task matching ``predicate``."""
        self._scenarios.append(whatif_mod.Scenario(name=name, predicate=predicate,
                                                   speedup=speedup))
        return self

    def apply(self, kind: str, *, op_class: str | None = None,
              group: str | None = None, speedup: float = 2.0) -> "WhatIfBuilder":
        """Queue a scenario by its declarative kind (see ``scenario_for``)."""
        self._scenarios.append(whatif_mod.scenario_for(kind, op_class=op_class,
                                                       group=group, speedup=speedup))
        return self

    # -- evaluation ---------------------------------------------------------

    def run(self) -> "list[WhatIfResult]":
        """Evaluate every queued scenario in one batched simulation.

        On a continuous-batching serving study every result also carries
        the scenario's own :class:`~repro.core.serving_metrics.
        ServingMetrics` (computed from the same batched simulation, no
        extra run) in :attr:`~repro.core.whatif.WhatIfResult.serving`.
        """
        if not self._scenarios:
            raise StudyError("no what-if scenarios queued; add one before run()")
        kind, target = self._key
        with observability.trace_span("study.whatif", kind=kind, target=target,
                                      scenarios=len(self._scenarios)):
            graph, _ = self._study.derived_graph(kind, target)
            session, baseline = self._study.config_session(kind, target)
            plan = stream_plan_of(graph.metadata)
            collected: dict[int, ServingMetrics] = {}
            collect = None
            if plan is not None:
                tasks = session.compiled.tasks

                def collect(row: int, starts, durations) -> None:
                    collected[row] = metrics_from_task_times(
                        tasks, starts, durations, plan)

            results = whatif_mod.evaluate_scenarios(graph, self._scenarios,
                                                    baseline=baseline,
                                                    session=session,
                                                    collect=collect)
            if collected:
                results = [replace(result, serving=collected.get(row))
                           for row, result in enumerate(results)]
        observability.count("study.whatif_scenarios", len(results))
        return results

    def best(self) -> "WhatIfResult":
        """Evaluate the batch and return the scenario with the lowest time."""
        return min(self.run(), key=lambda result: result.scenario_time_us)


class Study:
    """Stateful facade over the replay / predict / what-if / sweep workflow.

    Construct with :meth:`from_trace` (a saved or in-memory trace bundle)
    or :meth:`from_emulation` (run the cluster emulator first).  All
    expensive state is materialised lazily and memoized; see the module
    docstring for exactly what is shared.

    Instances pickle (the sweep runner ships one to its worker processes):
    the trace bundle, emulation result, base replay and per-target session
    caches stay behind, while the base graph, base iteration time and
    calibrated perf model travel — call :meth:`prepare` before pickling.
    """

    def __init__(self, trace: TraceBundle | None = None, *,
                 model: ModelConfig | str | None = None,
                 parallelism: ParallelismConfig | str | None = None,
                 training: TrainingConfig | None = None,
                 cluster: ClusterSpec | None = None,
                 options: "GraphBuilderOptions | None" = None,
                 inference: InferenceConfig | None = None) -> None:
        metadata = trace.metadata if trace is not None else {}
        # Explicit base configuration is resolved strictly; metadata is a
        # hint (trace bundles are general Kineto containers) and falls
        # back to the defaults when it is absent or unresolvable.  Replay
        # and breakdowns never consult the base configuration, but graph
        # manipulation does — so a guessed base marks the study and
        # :meth:`derived_graph` refuses to manipulate on a guess.
        self._base_guessed = False
        if model is not None:
            self.base_model = _resolve_model(model)
        else:
            try:
                self.base_model = _resolve_model(str(metadata["model"]))
            except (KeyError, StudyError):
                self.base_model = _resolve_model(_DEFAULT_MODEL)
                self._base_guessed = True
        if parallelism is not None:
            self.base_parallel = _resolve_parallelism(parallelism)
        else:
            try:
                self.base_parallel = _resolve_parallelism(str(metadata["parallelism"]))
            except (KeyError, StudyError):
                self.base_parallel = _resolve_parallelism(_DEFAULT_PARALLELISM)
                self._base_guessed = True
        self.training = training or TrainingConfig()
        # A serving-episode base is recognised from the emulator's trace
        # metadata unless the caller states it explicitly; inference-invalid
        # parallelism degrees are rejected here, before any building runs.
        if inference is None and metadata.get("workload") == WORKLOAD_SERVING:
            payload = metadata.get("inference")
            if not isinstance(payload, Mapping):
                # Falling through to a training study would run training
                # manipulations over the serving graph and report
                # confident wrong predictions.
                raise StudyError(
                    "the trace metadata marks a serving episode but carries "
                    "no inference configuration; pass inference= explicitly")
            try:
                inference = InferenceConfig.from_json(payload)
            except (TypeError, ValueError) as exc:
                raise StudyError(
                    f"trace metadata carries a malformed inference "
                    f"configuration: {exc}") from exc
        self.inference = inference
        if inference is not None:
            try:
                self.base_parallel.validate_for_inference()
            except ValueError as exc:
                raise StudyError(str(exc)) from exc
        self.calibrations = 0
        self._bundle = trace
        self._options = options
        self._cluster = cluster
        self._emulation: "EmulationResult | None" = None
        self._replay: ReplayResult | None = None
        self._base_graph: ExecutionGraph | None = None
        self._base_time: float | None = None
        self._perf_model: KernelPerfModel | None = None
        #: Non-registry architecture targets by name (predict(model=<config>)).
        #: Part of the picklable snapshot so pool workers can derive them.
        self._custom_models: dict[str, ModelConfig] = {}
        #: Non-registry GPU specs by name (predict(GPUSpec) / JSON spec
        #: files); travels in the picklable snapshot like custom models.
        self._custom_gpus: dict[str, GPUSpec] = {}
        self._graphs: dict[tuple[str, str], tuple[ExecutionGraph, int]] = {}
        self._sessions: dict[tuple[str, str], tuple[SimulationSession, SessionRun]] = {}
        self._predictions: dict[tuple[str, str], Prediction] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: "TraceBundle | str | Path", *,
                   model: ModelConfig | str | None = None,
                   parallelism: ParallelismConfig | str | None = None,
                   micro_batch_size: int = 2,
                   num_microbatches: int | None = None,
                   training: TrainingConfig | None = None,
                   cluster: ClusterSpec | None = None,
                   options: "GraphBuilderOptions | None" = None,
                   inference: InferenceConfig | None = None) -> "Study":
        """Open a study over a profiled trace (a bundle or its directory).

        The base model and parallelism default to what the bundle's
        metadata records (the emulator writes both); pass them explicitly
        for traces from other sources.  Serving-episode traces are
        recognised from their metadata (``inference=`` overrides it).
        """
        bundle = trace if isinstance(trace, TraceBundle) else TraceBundle.load(trace)
        if training is None:
            if num_microbatches is None:
                num_microbatches = int(bundle.metadata.get("num_microbatches", 4))
            training = TrainingConfig(micro_batch_size=micro_batch_size,
                                      num_microbatches=num_microbatches)
        return cls(bundle, model=model, parallelism=parallelism, training=training,
                   cluster=cluster, options=options, inference=inference)

    @classmethod
    def from_emulation(cls, model: ModelConfig | str,
                       parallelism: ParallelismConfig | str,
                       training: TrainingConfig | None = None, *,
                       inference: InferenceConfig | None = None,
                       iterations: int = 2, seed: int = 0,
                       noise: "NoiseConfig | None" = None,
                       cluster: ClusterSpec | None = None,
                       options: "GraphBuilderOptions | None" = None) -> "Study":
        """Emulate a training job (or serving episode) and study its trace.

        Pass ``inference=`` to emulate a prefill + autoregressive-decode
        serving episode instead of a training iteration (``training`` and
        ``inference`` are mutually exclusive).  The full
        :class:`~repro.emulator.api.EmulationResult` stays reachable
        through :attr:`emulation` (e.g. for validating predictions against
        the independently-measured iteration).
        """
        from repro.emulator.api import emulate

        base_model = _resolve_model(model)
        base_parallel = _resolve_parallelism(parallelism)
        if inference is not None:
            if training is not None:
                raise StudyError("pass either a training or an inference "
                                 "configuration, not both")
            try:
                base_parallel.validate_for_inference()
                emulation = emulate(base_model, base_parallel, cluster=cluster,
                                    iterations=iterations, seed=seed, noise=noise,
                                    inference=inference)
            except ValueError as exc:
                # The builder's own validation (TP divisibility, cluster
                # size) surfaces as the same typed error as PP rejection.
                raise StudyError(str(exc)) from exc
        else:
            training = training or TrainingConfig()
            emulation = emulate(base_model, base_parallel, training, cluster=cluster,
                                iterations=iterations, seed=seed, noise=noise)
        study = cls(emulation.profiled, model=base_model, parallelism=base_parallel,
                    training=training, cluster=emulation.cluster, options=options,
                    inference=inference)
        study._emulation = emulation
        return study

    # -- shared state (lazy, memoized) --------------------------------------

    @property
    def trace(self) -> TraceBundle:
        """The profiled base trace bundle."""
        if self._bundle is None:
            raise StudyError("this study has no trace bundle "
                             "(it was pickled for a worker process)")
        return self._bundle

    @property
    def emulation(self) -> "EmulationResult":
        """The emulation this study was built from (``from_emulation`` only)."""
        if self._emulation is None:
            raise StudyError("this study was not built by from_emulation")
        return self._emulation

    @property
    def cluster(self) -> ClusterSpec:
        """The cluster hosting the base configuration."""
        if self._cluster is None:
            self._cluster = ClusterSpec.for_world_size(self.base_parallel.world_size)
        return self._cluster

    def replay(self) -> ReplayResult:
        """The base replay — performed once, then served from memory."""
        if self._replay is None:
            with observability.trace_span("study.replay",
                                          workload=self.workload) as span:
                self._replay = _replay_trace(self.trace, self._options)
                span.set(tasks=len(self._replay.graph))
            self._base_graph = self._replay.graph
            self._base_time = self._replay.iteration_time_us
        return self._replay

    @property
    def base_graph(self) -> ExecutionGraph:
        """The execution graph of the base replay."""
        if self._base_graph is None:
            self.replay()
        return self._base_graph

    @property
    def base_time_us(self) -> float:
        """Replayed base iteration time in microseconds."""
        if self._base_time is None:
            self.replay()
        return self._base_time

    @property
    def base_time_ms(self) -> float:
        """Replayed base iteration time in milliseconds."""
        return self.base_time_us / 1000.0

    @property
    def perf_model(self) -> KernelPerfModel:
        """The calibrated kernel perf model (calibrated on first use)."""
        if self._perf_model is None:
            with observability.trace_span("study.calibrate"):
                self._perf_model = KernelPerfModel.calibrate(self.base_graph,
                                                             self.cluster)
            self.calibrations += 1
            observability.count("study.calibrations")
        return self._perf_model

    def breakdown(self) -> ExecutionBreakdown:
        """Execution breakdown of the replayed base iteration."""
        return self.replay().breakdown()

    @property
    def stream_plan(self):
        """The base episode's continuous-batching plan, or ``None``.

        Present exactly when the study was opened over a serving episode
        emulated with an arrival process (``InferenceConfig.arrival``).
        """
        return stream_plan_of(self.base_graph.metadata)

    def base_serving_metrics(self, deadline_ms: float | None = None) -> ServingMetrics | None:
        """Per-request serving metrics of the replayed base episode.

        ``None`` unless the base trace is a continuous-batching serving
        episode (see :attr:`stream_plan`).
        """
        plan = self.stream_plan
        if plan is None:
            return None
        return compute_serving_metrics(self.replay().simulation, plan,
                                       deadline_ms=deadline_ms)

    def prepare(self) -> "Study":
        """Force-materialise the base replay and perf model; returns self.

        Call before pickling (the picklable snapshot carries only the
        materialised state) or to front-load the expensive work.
        """
        self.base_time_us
        self.perf_model
        return self

    # -- configuration resolution and caches --------------------------------

    @property
    def workload(self) -> str:
        """Which workload family the base trace came from."""
        return WORKLOAD_TRAINING if self.inference is None else WORKLOAD_SERVING

    def _config_key(self, target: "Target | ParallelismConfig | ModelConfig | ServingTarget | GPUSpec | str | None" = None, *,
                    model: ModelConfig | str | None = None,
                    serving: ServingTarget | str | None = None) -> tuple[str, str]:
        """Map a user-facing target onto the memoization key ``(kind, target)``.

        ``target`` is the unified entry point — any form
        :func:`~repro.api.target.parse_target` accepts.  The ``model=``
        and ``serving=`` keywords are the pre-Target spelling; they keep
        working (routed through the same parser) but warn.
        """
        if sum(item is not None for item in (target, model, serving)) > 1:
            raise PredictError("give exactly one of a target parallelism, a "
                               "target model or a serving target")
        if model is not None:
            warnings.warn("model= is deprecated; pass target=<model> (or a "
                          "'model:<name>' string) instead",
                          DeprecationWarning, stacklevel=3)
            target = (model if isinstance(model, ModelConfig)
                      else f"model:{model}")
        elif serving is not None:
            warnings.warn("serving= is deprecated; pass target=<serving "
                          "target> (or a 'serving:batch=...' string) instead",
                          DeprecationWarning, stacklevel=3)
            target = (serving if isinstance(serving, ServingTarget)
                      else f"serving:{serving}")
        if target is None:
            return (KIND_BASELINE, self.base_parallel.label())
        return self._key_for(parse_target(target))

    def _key_for(self, resolved: Target) -> tuple[str, str]:
        """Collapse a parsed :class:`Target` onto the memoization key.

        Target segments equal to the study's base configuration fold away
        (a workload segment matching the base folds onto the baseline
        key, a hardware segment naming the profiled GPU is dropped), so
        every spelling of one configuration shares one cache entry — and
        a fully-folded target shares the base replay instead of deriving
        a no-op graph.
        """
        workload_key: tuple[str, str] | None = None
        hardware_label: str | None = None
        for segment_kind, segment_label in resolved.manipulations:
            if segment_kind == KIND_HARDWARE:
                hardware_label = self._hardware_key(segment_label, resolved.gpu)
            else:
                workload_key = self._workload_key(segment_kind, segment_label,
                                                  resolved.model)
        if workload_key is None:
            workload_key = (KIND_BASELINE, self.base_parallel.label())
        if hardware_label is None:
            return workload_key
        kind, label = workload_key
        if kind == KIND_BASELINE:
            return (KIND_HARDWARE, hardware_label)
        return (f"{kind}{COMPOSITE_SEPARATOR}{KIND_HARDWARE}",
                f"{label}{COMPOSITE_SEPARATOR}{hardware_label}")

    def _workload_key(self, kind: str, label: str,
                      model: ModelConfig | None) -> tuple[str, str]:
        """The memoization key of one workload segment (base folds away)."""
        if kind == KIND_SERVING:
            serving = ServingTarget.parse(label)
            if (self.inference is not None
                    and serving.is_noop(self.inference, self.base_parallel)):
                return (KIND_BASELINE, self.base_parallel.label())
            return (KIND_SERVING, serving.label())
        if kind == KIND_ARCHITECTURE:
            name = (self._register_model(model)
                    if model is not None else label)
            if name == self.base_model.name:
                return (KIND_BASELINE, self.base_parallel.label())
            return (KIND_ARCHITECTURE, name)
        if label == self.base_parallel.label():
            return (KIND_BASELINE, label)
        return (KIND_PARALLELISM, label)

    def _hardware_key(self, label: str, gpu: "GPUSpec | None") -> str | None:
        """Canonicalise a hardware segment; ``None`` when it names the
        profiled GPU (retargeting onto the base hardware is a no-op)."""
        name = label[len("gpu="):] if label.startswith("gpu=") else label
        if gpu is not None:
            name = self._register_gpu(gpu)
        if name == self.cluster.gpu.name:
            return None
        return f"gpu={name}"

    def _register_model(self, model: ModelConfig) -> str:
        """Record a target ModelConfig under its name, refusing collisions.

        Predictions are memoized by name, so two different architectures
        sharing one name would silently serve each other's cached results
        — reject the ambiguity instead.
        """
        name = model.name
        if name == self.base_model.name and model != self.base_model:
            raise PredictError(
                f"custom model is named like the base model ({name!r}) but "
                "differs from it; give the variant a distinct name")
        previous = self._custom_models.get(name)
        if previous is not None and previous != model:
            raise PredictError(
                f"a different model named {name!r} was already predicted by "
                "this study; give the variant a distinct name")
        try:
            registered = gpt3_model(name)
        except KeyError:
            registered = None
        if registered is not None and registered != model:
            raise PredictError(
                f"custom model {name!r} shadows the registry model of the "
                "same name; give the variant a distinct name")
        self._custom_models[name] = model
        return name

    def _register_gpu(self, gpu: "GPUSpec") -> str:
        """Record a target GPUSpec under its name, refusing collisions.

        Mirrors :meth:`_register_model`: predictions are memoized by GPU
        name, so two different specs sharing one name would silently
        serve each other's cached results — reject the ambiguity.
        """
        name = gpu.name
        base_gpu = self.cluster.gpu
        if name == base_gpu.name and gpu != base_gpu:
            raise PredictError(
                f"custom GPU spec is named like the base GPU ({name!r}) but "
                "differs from it; give the variant a distinct name")
        previous = self._custom_gpus.get(name)
        if previous is not None and previous != gpu:
            raise PredictError(
                f"a different GPU spec named {name!r} was already predicted "
                "by this study; give the variant a distinct name")
        registered = registry_gpu(name)
        if registered is not None and registered != gpu:
            raise PredictError(
                f"custom GPU spec {name!r} shadows the registry spec of the "
                "same name; give the variant a distinct name")
        self._custom_gpus[name] = gpu
        return name

    def _derive(self, kind: str, target: str) -> tuple[ExecutionGraph, int]:
        if self._base_guessed:
            raise StudyError(
                "the trace did not record its base model/parallelism, so graph "
                "manipulation would run against a guessed base configuration; "
                "pass model= and parallelism= explicitly when opening the study")
        # Composite chains resume from the memoized prefix graph: in a
        # hardware-crossed sweep every ``<workload>+hardware`` scenario
        # shares its workload sibling's derivation, so the composite pays
        # only the final (cheap, copy-on-write) retarget step instead of
        # re-synthesizing the workload graph.
        kinds = kind.split(COMPOSITE_SEPARATOR)
        labels = target.split(COMPOSITE_SEPARATOR)
        base_graph, base_world = self.base_graph, None
        if len(kinds) > 1 and len(kinds) == len(labels):
            prefix_kind = COMPOSITE_SEPARATOR.join(kinds[:-1])
            prefix_target = COMPOSITE_SEPARATOR.join(labels[:-1])
            base_graph, base_world = self.derived_graph(prefix_kind, prefix_target)
            kind, target = kinds[-1], labels[-1]
        target_model = None
        target_gpu = None
        for segment_kind, segment_label in zip(kind.split(COMPOSITE_SEPARATOR),
                                               target.split(COMPOSITE_SEPARATOR)):
            if segment_kind == KIND_HARDWARE:
                name = (segment_label[len("gpu="):]
                        if segment_label.startswith("gpu=") else segment_label)
                target_gpu = self._custom_gpus.get(name)
            elif segment_kind == KIND_ARCHITECTURE:
                target_model = self._custom_models.get(segment_label)
        with observability.trace_span("study.derive_graph", kind=kind,
                                      target=target) as span:
            derived = derive_graph(
                base_graph, kind, target,
                base_model=self.base_model, base_parallel=self.base_parallel,
                training=self.training, perf_model=self.perf_model,
                cluster=self.cluster, target_model=target_model,
                target_gpu=target_gpu, base_inference=self.inference,
                world_size=base_world)
            span.set(tasks=len(derived[0]))
        return derived

    def derived_graph(self, kind: str, target: str) -> tuple[ExecutionGraph, int]:
        """The (memoized) derived graph and world size for one configuration."""
        if kind == KIND_BASELINE:
            return self.base_graph, self.base_parallel.world_size
        key = (kind, target)
        if key not in self._graphs:
            self._graphs[key] = self._derive(kind, target)
        return self._graphs[key]

    def config_session(self, kind: str, target: str) -> tuple[SimulationSession, SessionRun]:
        """The (memoized) compiled session and its baseline run for one target."""
        key = (kind, target)
        if key not in self._sessions:
            if kind == KIND_BASELINE:
                if self._replay is not None or self._bundle is not None:
                    # The replay already simulated the base durations —
                    # reuse its compiled graph and its run.
                    result = self.replay()
                    session = result.session()
                    run = result.base_run or session.run()
                else:
                    # Pickled for a worker process: rebuild from the base
                    # graph carried in the snapshot.
                    with observability.trace_span("study.compile", kind=kind,
                                                  target=target):
                        session = SimulationSession(compile_graph(self.base_graph))
                    run = session.run()
            else:
                graph, _ = self.derived_graph(kind, target)
                with observability.trace_span("study.compile", kind=kind,
                                              target=target):
                    session = SimulationSession(compile_graph(graph))
                run = session.run()
            self._sessions[key] = (session, run)
        return self._sessions[key]

    def config_state(self, kind: str, target: str, *, retain: bool = True) \
            -> tuple[ExecutionGraph, int, SimulationSession, SessionRun]:
        """Derived graph, world size, session and baseline run for one target.

        With ``retain=False`` nothing new is pinned in the study's caches
        (cached state is still reused when present) — the sweep runner
        uses this for throwaway studies and pool workers, whose groups are
        each evaluated once, so per-group state should be freed with the
        group instead of accumulating for the sweep's lifetime.  The
        baseline configuration is always served from the memoized replay
        (one bounded entry).
        """
        key = (kind, target)
        if retain or kind == KIND_BASELINE or key in self._sessions:
            graph, world_size = self.derived_graph(kind, target)
            session, run = self.config_session(kind, target)
            return graph, world_size, session, run
        if key in self._graphs:
            graph, world_size = self._graphs[key]
        else:
            graph, world_size = self._derive(kind, target)
        with observability.trace_span("study.compile", kind=kind, target=target):
            session = SimulationSession(compile_graph(graph))
        return graph, world_size, session, session.run()

    def release(self) -> None:
        """Drop the memoized per-target graphs, sessions and predictions.

        The base replay and calibrated perf model stay; use this to bound
        memory on long-lived studies that have visited many targets.
        """
        self._graphs.clear()
        self._sessions.clear()
        self._predictions.clear()

    # -- the paper workflow -------------------------------------------------

    def predict(self, target: "Target | ParallelismConfig | ModelConfig | ServingTarget | GPUSpec | str | None" = None, *,
                model: ModelConfig | str | None = None,
                serving: ServingTarget | str | None = None) -> Prediction:
        """Predict a new parallelism, model, serving or hardware setup.

        ``target`` takes any form :func:`~repro.api.target.parse_target`
        accepts: ``study.predict("2x4x4")`` scales the deployment (§3.4),
        ``study.predict("model:gpt3-v1")`` (or a :class:`ModelConfig`)
        changes the architecture (§4.3.2), on a serving study
        ``study.predict("serving:batch=16")`` (or a
        :class:`ServingTarget`; bare ``"batch=16"`` auto-detects) rescales
        the episode's batch size, prompt length or TP degree, and
        ``study.predict("gpu=H200-SXM")`` (or a
        :class:`~repro.hardware.gpu.GPUSpec`) retargets the trace onto a
        hypothetical GPU — composable with one workload axis, e.g.
        ``"tp=8,gpu=H200-SXM"`` or ``"parallelism=2x2x8,gpu=B200"``.  The
        ``model=`` / ``serving=`` keywords are the deprecated pre-Target
        spelling and keep working with a :class:`DeprecationWarning`.
        Repeated predictions of the same target are served from the
        study's caches.  Raises :class:`PredictError` for unsupported
        targets — notably tensor-parallelism changes of training bases —
        and for unsound hardware extrapolations (memory capacity,
        unclassifiable kernels).
        """
        if target is None and model is None and serving is None:
            raise PredictError("predict requires a target parallelism, a "
                               "target model or a serving target")
        kind, label = self._config_key(target, model=model, serving=serving)
        key = (kind, label)
        if key not in self._predictions:
            with observability.trace_span("study.predict", kind=kind,
                                          target=label):
                graph, world_size = self.derived_graph(kind, label)
                session, run = self.config_session(kind, label)
                simulation = run.to_simulation_result()
                result = ReplayResult(graph=graph, simulation=simulation,
                                      replayed_trace=simulation.to_trace_bundle(),
                                      compiled=session.compiled)
                self._predictions[key] = Prediction(
                    target=label, kind=kind, world_size=world_size,
                    base_time_us=self.base_time_us, result=result)
            observability.count("study.predictions")
        return self._predictions[key]

    def whatif(self, kind: str | None = None, *,
               target: "Target | ParallelismConfig | ModelConfig | ServingTarget | GPUSpec | str | None" = None,
               model: ModelConfig | str | None = None,
               serving: ServingTarget | str | None = None,
               op_class: str | None = None, group: str | None = None,
               speedup: float = 2.0) -> "WhatIfBuilder | WhatIfResult":
        """What-if scenarios (§5) against the base or a predicted target.

        With no ``kind``, returns a :class:`WhatIfBuilder` to queue several
        scenarios fluently.  With a ``kind`` (``"kernel_class"``,
        ``"communication"`` or ``"launch_overhead"``), evaluates that one
        scenario immediately and returns its
        :class:`~repro.core.whatif.WhatIfResult`.
        """
        builder = WhatIfBuilder(self, self._config_key(target, model=model,
                                                       serving=serving))
        if kind is None:
            return builder
        return builder.apply(kind, op_class=op_class, group=group,
                             speedup=speedup).run()[0]

    def sweep(self, spec: "SweepSpec | Mapping[str, Any] | str | Path | None" = None, *,
              parallelism: Iterable[str] = (), models: Iterable[str] = (),
              serving: Iterable[str] = (), hardware: Iterable[str] = (),
              whatif: "Iterable[WhatIfSpec | str | Mapping[str, Any]]" = (),
              slo_ms: float | None = None,
              include_baseline: bool = True, workers: int = 1,
              cache: "SweepCache | None" = None,
              cache_dir: "str | Path | None" = None,
              force: bool = False) -> "SweepResult":
        """Evaluate a scenario grid, reusing this study's calibrated state.

        Pass a full :class:`~repro.sweep.spec.SweepSpec` (object, mapping
        or spec-file path) whose base must match this study, or just the
        axes (``parallelism`` / ``models`` / ``serving`` / ``hardware`` /
        ``whatif`` — what-if entries may be specs, mappings, or compact
        CLI strings like ``"gemm:2"``; serving entries are
        ``batch=/prompt=/tp=`` labels and require a serving-episode
        study; hardware entries are registry GPU names like
        ``"H200-SXM"`` and cross with every workload configuration) and
        the spec is built around the study's base configuration.
        ``slo_ms`` sets the latency deadline of the per-request serving
        metrics attached to continuous-batching scenario results (goodput
        ranking).
        """
        from pathlib import Path as _Path

        from repro.sweep.cache import SweepCache as _SweepCache
        from repro.sweep.runner import run_sweep
        from repro.sweep.spec import SweepSpec as _SweepSpec
        from repro.sweep.spec import WhatIfSpec as _WhatIfSpec

        if spec is None:
            def coerce_whatif(entry):
                if isinstance(entry, _WhatIfSpec):
                    return entry
                if isinstance(entry, Mapping):
                    return _WhatIfSpec.from_json(entry)
                return _WhatIfSpec.parse(str(entry))

            spec = _SweepSpec(
                base_model=self.base_model.name,
                base_parallelism=self.base_parallel.label(),
                micro_batch_size=self.training.micro_batch_size,
                num_microbatches=self.training.num_microbatches,
                inference=self.inference,
                slo_ms=slo_ms,
                parallelism=tuple(parallelism), models=tuple(models),
                serving=tuple(serving), hardware=tuple(hardware),
                whatif=tuple(coerce_whatif(entry) for entry in whatif),
                include_baseline=include_baseline)
        else:
            if (parallelism or models or serving or hardware or whatif
                    or slo_ms is not None):
                raise StudyError("pass either a full spec or inline axes, not both")
            spec = _SweepSpec.coerce(spec)
        self.ensure_matches(spec)
        if cache is None and cache_dir is not None:
            cache = _SweepCache(_Path(cache_dir))
        with observability.trace_span("study.sweep", workers=workers):
            return run_sweep(self.trace, spec, workers=workers, cache=cache,
                             force=force, study=self)

    def report(self) -> dict[str, Any]:
        """The structured run report of the active-or-last pipeline profile.

        A thin window onto :func:`repro.observability.report`: per-stage
        wall times, the metrics registry snapshot (cache hit rate, batch
        fast-path vs. fallback counts, calibration residuals ...) and the
        span tree collected while a profile was active.  When no profile
        has ever been active the report carries ``"enabled": False`` and
        empty sections — instrumentation stays a strict no-op.
        """
        return observability.report()

    def ensure_matches(self, spec: "SweepSpec") -> None:
        """Reject a sweep spec whose base differs from this study's base."""
        problems = []
        if spec.base_model != self.base_model.name:
            problems.append(f"model {spec.base_model!r} != {self.base_model.name!r}")
        if _resolve_parallelism(spec.base_parallelism).label() != self.base_parallel.label():
            problems.append(f"parallelism {spec.base_parallelism!r} != "
                            f"{self.base_parallel.label()!r}")
        if self.inference is None and (
                spec.micro_batch_size != self.training.micro_batch_size
                or spec.num_microbatches != self.training.num_microbatches):
            # Serving bases ignore the training batching knobs: the episode
            # shape lives in the inference configuration instead.
            problems.append(
                f"batching {spec.micro_batch_size}x{spec.num_microbatches} != "
                f"{self.training.micro_batch_size}x{self.training.num_microbatches}")
        if spec.inference != self.inference:
            problems.append(f"inference base {spec.inference!r} != {self.inference!r}")
        if problems:
            raise StudyError("sweep spec base does not match this study: "
                             + "; ".join(problems))

    # -- pickling (worker-process transport) --------------------------------

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        # The picklable snapshot is the calibrated core (base graph, base
        # time, perf model, configs).  Caches and the bundle stay behind:
        # workers rebuild sessions for their own scenario groups.
        state["_bundle"] = None
        state["_emulation"] = None
        state["_replay"] = None
        state["_graphs"] = {}
        state["_sessions"] = {}
        state["_predictions"] = {}
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:
        status = "calibrated" if self._perf_model is not None else (
            "replayed" if self._replay is not None else "lazy")
        return (f"Study(model={self.base_model.name!r}, "
                f"parallelism={self.base_parallel.label()!r}, {status})")


def predict(trace: "TraceBundle | str | Path",
            target: ParallelismConfig | str | None = None, *,
            model: ModelConfig | str | None = None,
            serving: ServingTarget | str | None = None,
            base_model: ModelConfig | str | None = None,
            base_parallelism: ParallelismConfig | str | None = None,
            micro_batch_size: int = 2,
            num_microbatches: int | None = None,
            training: TrainingConfig | None = None) -> Prediction:
    """One-call prediction: open a throwaway :class:`Study` and predict.

    Serving-episode traces are recognised from their metadata, so
    ``predict(trace, serving="batch=16")`` works directly on a bundle
    saved by ``repro-lumos emulate --workload serving``.  Prefer a
    long-lived :class:`Study` when predicting several targets from the
    same trace — it shares the replay and calibration across calls.
    """
    study = Study.from_trace(trace, model=base_model, parallelism=base_parallelism,
                             micro_batch_size=micro_batch_size,
                             num_microbatches=num_microbatches, training=training)
    return study.predict(target, model=model, serving=serving)
