"""Typed errors raised by the :mod:`repro.api` facade.

The library raises these instead of printing to stderr; front-ends (the
CLI, notebooks, services) decide how to present them.  Both derive from
:class:`ValueError`, so pre-facade code that caught ``ValueError`` keeps
working.
"""

from __future__ import annotations


class StudyError(ValueError):
    """A study was asked for something inconsistent or unavailable."""


class PredictError(StudyError):
    """A prediction target is unsupported by graph manipulation.

    The canonical case is the paper's stated limitation: tensor-parallelism
    changes rewrite per-kernel shapes throughout the graph, so manipulation
    refuses them.  :attr:`base_tp` / :attr:`target_tp` carry the offending
    degrees when the error is a TP mismatch (both are ``None`` otherwise).
    :attr:`code` carries a machine-readable refusal code when the
    underlying manipulation provided one (e.g. the serving manipulation's
    ``batch=``-on-a-stream refusal), else ``None``.
    """

    def __init__(self, message: str, *, base_tp: int | None = None,
                 target_tp: int | None = None, code: str | None = None) -> None:
        super().__init__(message)
        self.base_tp = base_tp
        self.target_tp = target_tp
        self.code = code

    @classmethod
    def tp_mismatch(cls, target_label: str, base_tp: int, target_tp: int) -> "PredictError":
        """The uniform message for tensor-parallelism changes."""
        return cls(
            f"target parallelism {target_label} changes tensor parallelism "
            f"(base TP={base_tp}, target TP={target_tp}); graph manipulation "
            "does not support TP modifications",
            base_tp=base_tp, target_tp=target_tp)
