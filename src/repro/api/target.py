"""The unified prediction-target type and its parser.

Every way a study can be pointed at a configuration — a parallelism
label, a model architecture, a serving knob set — is one :class:`Target`:
a ``(kind, label)`` pair using the shared manipulation vocabulary
(``KIND_PARALLELISM`` / ``KIND_ARCHITECTURE`` / ``KIND_SERVING``), plus
an optional :class:`~repro.workload.model_config.ModelConfig` payload for
architecture targets that are not in the registry.

:func:`parse_target` is the single coercion point: it accepts a
:class:`Target`, the typed configuration objects
(:class:`~repro.workload.parallelism.ParallelismConfig`,
:class:`~repro.workload.model_config.ModelConfig`,
:class:`~repro.workload.inference.ServingTarget`), or a string.  Strings
may carry an explicit kind prefix (``parallelism:2x2x4``,
``serving:batch=16``, ``model:gpt3-xl`` — ``architecture:`` is accepted
as an alias) or rely on auto-detection: ``NxNxN`` is a parallelism
label, anything containing ``=`` is a serving knob set, and everything
else names a model architecture.  Malformed targets raise
:class:`~repro.api.errors.PredictError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.api.errors import PredictError
from repro.core.manipulation import (
    KIND_ARCHITECTURE,
    KIND_PARALLELISM,
    KIND_SERVING,
)
from repro.workload.inference import ServingTarget
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig

__all__ = ["Target", "parse_target"]

_PARALLELISM_RE = re.compile(r"^\d+x\d+x\d+$")

#: Explicit kind prefixes a target string may carry.
_PREFIXES = {
    "parallelism": KIND_PARALLELISM,
    "serving": KIND_SERVING,
    "model": KIND_ARCHITECTURE,
    "architecture": KIND_ARCHITECTURE,
}


@dataclass(frozen=True)
class Target:
    """One prediction target: a manipulation kind and its canonical label.

    ``model`` carries the :class:`ModelConfig` payload of an architecture
    target built from a config object (registry-name targets leave it
    ``None``); the other kinds never set it.
    """

    kind: str
    label: str
    model: ModelConfig | None = None

    def __post_init__(self) -> None:
        if self.kind not in (KIND_PARALLELISM, KIND_ARCHITECTURE, KIND_SERVING):
            raise PredictError(f"unknown target kind '{self.kind}'")
        if self.model is not None and self.kind != KIND_ARCHITECTURE:
            raise PredictError(
                f"a ModelConfig payload only belongs on an architecture "
                f"target, not kind '{self.kind}'")

    def __str__(self) -> str:
        return f"{self.kind}:{self.label}"


def _parallelism_target(text: str) -> Target:
    try:
        label = ParallelismConfig.parse(text).label()
    except ValueError as exc:
        raise PredictError(str(exc)) from exc
    return Target(KIND_PARALLELISM, label)


def _serving_target(text: str) -> Target:
    try:
        label = ServingTarget.parse(text).label()
    except ValueError as exc:
        raise PredictError(str(exc)) from exc
    return Target(KIND_SERVING, label)


def parse_target(value: "Target | ParallelismConfig | ModelConfig | ServingTarget | str") -> Target:
    """Coerce any supported target form into a canonical :class:`Target`.

    Typed objects map directly onto their kind; strings are parsed with
    an optional explicit ``kind:`` prefix or auto-detected (``NxNxN`` →
    parallelism, contains ``=`` → serving, else a model name).  Labels
    are canonicalised through the same parsers the manipulations use, so
    equal targets memoize under one key.
    """
    if isinstance(value, Target):
        return value
    if isinstance(value, ParallelismConfig):
        return Target(KIND_PARALLELISM, value.label())
    if isinstance(value, ModelConfig):
        return Target(KIND_ARCHITECTURE, value.name, model=value)
    if isinstance(value, ServingTarget):
        return Target(KIND_SERVING, value.label())
    if not isinstance(value, str):
        raise PredictError(
            f"cannot interpret {value!r} as a prediction target; give a "
            "Target, ParallelismConfig, ModelConfig, ServingTarget or string")
    text = value.strip()
    if not text:
        raise PredictError("empty prediction target")
    prefix, sep, rest = text.partition(":")
    kind = _PREFIXES.get(prefix.strip().lower()) if sep else None
    if kind is not None:
        rest = rest.strip()
        if not rest:
            raise PredictError(f"target '{text}' has a kind prefix but no value")
        if kind == KIND_PARALLELISM:
            return _parallelism_target(rest)
        if kind == KIND_SERVING:
            return _serving_target(rest)
        return Target(KIND_ARCHITECTURE, rest)
    if _PARALLELISM_RE.match(text):
        return _parallelism_target(text)
    if "=" in text:
        return _serving_target(text)
    return Target(KIND_ARCHITECTURE, text)
