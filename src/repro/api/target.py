"""The unified prediction-target type and its parser.

Every way a study can be pointed at a configuration — a parallelism
label, a model architecture, a serving knob set, a hypothetical GPU — is
one :class:`Target`: a ``(kind, label)`` pair using the shared
manipulation vocabulary (``KIND_PARALLELISM`` / ``KIND_ARCHITECTURE`` /
``KIND_SERVING`` / ``KIND_HARDWARE``), plus optional payloads for
targets that are not in a registry (a
:class:`~repro.workload.model_config.ModelConfig` for custom
architectures, a :class:`~repro.hardware.gpu.GPUSpec` for custom GPUs).

A target may compose a *workload* manipulation with a *hardware*
retarget; the composite is encoded as ``+``-separated segments in both
fields (``kind="serving+hardware"``, ``label="batch=64+gpu=B200"``) and
:attr:`Target.manipulations` exposes the ordered ``(kind, label)``
chain.

:func:`parse_target` is the single coercion point.  It accepts a
:class:`Target`, the typed configuration objects
(:class:`~repro.workload.parallelism.ParallelismConfig`,
:class:`~repro.workload.model_config.ModelConfig`,
:class:`~repro.workload.inference.ServingTarget`,
:class:`~repro.hardware.gpu.GPUSpec`), or a string in the composable
``key=value`` grammar:

* ``"2x2x4"`` / ``"gpt3-xl"`` — bare parallelism / model names,
  auto-detected exactly as before;
* ``"batch=64,prompt=512"`` — serving knobs;
* ``"gpu=H200-SXM"`` — a pure hardware retarget;
* ``"tp=8,gpu=H200-SXM"`` / ``"parallelism=2x2x4,gpu=B200"`` /
  ``"model=gpt3-xl,gpu=B200"`` — a workload axis combined with a
  hardware axis (``gpu=`` composes with exactly one workload selector);
* explicit kind prefixes keep working and constrain the body:
  ``parallelism:2x2x4``, ``serving:batch=64,gpu=B200``,
  ``model:gpt3-xl``, ``hardware:H200-SXM`` (``architecture:`` is an
  alias for ``model:``).

Labels are canonicalised through the same parsers the manipulations
use, so equivalent spellings of one configuration produce equal
:class:`Target` values (and therefore one memo/cache/service key).
Malformed targets raise :class:`~repro.api.errors.PredictError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.api.errors import PredictError
from repro.core.manipulation import (
    COMPOSITE_SEPARATOR,
    KIND_ARCHITECTURE,
    KIND_HARDWARE,
    KIND_PARALLELISM,
    KIND_SERVING,
)
from repro.hardware.gpu import GPUSpec, registry_gpu, resolve_gpu
from repro.workload.inference import ServingTarget
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig

__all__ = ["Target", "parse_target"]

_PARALLELISM_RE = re.compile(r"^\d+x\d+x\d+$")

#: Explicit kind prefixes a target string may carry.
_PREFIXES = {
    "parallelism": KIND_PARALLELISM,
    "serving": KIND_SERVING,
    "model": KIND_ARCHITECTURE,
    "architecture": KIND_ARCHITECTURE,
    "hardware": KIND_HARDWARE,
}

#: Kinds a single (non-composite) target may carry.
_SINGLE_KINDS = (KIND_PARALLELISM, KIND_ARCHITECTURE, KIND_SERVING,
                 KIND_HARDWARE)

#: Workload kinds that may precede ``+hardware`` in a composite.
_WORKLOAD_KINDS = (KIND_PARALLELISM, KIND_ARCHITECTURE, KIND_SERVING)


@dataclass(frozen=True)
class Target:
    """One prediction target: a manipulation kind and its canonical label.

    ``kind`` and ``label`` may be composite (``+``-separated segments,
    applied left to right); :attr:`manipulations` exposes the chain.
    ``model`` carries the :class:`ModelConfig` payload of an architecture
    target built from a config object, ``gpu`` the :class:`GPUSpec`
    payload of a hardware target built from a non-registry spec;
    registry-name targets leave both ``None``.
    """

    kind: str
    label: str
    model: ModelConfig | None = None
    gpu: GPUSpec | None = None

    def __post_init__(self) -> None:
        kinds = self.kind.split(COMPOSITE_SEPARATOR)
        labels = self.label.split(COMPOSITE_SEPARATOR)
        if len(kinds) != len(labels):
            raise PredictError(
                f"composite target label '{self.label}' has {len(labels)} "
                f"segment(s) but its kind '{self.kind}' has {len(kinds)}")
        if len(kinds) == 1:
            if self.kind not in _SINGLE_KINDS:
                raise PredictError(f"unknown target kind '{self.kind}'")
        elif (len(kinds) != 2 or kinds[0] not in _WORKLOAD_KINDS
              or kinds[1] != KIND_HARDWARE):
            raise PredictError(
                f"unknown target kind '{self.kind}'; composite targets "
                f"chain one workload kind with hardware "
                f"('<workload>{COMPOSITE_SEPARATOR}{KIND_HARDWARE}')")
        if self.model is not None and KIND_ARCHITECTURE not in kinds:
            raise PredictError(
                f"a ModelConfig payload only belongs on an architecture "
                f"target, not kind '{self.kind}'")
        if self.gpu is not None and KIND_HARDWARE not in kinds:
            raise PredictError(
                f"a GPUSpec payload only belongs on a hardware "
                f"target, not kind '{self.kind}'")

    @property
    def manipulations(self) -> tuple[tuple[str, str], ...]:
        """The ordered ``(kind, label)`` manipulation chain."""
        return tuple(zip(self.kind.split(COMPOSITE_SEPARATOR),
                         self.label.split(COMPOSITE_SEPARATOR)))

    def __str__(self) -> str:
        manipulations = self.manipulations
        if len(manipulations) == 1:
            return f"{self.kind}:{self.label}"
        (workload_kind, workload_label), (_, gpu_label) = manipulations
        if workload_kind == KIND_PARALLELISM:
            workload = f"parallelism={workload_label}"
        elif workload_kind == KIND_ARCHITECTURE:
            workload = f"model={workload_label}"
        else:
            workload = workload_label  # serving knobs are already key=value
        return f"{workload},{gpu_label}"


def _parallelism_target(text: str) -> Target:
    try:
        label = ParallelismConfig.parse(text).label()
    except ValueError as exc:
        raise PredictError(str(exc)) from exc
    return Target(KIND_PARALLELISM, label)


def _serving_target(text: str) -> Target:
    try:
        label = ServingTarget.parse(text).label()
    except ValueError as exc:
        raise PredictError(str(exc)) from exc
    return Target(KIND_SERVING, label)


def _resolve_gpu_payload(name: str) -> tuple[str, GPUSpec | None]:
    """Resolve a GPU name/path to its canonical name and optional payload."""
    try:
        spec = resolve_gpu(name)
    except ValueError as exc:
        raise PredictError(str(exc)) from exc
    payload = None if registry_gpu(spec.name) == spec else spec
    return spec.name, payload


def _hardware_target(text: str) -> Target:
    name = text[len("gpu="):] if text.lower().startswith("gpu=") else text
    canonical, payload = _resolve_gpu_payload(name.strip())
    return Target(KIND_HARDWARE, f"gpu={canonical}", gpu=payload)


def _combine(workload: Target | None, gpu_name: str | None,
             gpu_payload: GPUSpec | None) -> Target:
    if gpu_name is None:
        assert workload is not None
        return workload
    gpu_label = f"gpu={gpu_name}"
    if workload is None:
        return Target(KIND_HARDWARE, gpu_label, gpu=gpu_payload)
    return Target(f"{workload.kind}{COMPOSITE_SEPARATOR}{KIND_HARDWARE}",
                  f"{workload.label}{COMPOSITE_SEPARATOR}{gpu_label}",
                  model=workload.model, gpu=gpu_payload)


def _parse_body(text: str, constraint: str | None, original: str) -> Target:
    """Parse a target body, optionally constrained by a ``kind:`` prefix."""
    if "=" not in text:
        # Bare scalar: a parallelism label, a model name or a GPU name.
        if constraint == KIND_PARALLELISM:
            return _parallelism_target(text)
        if constraint == KIND_SERVING:
            return _serving_target(text)
        if constraint == KIND_ARCHITECTURE:
            return Target(KIND_ARCHITECTURE, text)
        if constraint == KIND_HARDWARE:
            return _hardware_target(text)
        if _PARALLELISM_RE.match(text):
            return _parallelism_target(text)
        return Target(KIND_ARCHITECTURE, text)

    # key=value grammar: comma-separated items; 'gpu=' selects the
    # hardware axis, 'parallelism=' / 'model=' select a workload axis,
    # everything else is a serving knob.
    gpu_values: list[str] = []
    selectors: list[tuple[str, str]] = []
    rest: list[str] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            raise PredictError(f"target '{original}' has an empty item")
        key, eq, value = item.partition("=")
        key_norm = key.strip().lower()
        if eq and key_norm in ("gpu", "parallelism", "model", "architecture"):
            value = value.strip()
            if not value:
                raise PredictError(
                    f"target '{original}': '{key_norm}=' needs a value")
            if key_norm == "gpu":
                gpu_values.append(value)
            else:
                kind = (KIND_PARALLELISM if key_norm == "parallelism"
                        else KIND_ARCHITECTURE)
                selectors.append((kind, value))
        else:
            rest.append(item)

    if len(gpu_values) > 1:
        raise PredictError(
            f"target '{original}' gives more than one 'gpu=' value")
    if len(selectors) > 1 or (selectors and rest):
        raise PredictError(
            f"target '{original}' mixes more than one workload axis; "
            "combine 'gpu=' with exactly one of a parallelism, model or "
            "serving selection")

    workload: Target | None = None
    if selectors:
        kind, value = selectors[0]
        if constraint is not None and constraint != kind:
            raise PredictError(
                f"target '{original}': selector does not match its "
                f"'{original.partition(':')[0]}:' kind prefix")
        if kind == KIND_PARALLELISM:
            workload = _parallelism_target(value)
        else:
            workload = Target(KIND_ARCHITECTURE, value)
    elif rest:
        body = ",".join(rest)
        if constraint is None or constraint == KIND_SERVING:
            workload = _serving_target(body)
        elif constraint == KIND_PARALLELISM:
            workload = _parallelism_target(body)
        elif constraint == KIND_ARCHITECTURE:
            workload = Target(KIND_ARCHITECTURE, body)
        else:  # hardware prefix with leftover non-gpu items
            raise PredictError(
                f"target '{original}': a hardware target only takes "
                "'gpu=<name>'")

    gpu_name: str | None = None
    gpu_payload: GPUSpec | None = None
    if gpu_values:
        gpu_name, gpu_payload = _resolve_gpu_payload(gpu_values[0])
    elif constraint == KIND_HARDWARE:
        raise PredictError(
            f"target '{original}': a hardware target needs 'gpu=<name>'")

    if workload is None and gpu_name is None:
        raise PredictError(
            f"cannot interpret '{original}' as a prediction target")
    return _combine(workload, gpu_name, gpu_payload)


def parse_target(value: "Target | ParallelismConfig | ModelConfig | ServingTarget | GPUSpec | str") -> Target:
    """Coerce any supported target form into a canonical :class:`Target`.

    Typed objects map directly onto their kind; strings are parsed with
    an optional explicit ``kind:`` prefix or auto-detected (``NxNxN`` →
    parallelism, contains ``=`` → the composable key=value grammar, else
    a model name).  ``gpu=<name-or-spec.json>`` selects the hardware
    axis and composes with at most one workload selection.  Labels are
    canonicalised through the same parsers the manipulations use, so
    equal targets memoize under one key.
    """
    if isinstance(value, Target):
        return value
    if isinstance(value, ParallelismConfig):
        return Target(KIND_PARALLELISM, value.label())
    if isinstance(value, ModelConfig):
        return Target(KIND_ARCHITECTURE, value.name, model=value)
    if isinstance(value, ServingTarget):
        return Target(KIND_SERVING, value.label())
    if isinstance(value, GPUSpec):
        payload = None if registry_gpu(value.name) == value else value
        return Target(KIND_HARDWARE, f"gpu={value.name}", gpu=payload)
    if not isinstance(value, str):
        raise PredictError(
            f"cannot interpret {value!r} as a prediction target; give a "
            "Target, ParallelismConfig, ModelConfig, ServingTarget, "
            "GPUSpec or string")
    text = value.strip()
    if not text:
        raise PredictError("empty prediction target")
    prefix, sep, rest = text.partition(":")
    kind = _PREFIXES.get(prefix.strip().lower()) if sep else None
    if kind is not None:
        rest = rest.strip()
        if not rest:
            raise PredictError(f"target '{text}' has a kind prefix but no value")
        return _parse_body(rest, kind, text)
    return _parse_body(text, None, text)
