"""Batched multi-scenario simulation: B duration vectors in one sweep.

A what-if sweep group re-simulates one compiled graph with nothing but the
kernel-duration vector changing, and :class:`~repro.core.engine.
SimulationSession` already made each of those simulations cheap.  But a
group of B scenarios still pays B full passes of the Python event loop —
the dominant cost once everything else is amortised.  This module removes
that factor: :class:`BatchSession` simulates a ``(B, n_tasks)`` duration
matrix in **one** sweep over the graph, vectorizing the ready-time /
processor-availability / stream-drain arithmetic across the batch axis
with 2-D numpy buffers.

Soundness.  The sequential scheduler pops tasks from a heap ordered by
ready time, so in general the *order* tasks reach a processor depends on
the durations — two scenarios of one batch could legally serialise the
same processor differently, and no single vectorized pass could reproduce
both.  Batching is therefore gated on a compile-time proof that the
schedule's data flow is the same for every duration vector:

* **Processor chains** — for every processor (CPU thread / CUDA stream),
  the tasks it executes must be totally ordered by the fixed dependencies.
  Then "wait for the processor" is exactly "wait for the previous task of
  the chain", independent of durations.  Graphs built by
  :class:`~repro.core.graph_builder.GraphBuilder` (and everything derived
  from them by manipulation) satisfy this by construction: consecutive
  same-thread and same-stream tasks are chained with direct edges.
* **Stream drains** — a blocking synchronisation waits until *all*
  kernels of its target streams finished (Algorithm 1 counts them against
  the per-stream total), so its ready time is the max over every kernel's
  end on those streams — an order-independent reduction.
* **Collective alignment** — under the chain condition a group member's
  pop-time processor availability is its chain predecessor's end, so the
  aligned common start is a max over a fixed operand set.

Under these conditions every start time is ``max`` over a fixed set of
end times (fixed predecessors, the processor-chain predecessor, drained
stream kernels, the global start time), and float ``max``/``add`` over
identical operand sets give bit-identical results regardless of
evaluation order — the batched kernel reproduces the sequential
scheduler's start times *exactly* (``tests/test_batch_engine.py`` asserts
float equality, no tolerance).

Graphs that fail the proof — hand-built graphs with unordered same-
processor tasks, or unsatisfiable synchronisation patterns that would
deadlock Algorithm 1 — raise :class:`UnbatchableGraphError` at plan time,
and :class:`BatchSession` falls back to B sequential
:meth:`~repro.core.engine.SimulationSession.run` calls (reproducing the
sequential result, including its ``RuntimeError`` on deadlocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.engine import CompiledGraph
from repro.observability import tracing as observability

if TYPE_CHECKING:
    from repro.core.engine import SimulationSession

#: Ancestry verification builds an ``(n_tasks, n_procs)`` table; graphs
#: bigger than this many cells fall back to sequential execution instead
#: of risking the memory spike (only reached when the cheap direct-edge
#: check already failed, which builder-produced graphs never do).
_ANCESTRY_TABLE_LIMIT = 64_000_000

#: Machine-readable refusal codes, one per way the duration-independence
#: proof can fail (:attr:`UnbatchableGraphError.code`).
FALLBACK_UNORDERED_TASKS = "unordered-processor-tasks"
FALLBACK_ANCESTRY_OVERFLOW = "ancestry-table-overflow"
FALLBACK_COLLECTIVE_DEPENDENCY = "collective-internal-dependency"
FALLBACK_SYNC_CYCLE = "sync-cycle"
#: A continuous-batching serving graph failed the proof.  Builder-emitted
#: stream episodes batch fine (one final drain, chained streams), so this
#: code marks hand-modified stream graphs — distinct so serving sweeps
#: can tell "stream graph went sequential" from the generic causes.
FALLBACK_SERVING_STREAM = "serving-stream-schedule"


class UnbatchableGraphError(RuntimeError):
    """The compiled graph has no duration-independent schedule.

    Raised by :func:`compile_batch_plan` when the static-schedulability
    proof fails; :class:`BatchSession` catches it and records the reason
    (see :attr:`BatchSession.fallback_reason`).  :attr:`code` carries the
    machine-readable refusal class (one of the ``FALLBACK_*`` constants),
    while the message describes the offending tasks.
    """

    def __init__(self, message: str, code: str = "unbatchable") -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class _Level:
    """One rank of the augmented DAG: nodes whose inputs are all computed.

    ``pred_columns``/``indptr`` describe, per node, the columns of the
    end-time matrix feeding its start (CSR layout; every segment contains
    at least the virtual start-time column).  ``out_tasks`` lists the
    dense task indices written by this level and ``out_nodes`` the
    level-local node each one takes its start from (collective groups
    write several tasks from one node).  ``drain_columns``/``drain_nodes``
    scatter the level's stream-drain reductions into their end-matrix
    columns (drains produce no task, only an operand for syncs).
    """

    pred_columns: np.ndarray
    indptr: np.ndarray
    out_tasks: np.ndarray
    out_nodes: np.ndarray
    drain_columns: np.ndarray
    drain_nodes: np.ndarray


@dataclass(frozen=True)
class BatchPlan:
    """The compiled, duration-independent schedule of one graph."""

    compiled: CompiledGraph
    levels: tuple[_Level, ...]
    #: Stream-drain reduction slots (one end-matrix column each).
    n_drains: int = 0

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def execute(self, durations: np.ndarray, start_time: float) -> np.ndarray:
        """Start times (``B × n_tasks``) for a batch of duration vectors."""
        batch, n = durations.shape
        starts = np.empty((batch, n), dtype=np.float64)
        # Column n is the virtual "simulation start" operand present in
        # every max (ready times, processor slots and stream last-ends all
        # initialise to it); columns beyond hold the drain reductions.
        ends = np.empty((batch, n + 1 + self.n_drains), dtype=np.float64)
        ends[:, n] = start_time
        for level in self.levels:
            gathered = ends[:, level.pred_columns]
            node_starts = np.maximum.reduceat(gathered, level.indptr, axis=1)
            if len(level.out_tasks):
                level_starts = node_starts[:, level.out_nodes]
                starts[:, level.out_tasks] = level_starts
                ends[:, level.out_tasks] = level_starts + durations[:, level.out_tasks]
            if len(level.drain_columns):
                ends[:, level.drain_columns] = node_starts[:, level.drain_nodes]
        return starts


def _predecessor_lists(compiled: CompiledGraph) -> list[list[int]]:
    """Fixed-dependency predecessors per dense task index."""
    preds: list[list[int]] = [[] for _ in range(compiled.n_tasks)]
    indptr = compiled.succ_indptr
    indices = compiled.succ_indices
    for src in range(compiled.n_tasks):
        for position in range(indptr[src], indptr[src + 1]):
            preds[int(indices[position])].append(src)
    return preds


def _chain_predecessors(compiled: CompiledGraph, topo_pos: np.ndarray,
                        preds: list[list[int]]) -> np.ndarray:
    """Same-processor predecessor per task, verifying the chain condition.

    Orders each processor's tasks by topological position and proves that
    every consecutive pair is dependency-ordered — first with the cheap
    direct-edge check (always sufficient for builder-produced graphs),
    then, for the remaining pairs, with a latest-ancestor-per-processor
    table.  Raises :class:`UnbatchableGraphError` when a pair is genuinely
    unordered (its serialisation would depend on the durations).
    """
    n = compiled.n_tasks
    proc = compiled.proc_index
    order = np.lexsort((topo_pos, proc))
    left, right = order[:-1], order[1:]
    same = proc[left] == proc[right]
    chain_src = left[same]
    chain_dst = right[same]
    chain_pred = np.full(n, -1, dtype=np.int64)
    chain_pred[chain_dst] = chain_src
    if len(chain_src) == 0:
        return chain_pred

    # Cheap sufficient check: a direct edge src -> dst proves the order.
    edge_keys = (np.repeat(np.arange(n, dtype=np.int64),
                           np.diff(compiled.succ_indptr)) * n
                 + compiled.succ_indices)
    pair_keys = chain_src * n + chain_dst
    unproven = ~np.isin(pair_keys, edge_keys)
    if not unproven.any():
        return chain_pred

    if n * max(compiled.n_procs, 1) > _ANCESTRY_TABLE_LIMIT:
        raise UnbatchableGraphError(
            "graph is too large for ancestry verification and has "
            "same-processor tasks without direct chain edges",
            code=FALLBACK_ANCESTRY_OVERFLOW)

    # Latest same-processor ancestor, per processor, in topo order.
    latest = np.full((n, compiled.n_procs), -1, dtype=np.int64)
    for index in compiled.topological.tolist():
        row = latest[index]
        for pred in preds[index]:
            np.maximum(row, latest[pred], out=row)
            pred_proc = proc[pred]
            if topo_pos[pred] > row[pred_proc]:
                row[pred_proc] = topo_pos[pred]
    for src, dst in zip(chain_src[unproven], chain_dst[unproven]):
        if latest[dst, proc[dst]] != topo_pos[src]:
            a, b = compiled.tasks[int(src)], compiled.tasks[int(dst)]
            raise UnbatchableGraphError(
                f"tasks '{a.name}' and '{b.name}' share processor "
                f"{a.processor} but are not dependency-ordered; their "
                f"serialisation depends on the durations",
                code=FALLBACK_UNORDERED_TASKS)
    return chain_pred


def compile_batch_plan(compiled: CompiledGraph) -> BatchPlan:
    """Prove the schedule duration-independent and lower it to level sweeps.

    Raises :class:`UnbatchableGraphError` when the proof fails: unordered
    same-processor tasks, dependencies between members of one collective
    group, or synchronisation cycles (the cases where Algorithm 1 either
    reorders across scenarios or deadlocks outright).
    """
    n = compiled.n_tasks
    if n == 0:
        return BatchPlan(compiled=compiled, levels=())

    topo = compiled.topological
    topo_pos = np.empty(n, dtype=np.int64)
    topo_pos[topo] = np.arange(n, dtype=np.int64)
    preds = _predecessor_lists(compiled)
    chain_pred = _chain_predecessors(compiled, topo_pos, preds)

    # Node assignment: collective groups collapse to one node (their
    # members start together), everything else is its own node, and every
    # stream a sync drains gets one *drain node* — a single reduction over
    # the stream's kernel ends that all its syncs read (instead of each
    # sync inlining every kernel of the stream as an operand).
    group_id = compiled.group_id
    singles = np.flatnonzero(group_id < 0)
    n_groups = len(compiled.group_members)
    node_of = np.empty(n, dtype=np.int64)
    node_of[singles] = np.arange(len(singles), dtype=np.int64)
    grouped = np.flatnonzero(group_id >= 0)
    node_of[grouped] = len(singles) + group_id[grouped]
    node_tasks: list[list[int]] = [[int(index)] for index in singles]
    node_tasks.extend([int(m) for m in members] for members in compiled.group_members)

    drained_slots = sorted({slot for slots in compiled.sync_slots for slot in slots})
    drain_node_of = {slot: len(node_tasks) + position
                     for position, slot in enumerate(drained_slots)}
    #: Drain value of stream ``slot`` lives in end-matrix column
    #: ``n + 1 + drain_column_of[slot]`` (column ``n`` is the start time).
    drain_column_of = {slot: position
                       for position, slot in enumerate(drained_slots)}
    n_nodes = len(node_tasks) + len(drained_slots)

    node_operands: list[set[int]] = []
    node_pred_nodes: list[set[int]] = []
    for node, members in enumerate(node_tasks):
        operands: set[int] = set()
        pred_nodes: set[int] = set()
        for index in members:
            for pred in preds[index]:
                operands.add(pred)
                pred_nodes.add(int(node_of[pred]))
            if chain_pred[index] >= 0:
                operands.add(int(chain_pred[index]))
                pred_nodes.add(int(node_of[chain_pred[index]]))
            for slot in compiled.sync_slots[index]:
                operands.add(n + 1 + drain_column_of[slot])
                pred_nodes.add(drain_node_of[slot])
        if node in pred_nodes:
            members_desc = [compiled.tasks[index].name for index in members[:4]]
            raise UnbatchableGraphError(
                f"self-referential scheduling constraint among tasks "
                f"{members_desc}: a collective group with internal "
                f"dependencies deadlocks Algorithm 1",
                code=FALLBACK_COLLECTIVE_DEPENDENCY)
        node_operands.append(operands)
        node_pred_nodes.append(pred_nodes)
    for slot in drained_slots:
        kernels = np.flatnonzero(compiled.stream_slot == slot)
        node_operands.append(set(kernels.tolist()))
        node_pred_nodes.append({int(node_of[kernel]) for kernel in kernels})

    # Level assignment over the augmented node graph (Kahn by longest
    # path); a leftover node means a scheduling cycle -> deadlock (e.g. a
    # kernel behind its own stream's synchronisation).
    node_succ: list[list[int]] = [[] for _ in range(n_nodes)]
    node_indegree = np.zeros(n_nodes, dtype=np.int64)
    for node, pred_nodes in enumerate(node_pred_nodes):
        node_indegree[node] = len(pred_nodes)
        for pred_node in sorted(pred_nodes):
            node_succ[pred_node].append(node)
    level_of = np.zeros(n_nodes, dtype=np.int64)
    frontier = np.flatnonzero(node_indegree == 0).tolist()
    visited = 0
    by_level: dict[int, list[int]] = {}
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            visited += 1
            by_level.setdefault(int(level_of[node]), []).append(node)
            for successor in node_succ[node]:
                if level_of[node] + 1 > level_of[successor]:
                    level_of[successor] = level_of[node] + 1
                node_indegree[successor] -= 1
                if node_indegree[successor] == 0:
                    next_frontier.append(successor)
        frontier = next_frontier
    if visited != n_nodes:
        raise UnbatchableGraphError(
            "synchronisation constraints form a cycle; Algorithm 1 would "
            "deadlock on this graph", code=FALLBACK_SYNC_CYCLE)

    levels: list[_Level] = []
    for level in sorted(by_level):
        nodes = by_level[level]
        pred_columns: list[int] = []
        indptr: list[int] = []
        out_tasks: list[int] = []
        out_nodes: list[int] = []
        drain_columns: list[int] = []
        drain_nodes: list[int] = []
        for position, node in enumerate(nodes):
            indptr.append(len(pred_columns))
            pred_columns.extend(sorted(node_operands[node]))
            # The virtual start-time column keeps every segment non-empty
            # (np.maximum.reduceat misreads empty segments) and mirrors
            # the sequential initialisation of the ready / processor /
            # stream-last-end state.
            pred_columns.append(n)
            if node < len(node_tasks):
                for index in node_tasks[node]:
                    out_tasks.append(index)
                    out_nodes.append(position)
            else:
                slot = drained_slots[node - len(node_tasks)]
                drain_columns.append(n + 1 + drain_column_of[slot])
                drain_nodes.append(position)
        levels.append(_Level(
            pred_columns=np.asarray(pred_columns, dtype=np.int64),
            indptr=np.asarray(indptr, dtype=np.int64),
            out_tasks=np.asarray(out_tasks, dtype=np.int64),
            out_nodes=np.asarray(out_nodes, dtype=np.int64),
            drain_columns=np.asarray(drain_columns, dtype=np.int64),
            drain_nodes=np.asarray(drain_nodes, dtype=np.int64),
        ))
    return BatchPlan(compiled=compiled, levels=tuple(levels),
                     n_drains=len(drained_slots))


@dataclass(frozen=True)
class BatchRun:
    """Timings of one batched simulation: one row per scenario.

    ``starts``/``durations`` are ``(batch, n_tasks)`` arrays in dense task
    order; every row is bit-identical to the corresponding sequential
    :meth:`~repro.core.engine.SimulationSession.run`.  ``batched`` records
    whether the vectorized kernel ran or the sequential fallback did;
    on the fallback path ``fallback_reason`` carries why the proof failed.
    """

    compiled: CompiledGraph
    start_time: float
    starts: np.ndarray
    durations: np.ndarray
    batched: bool
    fallback_reason: str | None = None

    @property
    def batch_size(self) -> int:
        return int(self.starts.shape[0])

    @property
    def ends(self) -> np.ndarray:
        return self.starts + self.durations

    @property
    def iteration_times_us(self) -> np.ndarray:
        """Per-scenario global span (earliest start to latest end).

        Matches :attr:`~repro.core.engine.SessionRun.iteration_time_us`
        row by row.
        """
        if self.starts.shape[1] == 0:
            return np.zeros(self.batch_size, dtype=np.float64)
        return self.ends.max(axis=1) - self.starts.min(axis=1)

    def scenario_time_us(self, scenario: int) -> float:
        return float(self.iteration_times_us[scenario])


class BatchSession:
    """Reusable batched runner over one compiled graph.

    Builds the :class:`BatchPlan` once; when the graph is unbatchable the
    session transparently falls back to per-scenario sequential runs on a
    :class:`~repro.core.engine.SimulationSession` (:attr:`batchable`,
    :attr:`fallback_reason` and :attr:`fallback_code` report which path is
    live and why).
    """

    def __init__(self, compiled: CompiledGraph,
                 fallback: "SimulationSession | None" = None) -> None:
        self.compiled = compiled
        self._fallback = fallback
        self.plan: BatchPlan | None = None
        self.fallback_reason: str | None = None
        self.fallback_code: str | None = None
        with observability.trace_span("batch.compile_plan",
                                      tasks=compiled.n_tasks) as span:
            try:
                self.plan = compile_batch_plan(compiled)
            except UnbatchableGraphError as error:
                self.fallback_reason = str(error)
                self.fallback_code = error.code
                if compiled.graph.metadata.get("serving_stream") is not None:
                    # A continuous-batching episode lost its fast path —
                    # report the serving-specific code (the generic cause
                    # stays in the reason text).
                    self.fallback_code = FALLBACK_SERVING_STREAM
                    self.fallback_reason = (
                        f"continuous-batching stream graph is not batchable "
                        f"({error.code}): {error}")
                span.set(fallback=self.fallback_code)
        if self.plan is None:
            observability.count(f"batch.unbatchable.{self.fallback_code}")

    @property
    def batchable(self) -> bool:
        return self.plan is not None

    def _coerce_matrix(self, durations) -> np.ndarray:
        n = self.compiled.n_tasks
        matrix = np.ascontiguousarray(durations, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != n:
            raise ValueError(
                f"duration matrix has shape {matrix.shape}, expected "
                f"(batch, {n})")
        return matrix

    def run(self, durations: Sequence[Sequence[float]] | np.ndarray,
            start_time: float = 0.0) -> BatchRun:
        """Simulate every row of ``durations`` against the compiled graph."""
        matrix = self._coerce_matrix(durations)
        if self.plan is not None:
            observability.count("batch.runs.fast_path")
            observability.count("batch.scenarios.fast_path", len(matrix))
            starts = self.plan.execute(matrix, start_time)
            return BatchRun(compiled=self.compiled, start_time=start_time,
                            starts=starts, durations=matrix.copy(), batched=True)
        observability.count("batch.runs.fallback")
        observability.count("batch.scenarios.fallback", len(matrix))
        return self._run_fallback(matrix, start_time)

    def _run_fallback(self, matrix: np.ndarray, start_time: float) -> BatchRun:
        from repro.core.engine import SimulationSession

        if self._fallback is None:
            self._fallback = SimulationSession(self.compiled)
        starts = np.empty_like(matrix)
        for row in range(len(matrix)):
            starts[row] = self._fallback.run(durations=matrix[row],
                                             start_time=start_time).starts
        return BatchRun(compiled=self.compiled, start_time=start_time,
                        starts=starts, durations=matrix.copy(), batched=False,
                        fallback_reason=self.fallback_reason)
