"""Single dispatch point for graph manipulations.

Every configuration a study can derive is a ``(kind, target)`` pair; this
module maps the kind onto the manipulation that implements it through a
registry the manipulation modules populate themselves
(:func:`register_manipulation`).  Adding a manipulation kind therefore
adds no branches to :mod:`repro.api.study` — the hardware axis and any
future kinds (e.g. MoE routing) register here and are immediately
reachable from ``predict``/``sweep``/the service.

Composite targets chain manipulations: ``kind`` and ``target`` carry
``+``-separated segments (``"serving+hardware"`` /
``"batch=64+gpu=B200"``) applied left to right, each handler re-deriving
the previous handler's graph.  The encoding keeps every cache, sweep
scenario and service payload a plain string pair.

Handlers raise :class:`ValueError` (optionally a :class:`ManipulationRefusal`
carrying a machine-readable ``code`` and the TP degrees of a refused
reshard); :func:`repro.api.study.derive_graph` maps them onto the typed
:class:`~repro.api.errors.PredictError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.graph import ExecutionGraph
from repro.core.manipulation.data_parallel import scale_data_parallelism
from repro.core.manipulation.pipeline_parallel import scale_pipeline_parallelism
from repro.core.perf_model import KernelPerfModel
from repro.hardware.cluster import ClusterSpec
from repro.workload.parallelism import ParallelismConfig

if TYPE_CHECKING:
    from repro.hardware.gpu import GPUSpec
    from repro.workload.inference import InferenceConfig
    from repro.workload.model_config import ModelConfig
    from repro.workload.training import TrainingConfig

#: The kinds of target configuration a manipulation can produce.  Shared
#: vocabulary between the API facade (``repro.api``) and the sweep grid
#: (``repro.sweep``): ``baseline`` is the unmodified base graph,
#: ``parallelism`` a TPxPPxDP change, ``architecture`` a model change,
#: ``serving`` a batch/prompt/TP change of an inference episode, and
#: ``hardware`` a roofline retarget onto a different GPU spec.
KIND_BASELINE = "baseline"
KIND_PARALLELISM = "parallelism"
KIND_ARCHITECTURE = "architecture"
KIND_SERVING = "serving"
KIND_HARDWARE = "hardware"

#: Separator of composite kind / target segments.
COMPOSITE_SEPARATOR = "+"


class ManipulationRefusal(ValueError):
    """A typed manipulation refusal carrying machine-readable context.

    ``code`` names the refusal reason; ``base_tp`` / ``target_tp`` carry
    the degrees of a refused tensor-parallel reshard.  The API layer
    propagates all three onto :class:`~repro.api.errors.PredictError`.
    """

    def __init__(self, message: str, *, code: str | None = None,
                 base_tp: int | None = None, target_tp: int | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.base_tp = base_tp
        self.target_tp = target_tp


@dataclass
class DeriveContext:
    """Everything a manipulation may need to derive a target graph.

    One context serves a whole composite chain; handlers read what they
    need and ignore the rest.  ``target_model`` / ``target_gpu`` carry
    non-registry payload objects the caller pre-registered for the target
    being derived (custom architectures and custom GPU specs).
    """

    base_model: "ModelConfig"
    base_parallel: ParallelismConfig
    training: "TrainingConfig"
    perf_model: KernelPerfModel
    cluster: ClusterSpec
    target_model: "ModelConfig | None" = None
    target_gpu: "GPUSpec | None" = None
    base_inference: "InferenceConfig | None" = None


#: A handler derives one segment: (graph, label, context, world_size) ->
#: (derived graph, world size after this manipulation).
Handler = Callable[[ExecutionGraph, str, DeriveContext, int],
                   tuple[ExecutionGraph, int]]

_REGISTRY: dict[str, Handler] = {}


def register_manipulation(kind: str) -> Callable[[Handler], Handler]:
    """Class-level decorator: register ``fn`` as the handler for ``kind``."""
    def decorator(fn: Handler) -> Handler:
        _REGISTRY[kind] = fn
        return fn
    return decorator


def registered_kinds() -> list[str]:
    """The registered manipulation kinds, sorted."""
    return sorted(_REGISTRY)


def derive(graph: ExecutionGraph, kind: str, target: str,
           context: DeriveContext,
           world_size: int | None = None) -> tuple[ExecutionGraph, int]:
    """Apply the (possibly composite) manipulation ``kind`` for ``target``.

    Returns the derived graph and the target's world size.  Raises
    :class:`ValueError` for unknown kinds, malformed composites and
    handler refusals.  ``world_size`` seeds the chain when ``graph`` is
    not the base replay but an already-derived prefix (callers that cache
    intermediate graphs resume the chain from it); it defaults to the
    base configuration's world size.
    """
    kinds = kind.split(COMPOSITE_SEPARATOR)
    labels = target.split(COMPOSITE_SEPARATOR)
    if len(kinds) != len(labels):
        raise ValueError(
            f"composite target '{target}' has {len(labels)} segment(s) but "
            f"its kind '{kind}' has {len(kinds)}")
    if world_size is None:
        world_size = context.base_parallel.world_size
    for segment_kind, label in zip(kinds, labels):
        handler = _REGISTRY.get(segment_kind)
        if handler is None:
            raise ValueError(f"unknown configuration kind '{segment_kind}'")
        graph, world_size = handler(graph, label, context, world_size)
    return graph, world_size


def refuse_training_manipulation(kind: str, context: DeriveContext) -> None:
    """Refuse a training-iteration manipulation of a serving-episode base."""
    if context.base_inference is not None:
        raise ValueError(
            f"the base trace is a serving episode; "
            f"'{kind}' targets apply to training iterations — use serving "
            "targets (batch=/prompt=/tp=) instead")


# -- built-in handlers --------------------------------------------------------
# Baseline and 3D-parallelism register here: the former is trivial and the
# latter spans two manipulation modules (data_parallel / pipeline_parallel),
# so neither has a single home module to self-register from.  Architecture,
# serving and hardware register in their own modules.


@register_manipulation(KIND_BASELINE)
def _derive_baseline(graph: ExecutionGraph, label: str, context: DeriveContext,
                     world_size: int) -> tuple[ExecutionGraph, int]:
    return graph, context.base_parallel.world_size


@register_manipulation(KIND_PARALLELISM)
def _derive_parallelism(graph: ExecutionGraph, label: str, context: DeriveContext,
                        world_size: int) -> tuple[ExecutionGraph, int]:
    refuse_training_manipulation(KIND_PARALLELISM, context)
    parallel = ParallelismConfig.parse(label)
    base_parallel = context.base_parallel
    if parallel.tp != base_parallel.tp:
        raise ManipulationRefusal(
            f"target parallelism {parallel.label()} changes tensor parallelism "
            f"(base TP={base_parallel.tp}, target TP={parallel.tp}); graph "
            "manipulation does not support TP modifications",
            base_tp=base_parallel.tp, target_tp=parallel.tp)
    # The cluster must cover the base trace's ranks as well as the
    # target's: perf-model rescaling evaluates the *old* collective
    # groups too, so a down-scaled target cannot shrink the cluster.
    derived_cluster = ClusterSpec.for_world_size(
        max(base_parallel.world_size, parallel.world_size))
    if parallel.pp == base_parallel.pp:
        derived = scale_data_parallelism(graph, base_parallel, parallel.dp,
                                         context.perf_model,
                                         cluster=derived_cluster)
    else:
        derived = scale_pipeline_parallelism(graph, context.base_model,
                                             base_parallel, context.training,
                                             parallel.pp, context.perf_model,
                                             new_data_parallel=parallel.dp,
                                             cluster=derived_cluster)
    return derived, parallel.world_size
