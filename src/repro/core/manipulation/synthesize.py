"""Synthesis of an execution graph for a new configuration.

Given an :class:`~repro.core.manipulation.templates.IterationTemplate`
extracted from the profiled execution graph, the synthesizer rebuilds the
graph for a target (model, parallelism) configuration:

* the 1F1B pipeline schedule is regenerated for the target pipeline degree
  (Figure 4 in the paper);
* the model's layers are re-partitioned across the new stages and the
  observed per-layer task groups are re-inserted under the new schedule;
* pipeline point-to-point transfers, data-parallel gradient buckets and the
  optimizer step are re-created at the appropriate points;
* the dependency pattern of the original trace — launch → kernel,
  intra-stream order, compute↔communication fencing via inter-stream edges,
  cross-rank alignment of send/recv pairs and the blocking synchronisations
  before the optimizer and at the end of the iteration — is preserved in
  the new graph;
* durations of shape- or topology-sensitive kernels (GEMMs, attention,
  collectives, optimizer) are re-estimated with the kernel performance
  model; all other durations are reused as observed.

The synthesized graph models one representative rank per target pipeline
stage and places all CPU tasks of a rank on a single thread (the training
loop is a single Python sequencer; the thread split in the original trace
does not change the dependency structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graph import ExecutionGraph
from repro.core.manipulation.templates import IterationTemplate, KernelTemplate
from repro.core.perf_model import KernelPerfModel, parse_gemm_shape
from repro.core.tasks import DependencyType, Task, TaskKind
from repro.hardware.cluster import ClusterSpec
from repro.trace.events import Category, CudaRuntimeName
from repro.workload.model_config import ModelConfig
from repro.workload.operators import (
    OpClass,
    OpSpec,
    embedding_backward_ops,
    embedding_forward_ops,
    head_backward_ops,
    head_forward_ops,
    layer_backward_ops,
    layer_forward_ops,
    pp_activation_bytes,
)
from repro.workload.parallelism import ParallelismConfig
from repro.workload.pipeline import one_f_one_b_schedule, stage_layers
from repro.workload.training import TrainingConfig

_CPU_THREAD = 1


@dataclass
class _RankState:
    """Per-rank bookkeeping while the new graph is being emitted."""

    rank: int
    sequence: float = 0.0
    cpu_prev: int | None = None
    stream_last: dict[int, int] = field(default_factory=dict)
    last_compute: int | None = None
    pending_to_compute: list[int] = field(default_factory=list)
    streams: set[int] = field(default_factory=set)

    def next_ts(self) -> float:
        self.sequence += 1.0
        return self.sequence


class GraphSynthesizer:
    """Builds an execution graph for a target configuration from templates."""

    def __init__(self, template: IterationTemplate, target_model: ModelConfig,
                 target_parallel: ParallelismConfig,
                 perf_model: KernelPerfModel,
                 training: TrainingConfig | None = None,
                 cluster: ClusterSpec | None = None) -> None:
        if target_parallel.tp != template.base_parallel.tp:
            raise NotImplementedError(
                "tensor-parallelism changes are not supported by graph manipulation "
                "(matching the paper's scope)"
            )
        target_parallel.validate_for_model(target_model.n_layers)
        self.template = template
        self.target_model = target_model
        self.target_parallel = target_parallel
        self.training = training or template.training
        self.cluster = cluster or ClusterSpec.for_world_size(target_parallel.world_size)
        if self.cluster.num_gpus < target_parallel.world_size:
            raise ValueError(
                f"target configuration {target_parallel.label()} needs "
                f"{target_parallel.world_size} GPUs but the cluster has {self.cluster.num_gpus}"
            )
        # Re-target the calibrated performance model onto the cluster hosting
        # the new configuration (the calibration factors carry over; the
        # topology-dependent part comes from the cluster itself).
        self.perf_model = KernelPerfModel(cluster=self.cluster,
                                          dtype_bytes=perf_model.dtype_bytes,
                                          calibration=dict(perf_model.calibration))
        self.groups = target_parallel.groups()
        self._op_tables = _OpTables(template.base_model, template.base_parallel,
                                    target_model, target_parallel, self.training)

    # -- public API ------------------------------------------------------------------

    def build(self) -> ExecutionGraph:
        """Synthesize the execution graph for the target configuration."""
        graph = ExecutionGraph(metadata={
            "synthesized": True,
            "model": self.target_model.name,
            "parallelism": self.target_parallel.label(),
            "num_microbatches": self.training.num_microbatches,
        })
        for stage in range(self.target_parallel.pp):
            rank = self.groups.rank_of(0, 0, stage)
            self._build_rank(graph, rank, stage)
        return graph

    # -- per-rank emission --------------------------------------------------------------

    def _build_rank(self, graph: ExecutionGraph, rank: int, stage: int) -> None:
        pp = self.target_parallel.pp
        state = _RankState(rank=rank)
        layers = stage_layers(self.target_model.n_layers, pp, stage)
        schedule = one_f_one_b_schedule(self.training.num_microbatches, pp, stage)
        template = self.template

        buckets = self._gradient_buckets(layers, include_embedding=(stage == 0))
        bucket_of_layer: dict[int, int] = {}
        bucket_remaining: list[set[int]] = []
        for index, (bucket_layers, _) in enumerate(buckets):
            bucket_remaining.append(set(bucket_layers))
            for layer in bucket_layers:
                bucket_of_layer[layer] = index

        self._add_cpu(graph, state, "data_loader_next", template.cpu.data_loader_us)

        for action in schedule:
            if action.kind == "F":
                self._emit_forward(graph, state, stage, layers, action.microbatch)
            else:
                self._emit_backward(graph, state, stage, layers, action.microbatch,
                                    buckets, bucket_of_layer, bucket_remaining)

        self._emit_optimizer(graph, state, stage, layers)

    def _emit_forward(self, graph: ExecutionGraph, state: _RankState, stage: int,
                      layers: list[int], microbatch: int) -> None:
        pp = self.target_parallel.pp
        template = self.template
        self._add_cpu(graph, state, "python_forward_step", template.cpu.python_step_us)

        if stage > 0:
            self._emit_p2p(graph, state, stage, direction="recv", peer_stage=stage - 1,
                           comm_key=f"act:{stage}:{microbatch}", microbatch=microbatch,
                           phase="forward")
        else:
            for kernel in template.embedding_forward:
                self._add_kernel(graph, state, kernel,
                                 duration=self._adjust(kernel, self._op_tables.embedding_forward),
                                 layer=None, microbatch=microbatch, phase="forward")

        for layer in layers:
            for kernel in template.layer_template(layer, "forward"):
                self._add_kernel(graph, state, kernel,
                                 duration=self._adjust(kernel, self._op_tables.layer_forward),
                                 layer=layer, microbatch=microbatch, phase="forward")

        if stage == pp - 1:
            for kernel in template.head_forward:
                self._add_kernel(graph, state, kernel,
                                 duration=self._adjust(kernel, self._op_tables.head_forward),
                                 layer=None, microbatch=microbatch, phase="forward")
        else:
            self._emit_p2p(graph, state, stage, direction="send", peer_stage=stage + 1,
                           comm_key=f"act:{stage + 1}:{microbatch}", microbatch=microbatch,
                           phase="forward")

    def _emit_backward(self, graph: ExecutionGraph, state: _RankState, stage: int,
                       layers: list[int], microbatch: int,
                       buckets: list[tuple[list[int], float]],
                       bucket_of_layer: dict[int, int],
                       bucket_remaining: list[set[int]]) -> None:
        pp = self.target_parallel.pp
        template = self.template
        is_last_microbatch = microbatch == self.training.num_microbatches - 1
        self._add_cpu(graph, state, "python_backward_step", template.cpu.python_step_us)

        if stage < pp - 1:
            self._emit_p2p(graph, state, stage, direction="recv", peer_stage=stage + 1,
                           comm_key=f"grad:{stage}:{microbatch}", microbatch=microbatch,
                           phase="backward")
        else:
            for kernel in template.head_backward:
                self._add_kernel(graph, state, kernel,
                                 duration=self._adjust(kernel, self._op_tables.head_backward),
                                 layer=None, microbatch=microbatch, phase="backward")

        for layer in reversed(layers):
            for kernel in template.layer_template(layer, "backward"):
                self._add_kernel(graph, state, kernel,
                                 duration=self._adjust(kernel, self._op_tables.layer_backward),
                                 layer=layer, microbatch=microbatch, phase="backward")
            if is_last_microbatch and self.target_parallel.dp > 1 and layer in bucket_of_layer:
                bucket = bucket_of_layer[layer]
                bucket_remaining[bucket].discard(layer)
                if not bucket_remaining[bucket]:
                    self._emit_dp_bucket(graph, state, bucket, buckets[bucket][1])

        if stage == 0:
            for kernel in template.embedding_backward:
                self._add_kernel(graph, state, kernel,
                                 duration=self._adjust(kernel, self._op_tables.embedding_backward),
                                 layer=None, microbatch=microbatch, phase="backward")
            if is_last_microbatch and self.target_parallel.dp > 1 and buckets:
                embedding_bucket = len(buckets) - 1
                if not bucket_remaining[embedding_bucket]:
                    self._emit_dp_bucket(graph, state, embedding_bucket,
                                         buckets[embedding_bucket][1])
        else:
            self._emit_p2p(graph, state, stage, direction="send", peer_stage=stage - 1,
                           comm_key=f"grad:{stage - 1}:{microbatch}", microbatch=microbatch,
                           phase="backward")

    def _emit_optimizer(self, graph: ExecutionGraph, state: _RankState, stage: int,
                        layers: list[int]) -> None:
        template = self.template
        self._add_cpu(graph, state, "optimizer_prep", template.cpu.python_step_us)

        dp_stream = self._dp_stream()
        if self.target_parallel.dp > 1 and dp_stream is not None:
            self._add_sync(graph, state, CudaRuntimeName.STREAM_SYNCHRONIZE, (dp_stream,))

        scale = self._optimizer_scale(stage, len(layers))
        for kernel in template.optimizer:
            duration = (template.cpu.sync_call_us if kernel.duration <= 0
                        else kernel.duration * scale)
            self._add_kernel(graph, state, kernel, duration=duration, layer=None,
                             microbatch=None, phase="optimizer")

        self._add_sync(graph, state, CudaRuntimeName.DEVICE_SYNCHRONIZE,
                       tuple(sorted(state.streams)))
        self._add_cpu(graph, state, "iteration_end_logging", template.cpu.iteration_end_us)

    # -- task helpers ----------------------------------------------------------------------

    def _add_cpu(self, graph: ExecutionGraph, state: _RankState, name: str,
                 duration: float, category: str = Category.CPU_OP,
                 sync_streams: tuple[int, ...] = (),
                 args: dict | None = None) -> Task:
        task = graph.add_task(Task(
            task_id=-1, rank=state.rank, kind=TaskKind.CPU, name=name,
            duration=max(duration, 0.0), trace_ts=state.next_ts(), thread=_CPU_THREAD,
            category=category, args=dict(args or {}), sync_streams=sync_streams,
        ))
        if state.cpu_prev is not None:
            graph.add_dependency(state.cpu_prev, task.task_id, DependencyType.CPU_INTRA_THREAD)
        state.cpu_prev = task.task_id
        return task

    def _add_sync(self, graph: ExecutionGraph, state: _RankState, name: str,
                  streams: tuple[int, ...]) -> Task:
        return self._add_cpu(graph, state, name, self.template.cpu.sync_call_us,
                             category=Category.CUDA_RUNTIME, sync_streams=streams,
                             args={"stream": streams[0]} if len(streams) == 1 else {})

    def _add_kernel(self, graph: ExecutionGraph, state: _RankState, template: KernelTemplate,
                    duration: float, layer: int | None, microbatch: int | None,
                    phase: str | None, comm_key: str | None = None,
                    args_override: dict | None = None) -> Task:
        launch = self._add_cpu(graph, state, CudaRuntimeName.LAUNCH_KERNEL,
                               self.template.cpu.launch_us, category=Category.CUDA_RUNTIME)

        args = template.clone_args()
        if args_override:
            args.update(args_override)
        if layer is not None:
            args["layer"] = layer
        if microbatch is not None:
            args["microbatch"] = microbatch
        if phase is not None:
            args["phase"] = phase

        kernel = graph.add_task(Task(
            task_id=-1, rank=state.rank, kind=TaskKind.GPU, name=template.name,
            duration=max(duration, 0.0), trace_ts=state.next_ts(), stream=template.stream,
            category=Category.KERNEL, args=args, collective_group=comm_key,
        ))
        graph.add_dependency(launch.task_id, kernel.task_id, DependencyType.CPU_TO_GPU)

        stream = template.stream
        state.streams.add(stream)
        if stream in state.stream_last:
            graph.add_dependency(state.stream_last[stream], kernel.task_id,
                                 DependencyType.GPU_INTRA_STREAM)
        state.stream_last[stream] = kernel.task_id

        is_communication = bool(args.get("collective"))
        if is_communication:
            group = args.get("group")
            if state.last_compute is not None:
                graph.add_dependency(state.last_compute, kernel.task_id,
                                     DependencyType.GPU_INTER_STREAM)
            if group == "tp":
                # Subsequent compute consumes the all-reduce output.
                state.pending_to_compute.append(kernel.task_id)
        else:
            for pending in state.pending_to_compute:
                graph.add_dependency(pending, kernel.task_id, DependencyType.GPU_INTER_STREAM)
            state.pending_to_compute = []
            state.last_compute = kernel.task_id
        return kernel

    def _emit_p2p(self, graph: ExecutionGraph, state: _RankState, stage: int, direction: str,
                  peer_stage: int, comm_key: str, microbatch: int, phase: str) -> None:
        template = (self.template.pp_send_sample if direction == "send"
                    else self.template.pp_recv_sample)
        rank = state.rank
        peer = self.groups.rank_of(0, 0, peer_stage)
        pair = (rank, peer) if direction == "send" else (peer, rank)
        size_bytes = pp_activation_bytes(self.target_model, self.training)

        if template is not None:
            duration = self.perf_model.scale_collective(
                template.duration, kind=template.args.get("collective", direction),
                old_size=float(template.args.get("size_bytes", size_bytes)),
                old_ranks=tuple(template.args.get("group_ranks", pair)) or pair,
                new_size=size_bytes, new_ranks=pair)
            base = template
        else:
            duration = self.perf_model.predict_collective_us(direction, size_bytes, pair,
                                                             group="pp")
            base = KernelTemplate(name=f"ncclDevKernel_SendRecv({direction})", op_name=None,
                                  op_class=OpClass.COMM, stream=28 if direction == "send" else 30,
                                  duration=duration,
                                  args={"collective": direction, "group": "pp"})
        overrides = {
            "collective": direction, "group": "pp", "group_ranks": list(pair),
            "group_size": 2, "size_bytes": size_bytes, "comm_id": comm_key,
        }
        kernel = self._add_kernel(graph, state, base, duration=duration, layer=None,
                                  microbatch=microbatch, phase=phase, comm_key=comm_key,
                                  args_override=overrides)
        if direction == "recv":
            state.pending_to_compute.append(kernel.task_id)

    def _emit_dp_bucket(self, graph: ExecutionGraph, state: _RankState, bucket_index: int,
                        size_bytes: float) -> None:
        new_ranks = self.groups.dp_group(state.rank).ranks
        sample = self.template.dp_bucket_sample
        if sample is not None:
            duration = self.perf_model.scale_collective(
                sample.duration, kind="all_reduce",
                old_size=float(sample.args.get("size_bytes", size_bytes)),
                old_ranks=tuple(sample.args.get("group_ranks", new_ranks)) or new_ranks,
                new_size=size_bytes, new_ranks=new_ranks)
            base = sample
        else:
            duration = self.perf_model.predict_collective_us("all_reduce", size_bytes,
                                                             new_ranks, group="dp")
            base = KernelTemplate(name="ncclDevKernel_AllReduce_Sum_bf16_RING(dp)",
                                  op_name=None, op_class=OpClass.COMM, stream=24,
                                  duration=duration,
                                  args={"collective": "all_reduce", "group": "dp"})
        overrides = {
            "collective": "all_reduce", "group": "dp", "group_ranks": list(new_ranks),
            "group_size": len(new_ranks), "size_bytes": size_bytes,
        }
        self._add_kernel(graph, state, base, duration=duration, layer=None, microbatch=None,
                         phase="backward", args_override=overrides)

    # -- duration adjustment -----------------------------------------------------------------

    def _adjust(self, kernel: KernelTemplate, table: "_OpPair") -> float:
        """Re-estimate a template kernel's duration for the target configuration."""
        op_name = kernel.op_name
        if op_name is None:
            return kernel.duration
        base_op = table.base.get(op_name)
        target_op = table.target.get(op_name)
        if base_op is None or target_op is None:
            return kernel.duration

        if base_op.is_communication and target_op.is_communication:
            old_ranks = tuple(kernel.args.get("group_ranks", ())) or \
                self.groups.tp_group(0).ranks
            return self.perf_model.scale_collective(
                kernel.duration, kind=base_op.collective.kind,
                old_size=base_op.collective.size_bytes, old_ranks=old_ranks,
                new_size=target_op.collective.size_bytes, new_ranks=old_ranks)
        if base_op.op_class == OpClass.GEMM:
            old_shape = parse_gemm_shape(kernel.name) or (base_op.m, base_op.n, base_op.k)
            return self.perf_model.scale_gemm(kernel.duration, old_shape,
                                              (target_op.m, target_op.n, target_op.k))
        if base_op.op_class == OpClass.ATTENTION:
            return self.perf_model.scale_flops_bound(kernel.duration, base_op.flops,
                                                     target_op.flops)
        return self.perf_model.scale_memory_bound(kernel.duration, base_op.bytes_accessed,
                                                  target_op.bytes_accessed)

    # -- sizing helpers -------------------------------------------------------------------------

    def _gradient_buckets(self, layers: list[int],
                          include_embedding: bool) -> list[tuple[list[int], float]]:
        grad_bytes_per_layer = (self.target_model.layer_parameters / self.target_parallel.tp
                                * self.training.dtype_bytes)
        ordered = sorted(layers, reverse=True)
        buckets: list[tuple[list[int], float]] = []
        for start in range(0, len(ordered), self.training.gradient_bucket_layers):
            chunk = ordered[start:start + self.training.gradient_bucket_layers]
            buckets.append((chunk, grad_bytes_per_layer * len(chunk)))
        if include_embedding:
            embedding_bytes = (self.target_model.embedding_parameters / self.target_parallel.tp
                               * self.training.dtype_bytes)
            buckets.append(([], embedding_bytes))
        return buckets

    def _optimizer_scale(self, stage: int, n_layers: int) -> float:
        template = self.template
        base_params = template.optimizer_stage_layers * template.base_model.layer_parameters
        if template.optimizer_includes_embedding:
            base_params += template.base_model.embedding_parameters
        target_params = n_layers * self.target_model.layer_parameters
        if stage == 0:
            target_params += self.target_model.embedding_parameters
        if base_params <= 0:
            return 1.0
        return target_params / base_params

    def _dp_stream(self) -> int | None:
        if self.template.dp_bucket_sample is not None:
            return self.template.dp_bucket_sample.stream
        return 24


@dataclass(frozen=True)
class _OpPair:
    """Op-name → OpSpec lookup tables for the base and target configurations."""

    base: dict[str, OpSpec]
    target: dict[str, OpSpec]


class _OpTables:
    """All base/target op lookups used for duration adjustment."""

    def __init__(self, base_model: ModelConfig, base_parallel: ParallelismConfig,
                 target_model: ModelConfig, target_parallel: ParallelismConfig,
                 training: TrainingConfig) -> None:
        def table(factory) -> _OpPair:
            return _OpPair(
                base={op.name: op for op in factory(base_model, base_parallel, training)},
                target={op.name: op for op in factory(target_model, target_parallel, training)},
            )

        self.layer_forward = table(layer_forward_ops)
        self.layer_backward = table(layer_backward_ops)
        self.embedding_forward = table(embedding_forward_ops)
        self.embedding_backward = table(embedding_backward_ops)
        self.head_forward = table(head_forward_ops)
        self.head_backward = table(head_backward_ops)


def synthesize_graph(template: IterationTemplate, target_model: ModelConfig,
                     target_parallel: ParallelismConfig, perf_model: KernelPerfModel,
                     training: TrainingConfig | None = None,
                     cluster: ClusterSpec | None = None) -> ExecutionGraph:
    """Convenience wrapper around :class:`GraphSynthesizer`."""
    return GraphSynthesizer(template, target_model, target_parallel, perf_model,
                            training=training, cluster=cluster).build()
