"""Graph manipulation: derive execution graphs for new configurations.

This package implements §3.4 of the paper.  From the execution graph built
out of a profiled trace it derives new graphs for

* different data-parallel degrees (:func:`scale_data_parallelism`) — only
  the communication tasks change cost, per the paper;
* different pipeline-parallel degrees
  (:func:`scale_pipeline_parallelism`) — the layers and their tasks are
  re-partitioned into new stages, the 1F1B schedule is regenerated and
  point-to-point communication is re-inserted at the new boundaries;
* different model architectures (:func:`change_architecture`) — layers are
  duplicated or removed and the affected kernels (GEMMs, attention and
  communication) are re-timed with the kernel performance model.

Tensor-parallelism changes are not supported, matching the paper's stated
scope ("we currently do not support modifications to tensor parallelism").
"""

from repro.core.manipulation.templates import (
    CpuOverheads,
    IterationTemplate,
    KernelTemplate,
    extract_iteration_template,
)
from repro.core.manipulation.synthesize import GraphSynthesizer, synthesize_graph
from repro.core.manipulation.data_parallel import scale_data_parallelism
from repro.core.manipulation.pipeline_parallel import scale_pipeline_parallelism
from repro.core.manipulation.architecture import change_architecture
from repro.core.manipulation.serving import rescale_serving_graph

#: The kinds of target configuration a manipulation can produce.  Shared
#: vocabulary between the API facade (``repro.api``) and the sweep grid
#: (``repro.sweep``): ``baseline`` is the unmodified base graph,
#: ``parallelism`` a TPxPPxDP change, ``architecture`` a model change,
#: ``serving`` a batch/prompt/TP change of an inference episode.
KIND_BASELINE = "baseline"
KIND_PARALLELISM = "parallelism"
KIND_ARCHITECTURE = "architecture"
KIND_SERVING = "serving"

__all__ = [
    "KIND_ARCHITECTURE",
    "KIND_BASELINE",
    "KIND_PARALLELISM",
    "KIND_SERVING",
    "KernelTemplate",
    "CpuOverheads",
    "IterationTemplate",
    "extract_iteration_template",
    "GraphSynthesizer",
    "synthesize_graph",
    "scale_data_parallelism",
    "scale_pipeline_parallelism",
    "change_architecture",
    "rescale_serving_graph",
]
