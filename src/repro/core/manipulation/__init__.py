"""Graph manipulation: derive execution graphs for new configurations.

This package implements §3.4 of the paper.  From the execution graph built
out of a profiled trace it derives new graphs for

* different data-parallel degrees (:func:`scale_data_parallelism`) — only
  the communication tasks change cost, per the paper;
* different pipeline-parallel degrees
  (:func:`scale_pipeline_parallelism`) — the layers and their tasks are
  re-partitioned into new stages, the 1F1B schedule is regenerated and
  point-to-point communication is re-inserted at the new boundaries;
* different model architectures (:func:`change_architecture`) — layers are
  duplicated or removed and the affected kernels (GEMMs, attention and
  communication) are re-timed with the kernel performance model;
* different hardware (:func:`retarget_hardware`) — every kernel is re-timed
  by the roofline ratio of the analytical cost models evaluated on the
  profiled and on a hypothetical :class:`~repro.hardware.gpu.GPUSpec`,
  collectives by the alpha-beta model on the retargeted fabric.

Each manipulation registers itself with the dispatch registry
(:mod:`repro.core.manipulation.dispatch`), which is the single point the
API facade routes ``(kind, target)`` configurations through — including
composite ``workload+hardware`` chains.

Tensor-parallelism changes are not supported, matching the paper's stated
scope ("we currently do not support modifications to tensor parallelism").
"""

from repro.core.manipulation.dispatch import (
    COMPOSITE_SEPARATOR,
    KIND_ARCHITECTURE,
    KIND_BASELINE,
    KIND_HARDWARE,
    KIND_PARALLELISM,
    KIND_SERVING,
    DeriveContext,
    ManipulationRefusal,
    derive,
    register_manipulation,
    registered_kinds,
)
from repro.core.manipulation.templates import (
    CpuOverheads,
    IterationTemplate,
    KernelTemplate,
    extract_iteration_template,
)
from repro.core.manipulation.synthesize import GraphSynthesizer, synthesize_graph
from repro.core.manipulation.data_parallel import scale_data_parallelism
from repro.core.manipulation.pipeline_parallel import scale_pipeline_parallelism
from repro.core.manipulation.architecture import change_architecture
from repro.core.manipulation.serving import rescale_serving_graph
from repro.core.manipulation.hardware import retarget_hardware

__all__ = [
    "KIND_ARCHITECTURE",
    "KIND_BASELINE",
    "KIND_HARDWARE",
    "KIND_PARALLELISM",
    "KIND_SERVING",
    "COMPOSITE_SEPARATOR",
    "DeriveContext",
    "ManipulationRefusal",
    "derive",
    "register_manipulation",
    "registered_kinds",
    "KernelTemplate",
    "CpuOverheads",
    "IterationTemplate",
    "extract_iteration_template",
    "GraphSynthesizer",
    "synthesize_graph",
    "scale_data_parallelism",
    "scale_pipeline_parallelism",
    "change_architecture",
    "rescale_serving_graph",
    "retarget_hardware",
]
