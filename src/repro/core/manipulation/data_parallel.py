"""Data-parallelism manipulation.

Per §3.4 of the paper, changing the data-parallel degree leaves every
worker's local computation unchanged: "only the communication needs
adjustment by assigning new execution time to the communication tasks".
This module therefore copies the execution graph and re-times every
data-parallel collective for the new group size and placement (which is
what makes scaling beyond one node more expensive per byte).
"""

from __future__ import annotations

from repro.core.graph import ExecutionGraph
from repro.core.perf_model import KernelPerfModel
from repro.core.tasks import TaskKind
from repro.hardware.cluster import ClusterSpec
from repro.workload.parallelism import ParallelismConfig


def scale_data_parallelism(graph: ExecutionGraph, base_parallel: ParallelismConfig,
                           new_data_parallel: int, perf_model: KernelPerfModel,
                           cluster: ClusterSpec | None = None) -> ExecutionGraph:
    """Derive the execution graph for a new data-parallel degree.

    Parameters
    ----------
    graph:
        Execution graph built from the base configuration's trace.
    base_parallel:
        The base TP×PP×DP configuration the trace was collected with.
    new_data_parallel:
        Target data-parallel degree (>= 1).
    perf_model:
        Kernel performance model (calibrated from the base trace) used to
        re-time the data-parallel collectives.
    cluster:
        Cluster hosting the target configuration; defaults to a cluster
        sized exactly for the target world size.
    """
    if new_data_parallel < 1:
        raise ValueError("data parallel degree must be >= 1")
    target_parallel = base_parallel.with_changes(data_parallel=new_data_parallel)
    if cluster is None:
        cluster = ClusterSpec.for_world_size(target_parallel.world_size)
    target_groups = target_parallel.groups()
    base_groups = base_parallel.groups()

    new_graph = ExecutionGraph(metadata={
        **graph.metadata,
        "manipulated": "data_parallel",
        "parallelism": target_parallel.label(),
    })
    id_map: dict[int, int] = {}
    for task in graph.task_list():
        clone = task.copy()
        clone.task_id = -1
        if (clone.kind == TaskKind.GPU and clone.args.get("group") == "dp"
                and clone.args.get("collective")):
            old_ranks = tuple(clone.args.get("group_ranks", ()))
            if not old_ranks:
                old_ranks = base_groups.dp_group(task.rank).ranks
            # The representative rank keeps its pipeline-stage coordinates;
            # only its data-parallel group changes size and node placement.
            stage = min(base_groups.pp_index(task.rank), target_parallel.pp - 1)
            new_rank = target_groups.rank_of(0, 0, stage)
            new_ranks = target_groups.dp_group(new_rank).ranks
            size_bytes = float(clone.args.get("size_bytes", 0.0))
            scaled_model = KernelPerfModel(cluster=cluster, dtype_bytes=perf_model.dtype_bytes,
                                           calibration=dict(perf_model.calibration))
            if new_data_parallel == 1:
                clone.duration = 0.0
            else:
                clone.duration = scaled_model.scale_collective(
                    task.duration, kind=str(clone.args["collective"]),
                    old_size=size_bytes, old_ranks=old_ranks,
                    new_size=size_bytes, new_ranks=new_ranks)
            clone.args["group_ranks"] = list(new_ranks)
            clone.args["group_size"] = len(new_ranks)
        id_map[task.task_id] = new_graph.add_task(clone).task_id

    for dependency in graph.dependencies:
        new_graph.add_dependency(id_map[dependency.src], id_map[dependency.dst],
                                 dependency.dep_type)
    return new_graph
