"""Model-architecture manipulation.

Per §3.4 / §4.3.2 of the paper:

* changing the **number of layers** duplicates (or drops) layers and their
  tasks, re-inserting them with the original dependency pattern;
* changing the **hidden size** or **feed-forward size** updates the input
  dimensions of the affected operators and re-estimates the execution time
  of the shape-sensitive kernels (GEMMs, attention, collectives) with the
  kernel performance model.

Both are expressed through template extraction + graph synthesis against a
modified :class:`~repro.workload.model_config.ModelConfig`.
"""

from __future__ import annotations

from repro.core.graph import ExecutionGraph
from repro.core.manipulation.dispatch import (
    KIND_ARCHITECTURE,
    DeriveContext,
    refuse_training_manipulation,
    register_manipulation,
)
from repro.core.manipulation.synthesize import GraphSynthesizer
from repro.core.manipulation.templates import extract_iteration_template
from repro.core.perf_model import KernelPerfModel
from repro.hardware.cluster import ClusterSpec
from repro.workload.model_config import ModelConfig, gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


def change_architecture(graph: ExecutionGraph, base_model: ModelConfig,
                        base_parallel: ParallelismConfig, training: TrainingConfig,
                        target_model: ModelConfig, perf_model: KernelPerfModel,
                        cluster: ClusterSpec | None = None) -> ExecutionGraph:
    """Derive the execution graph for a modified model architecture.

    The deployment configuration (TP×PP×DP) is kept; only the model changes,
    matching the paper's §4.3.2 evaluation where all variants train under
    the base parallelism configuration.
    """
    if cluster is None:
        cluster = ClusterSpec.for_world_size(base_parallel.world_size)
    template = extract_iteration_template(graph, base_model, base_parallel, training)
    synthesizer = GraphSynthesizer(template, target_model, base_parallel, perf_model,
                                   training=training, cluster=cluster)
    return synthesizer.build()


@register_manipulation(KIND_ARCHITECTURE)
def _derive_architecture(graph: ExecutionGraph, label: str,
                         context: DeriveContext,
                         world_size: int) -> tuple[ExecutionGraph, int]:
    refuse_training_manipulation(KIND_ARCHITECTURE, context)
    target_model = context.target_model
    if target_model is None or target_model.name != label:
        try:
            target_model = gpt3_model(label)
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from exc
    derived = change_architecture(graph, context.base_model,
                                  context.base_parallel, context.training,
                                  target_model, context.perf_model,
                                  cluster=context.cluster)
    return derived, context.base_parallel.world_size
