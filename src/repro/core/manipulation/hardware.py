"""Hardware retargeting: re-time a profiled trace for a hypothetical GPU.

The paper's §3.4 recipe — observed duration × analytical(new) /
analytical(old), so systematic model error cancels in the ratio — extends
naturally from shape changes to *hardware* changes: the analytical models
in :mod:`repro.kernels` are parameterised by a :class:`GPUSpec`, so
evaluating them once on the profiled part and once on a hypothetical part
yields a per-kernel roofline rescaling factor.  Every GPU task is
classified through the same cost model the calibration pass used:

* **communication** — the alpha-beta collective model on a target cluster
  whose intra-node tier runs at the new part's NVLink bandwidth (the
  inter-node fabric is held fixed: a GPU swap does not re-cable the
  datacenter);
* **GEMM** — the roofline ratio of :func:`~repro.kernels.gemm.gemm_time_us`
  at the shape parsed from the kernel name (compute-bound GEMMs scale by
  the TFLOPS ratio, bandwidth-bound ones by the HBM ratio, automatically);
* **attention / decode attention** — roofline ratios over the FLOPs and
  bytes the emulator recorded in the event args;
* **memory-bound classes** (layernorm, elementwise, optimizer, ...) — the
  HBM-bandwidth ratio applied to the duration in excess of the fixed
  kernel overhead, with the overhead swapped for the target part's
  (`kernel_fixed_overhead_us` delta);
* **anything else with recorded FLOPs + bytes** — a generic roofline max
  of the compute and memory ratios.

Kernels that fit none of these classes cannot be retargeted confidently.
A small unclassified residue is tolerated (its durations are kept
verbatim); past :data:`UNCLASSIFIED_BUDGET` of total GPU time the
manipulation refuses with a typed error, as does a target whose
``memory_gb`` cannot hold the workload's estimated rank-local footprint —
mirroring how unsupported TP changes are refused rather than guessed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.core.graph import ExecutionGraph
from repro.core.manipulation.dispatch import (
    KIND_HARDWARE,
    DeriveContext,
    register_manipulation,
)
from repro.core.perf_model import KernelPerfModel, parse_gemm_shape
from repro.core.tasks import Task, TaskKind
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import GPUSpec, resolve_gpu
from repro.kernels.attention import attention_time_us
from repro.kernels.collectives import collective_time_us, point_to_point_time_us
from repro.kernels.decode import decode_attention_time_us
from repro.kernels.gemm import gemm_time_us
from repro.kernels.memory_bound import BANDWIDTH_EFFICIENCY
from repro.observability import tracing as observability
from repro.trace.events import CudaRuntimeName
from repro.workload.inference import InferenceConfig
from repro.workload.model_config import ModelConfig
from repro.workload.operators import CollectiveKind, OpClass
from repro.workload.parallelism import ParallelismConfig

#: Machine-readable refusal code: the target GPU's memory cannot hold the
#: workload's estimated rank-local footprint.
REFUSE_CAPACITY = "hardware-memory-capacity"

#: Machine-readable refusal code: too much GPU time sits in kernels the
#: cost models cannot classify, so the retarget would be a guess.
REFUSE_UNCLASSIFIED = "hardware-unclassified-kernel"

#: Fraction of total GPU time that may stay unclassified (kept verbatim)
#: before the retarget refuses.
UNCLASSIFIED_BUDGET = 0.01

#: Bytes per parameter of mixed-precision training state: bf16 weights and
#: gradients (2 + 2) plus fp32 master weights and two Adam moments
#: (4 + 4 + 4) — the standard Megatron accounting, with fp32 gradient
#: accumulation folded in.  Activations are deliberately excluded: the
#: estimate is a lower bound, and refusing on a lower-bound overflow is
#: always sound.
TRAINING_BYTES_PER_PARAM = 18.0


class HardwareManipulationError(ValueError):
    """A typed hardware-retarget refusal carrying a machine code.

    Callers that map manipulation errors onto
    :class:`~repro.api.errors.PredictError` propagate :attr:`code` so
    tools can branch on the refusal reason without parsing messages.
    """

    def __init__(self, message: str, *, code: str) -> None:
        super().__init__(message)
        self.code = code


def estimate_rank_memory_bytes(model: ModelConfig, parallel: ParallelismConfig,
                               *, inference: InferenceConfig | None = None,
                               dtype_bytes: int = 2) -> float:
    """Lower-bound estimate of one rank's persistent memory footprint.

    Weights shard over TP×PP (data parallelism replicates).  Training
    ranks additionally hold gradients and fp32 optimizer state
    (:data:`TRAINING_BYTES_PER_PARAM`); serving ranks hold bf16 weights
    plus the fully-decoded KV cache.  Activations are excluded, so an
    overflow of this estimate is definitely an overflow.
    """
    params_per_rank = model.num_parameters / (parallel.tp * parallel.pp)
    if inference is None:
        return params_per_rank * TRAINING_BYTES_PER_PARAM
    weights = params_per_rank * dtype_bytes
    return weights + inference.kv_cache_bytes(model, parallel)


def _check_capacity(gpu: GPUSpec, model: ModelConfig, parallel: ParallelismConfig,
                    inference: InferenceConfig | None, dtype_bytes: int) -> None:
    required = estimate_rank_memory_bytes(model, parallel, inference=inference,
                                          dtype_bytes=dtype_bytes)
    capacity = gpu.memory_gb * 2**30
    if required > capacity:
        workload = "serving" if inference is not None else "training"
        raise HardwareManipulationError(
            f"retargeting to {gpu.name} would not fit: the {workload} "
            f"workload needs at least {required / 2**30:.1f} GiB per rank "
            f"(weights sharded {parallel.tp}x{parallel.pp} over TPxPP"
            f"{', plus KV cache' if inference is not None else ', plus gradients and optimizer state'}) "
            f"but {gpu.name} has {gpu.memory_gb:g} GiB; shard further or "
            "pick a larger-memory spec", code=REFUSE_CAPACITY)


def _effective_configuration(graph: ExecutionGraph,
                             base_parallel: ParallelismConfig,
                             base_inference: InferenceConfig | None,
                             ) -> tuple[ParallelismConfig, InferenceConfig | None]:
    """The configuration the graph actually encodes.

    Upstream manipulations in a composite chain (serving tp=, parallelism
    changes) record the derived configuration in the graph metadata; the
    capacity check must judge *that* deployment, not the base one.
    """
    parallel = base_parallel
    label = graph.metadata.get("parallelism")
    if label:
        try:
            parallel = ParallelismConfig.parse(str(label))
        except ValueError:
            parallel = base_parallel
    inference = base_inference
    payload = graph.metadata.get("inference")
    if base_inference is not None and isinstance(payload, Mapping):
        try:
            inference = InferenceConfig.from_json(payload)
        except (TypeError, ValueError):
            inference = base_inference
    return parallel, inference


def _cluster_pair(graph: ExecutionGraph, gpu: GPUSpec,
                  base_cluster: ClusterSpec) -> tuple[ClusterSpec, ClusterSpec]:
    """Profiled and target clusters covering every rank the graph touches."""
    needed = 1
    for task in graph.tasks.values():
        needed = max(needed, task.rank + 1)
        ranks = task.args.get("group_ranks")
        if ranks:
            needed = max(needed, max(ranks) + 1)
    old_cluster = replace(base_cluster, num_gpus=max(base_cluster.num_gpus, needed))
    # A GPU swap swaps the NVLink generation with it; the inter-node
    # fabric (NICs, switches) is datacenter infrastructure and stays.
    new_network = replace(base_cluster.network,
                          intra_node_bandwidth_gbps=gpu.nvlink_bandwidth_gbps)
    new_cluster = replace(old_cluster, gpu=gpu, network=new_network)
    return old_cluster, new_cluster


def _scale_overheaded(observed: float, variable_ratio: float,
                      old_gpu: GPUSpec, new_gpu: GPUSpec) -> float:
    """Swap the fixed kernel overhead and rescale the variable remainder."""
    variable = max(observed - old_gpu.kernel_fixed_overhead_us, 0.0)
    return new_gpu.kernel_fixed_overhead_us + variable * variable_ratio


def _roofline_us(flops: float, bytes_accessed: float, gpu: GPUSpec) -> float:
    """Raw-peak roofline time; efficiencies cancel in old/new ratios."""
    compute_us = flops / gpu.bf16_flops_per_us
    memory_us = bytes_accessed / gpu.memory_bytes_per_us
    return max(compute_us, memory_us) + gpu.kernel_fixed_overhead_us


#: A factor scales the observed duration one of two ways: ``RATIO``
#: multiplies it outright; ``OVERHEADED`` multiplies only the part in
#: excess of the profiled fixed kernel overhead and swaps the overhead for
#: the target part's (:func:`_scale_overheaded`).
_RATIO = "ratio"
_OVERHEADED = "overheaded"


def _communication_pair(task: Task, old_cluster: ClusterSpec,
                        new_cluster: ClusterSpec) -> tuple[float, float] | None:
    kind = task.args.get("collective")
    ranks = tuple(task.args.get("group_ranks", ()))
    if kind is None or not ranks:
        # A name-marked NCCL kernel without collective metadata cannot be
        # attributed to a link tier.
        return None
    size_bytes = float(task.args.get("size_bytes", 0.0))
    try:
        if kind in CollectiveKind.POINT_TO_POINT:
            old = point_to_point_time_us(size_bytes, ranks[0], ranks[-1], old_cluster)
            new = point_to_point_time_us(size_bytes, ranks[0], ranks[-1], new_cluster)
        else:
            old = collective_time_us(kind, size_bytes, ranks, old_cluster)
            new = collective_time_us(kind, size_bytes, ranks, new_cluster)
    except ValueError:
        return None
    if old <= 0:
        return 1.0, 1.0
    return new, old


def _retime_factor(task: Task, old_gpu: GPUSpec, new_gpu: GPUSpec,
                   old_cluster: ClusterSpec, new_cluster: ClusterSpec,
                   dtype_bytes: int) -> tuple[str, str, float, float] | None:
    """Classify one GPU kernel: (category, mode, new, old), or ``None``.

    The factor depends only on the kernel's analytical signature, never on
    its observed duration, so callers memoize it by signature
    (:func:`_factor_key`) — the same kernel repeats across layers,
    microbatches and ranks, and the analytical models are the expensive
    part of the retarget.  ``_RATIO`` factors keep the analytical pair
    (new, old) rather than their quotient so the applied expression
    ``observed * new / old`` is bit-identical to an unmemoized retime.
    """
    if task.is_communication:
        pair = _communication_pair(task, old_cluster, new_cluster)
        if pair is None:
            return None
        return ("communication", _RATIO) + pair
    op_class = task.op_class
    flops = float(task.args.get("flops", 0.0))
    bytes_accessed = float(task.args.get("bytes_accessed", 0.0))
    compute_ratio = old_gpu.bf16_flops_per_us / new_gpu.bf16_flops_per_us
    bandwidth_ratio = old_gpu.memory_bytes_per_us / new_gpu.memory_bytes_per_us
    if op_class == OpClass.GEMM:
        shape = parse_gemm_shape(task.name)
        if shape is not None:
            old = gemm_time_us(*shape, dtype_bytes=dtype_bytes, gpu=old_gpu)
            new = gemm_time_us(*shape, dtype_bytes=dtype_bytes, gpu=new_gpu)
            return "gemm", _RATIO, new, old
        if flops > 0 and bytes_accessed > 0:
            ratio = _roofline_us(flops, bytes_accessed, new_gpu) \
                / _roofline_us(flops, bytes_accessed, old_gpu)
            return "gemm", _RATIO, ratio, 1.0
        # A GEMM is confidently compute-bound even without a shape.
        return "gemm", _OVERHEADED, compute_ratio, 1.0
    if op_class == OpClass.DECODE_ATTENTION and bytes_accessed > 0:
        old = decode_attention_time_us(flops, bytes_accessed, old_gpu)
        new = decode_attention_time_us(flops, bytes_accessed, new_gpu)
        return "decode_attention", _RATIO, new, old
    if op_class == OpClass.ATTENTION:
        if flops > 0 or bytes_accessed > 0:
            old = attention_time_us(flops, bytes_accessed, old_gpu)
            new = attention_time_us(flops, bytes_accessed, new_gpu)
            return "attention", _RATIO, new, old
        return "attention", _OVERHEADED, compute_ratio, 1.0
    if op_class in BANDWIDTH_EFFICIENCY:
        # Bandwidth-bound by class: the per-class efficiency cancels, so
        # the variable part scales by the raw HBM ratio and the fixed
        # overhead swaps for the target part's.
        return "memory_bound", _OVERHEADED, bandwidth_ratio, 1.0
    if flops > 0 and bytes_accessed > 0:
        ratio = _roofline_us(flops, bytes_accessed, new_gpu) \
            / _roofline_us(flops, bytes_accessed, old_gpu)
        return "roofline", _RATIO, ratio, 1.0
    return None


def _factor_key(task: Task) -> tuple:
    """Everything :func:`_retime_factor` reads besides the duration."""
    return (task.name, task.op_class, task.args.get("flops"),
            task.args.get("bytes_accessed"), task.args.get("collective"),
            task.args.get("size_bytes"),
            tuple(task.args.get("group_ranks", ())))


def _retime_gpu_task(task: Task, old_gpu: GPUSpec, new_gpu: GPUSpec,
                     old_cluster: ClusterSpec, new_cluster: ClusterSpec,
                     dtype_bytes: int,
                     memo: dict[tuple, tuple[str, str, float, float] | None],
                     ) -> tuple[str, float] | None:
    """Retime one GPU kernel via the memoized factor; ``None`` = unclassified."""
    key = _factor_key(task)
    try:
        factor = memo[key]
    except KeyError:
        factor = memo[key] = _retime_factor(task, old_gpu, new_gpu,
                                            old_cluster, new_cluster,
                                            dtype_bytes)
    if factor is None:
        return None
    category, mode, new, old = factor
    if mode == _RATIO:
        return category, task.duration * new / old
    return category, _scale_overheaded(task.duration, new, old_gpu, new_gpu)


def retarget_hardware(graph: ExecutionGraph, gpu: GPUSpec, *,
                      base_model: ModelConfig,
                      base_parallel: ParallelismConfig,
                      perf_model: KernelPerfModel,
                      base_cluster: ClusterSpec,
                      base_inference: InferenceConfig | None = None,
                      ) -> ExecutionGraph:
    """Derive the execution graph of the same workload on a different GPU.

    Parameters
    ----------
    graph:
        Execution graph to retarget — the base replay or the output of an
        upstream manipulation in a composite chain.
    gpu:
        The hypothetical target part.
    base_model, base_parallel, base_inference:
        The configuration the base trace was collected with (composite
        chains override parallelism/inference from the graph metadata).
    perf_model:
        Kernel performance model calibrated on the profiled hardware;
        supplies ``dtype_bytes`` (ratios need no calibration factors —
        they cancel).
    base_cluster:
        The cluster the trace was profiled on; its GPU is the ratio
        denominator and its fabric is carried over (with the NVLink tier
        swapped for the target part's).

    Raises :class:`HardwareManipulationError` (:data:`REFUSE_CAPACITY`,
    :data:`REFUSE_UNCLASSIFIED`) when the retarget would be unsound.
    """
    old_gpu = base_cluster.gpu
    dtype_bytes = perf_model.dtype_bytes
    parallel, inference = _effective_configuration(graph, base_parallel,
                                                   base_inference)
    _check_capacity(gpu, base_model, parallel, inference, dtype_bytes)
    old_cluster, new_cluster = _cluster_pair(graph, gpu, base_cluster)
    launch_ratio = (gpu.kernel_launch_overhead_us
                    / old_gpu.kernel_launch_overhead_us
                    if old_gpu.kernel_launch_overhead_us > 0 else 1.0)

    old_totals: dict[str, float] = {}
    new_totals: dict[str, float] = {}
    unclassified_us = 0.0
    gpu_us = 0.0
    unclassified_names: dict[str, float] = {}
    factor_memo: dict[tuple, tuple[str, str, float, float] | None] = {}
    # The retarget changes only durations, so the new graph shares the base
    # graph's topology and tasks, copying a task only when its duration
    # actually moves (copy-on-write): for a same-die target like H100→H200
    # every compute-bound kernel rescales by exactly 1.0 and is shared.
    new_tasks: dict[int, Task] = {}
    for task_id, task in graph.tasks.items():
        if task.kind == TaskKind.GPU and task.duration > 0:
            gpu_us += task.duration
            retimed = _retime_gpu_task(task, old_gpu, gpu, old_cluster,
                                       new_cluster, dtype_bytes, factor_memo)
            if retimed is None:
                unclassified_us += task.duration
                unclassified_names[task.name] = (
                    unclassified_names.get(task.name, 0.0) + task.duration)
            else:
                category, duration = retimed
                old_totals[category] = old_totals.get(category, 0.0) + task.duration
                new_totals[category] = new_totals.get(category, 0.0) + duration
                if duration != task.duration:
                    task = task.copy()
                    task.duration = duration
        elif (task.kind == TaskKind.CPU and task.duration > 0
                and task.name == CudaRuntimeName.LAUNCH_KERNEL
                and launch_ratio != 1.0):
            old_totals["launch"] = old_totals.get("launch", 0.0) + task.duration
            duration = task.duration * launch_ratio
            new_totals["launch"] = new_totals.get("launch", 0.0) + duration
            task = task.copy()
            task.duration = duration
        new_tasks[task_id] = task

    if gpu_us > 0 and unclassified_us > UNCLASSIFIED_BUDGET * gpu_us:
        worst = sorted(unclassified_names.items(), key=lambda item: -item[1])[:3]
        examples = ", ".join(f"'{name}' ({time:.0f}us)" for name, time in worst)
        raise HardwareManipulationError(
            f"cannot retarget to {gpu.name}: "
            f"{unclassified_us / gpu_us:.0%} of GPU time sits in kernels the "
            f"cost models cannot classify (e.g. {examples}); a confident "
            "roofline rescale needs op-class or flops/bytes metadata on "
            "these kernels", code=REFUSE_UNCLASSIFIED)

    factors = {category: new_totals[category] / old_totals[category]
               for category in sorted(old_totals) if old_totals[category] > 0}
    for category, factor in factors.items():
        observability.gauge(f"hardware.rescale.{category}", factor)

    new_graph = graph.clone(tasks=new_tasks)
    previous = graph.metadata.get("manipulated")
    new_graph.metadata["manipulated"] = \
        f"{previous}+hardware" if previous else "hardware"
    new_graph.metadata["gpu"] = gpu.name
    new_graph.metadata["hardware_rescale"] = factors
    return new_graph


@register_manipulation(KIND_HARDWARE)
def _derive_hardware(graph: ExecutionGraph, label: str, context: DeriveContext,
                     world_size: int) -> tuple[ExecutionGraph, int]:
    name = label[len("gpu="):] if label.startswith("gpu=") else label
    gpu = context.target_gpu
    if gpu is None or gpu.name != name:
        gpu = resolve_gpu(name)
    derived = retarget_hardware(graph, gpu, base_model=context.base_model,
                                base_parallel=context.base_parallel,
                                perf_model=context.perf_model,
                                base_cluster=context.cluster,
                                base_inference=context.base_inference)
    return derived, world_size
