"""Serving (inference) graph manipulation.

A serving episode's task graph is *topology-invariant* under the three
what-if knobs the inference workload family exposes — request batch size,
prompt length and tensor-parallel degree: the same kernels run in the same
order, only their shapes (and the TP communicator) change.  Deriving the
graph for a serving target is therefore a pure re-timing pass: every GPU
task is matched back to its operator (the emulator records ``op_name``,
``phase`` and the decode-step index in the event args), the operator's
shape is regenerated for the base and the target configuration from the
same decomposition the emulator used
(:mod:`repro.workload.inference`), and the observed duration is rescaled
by the analytical ratio — the paper's §3.4 recipe, where systematic model
error cancels in the ratio.

Knobs that would change the topology are rejected up front with
:class:`ValueError` (callers map it onto the typed
:class:`~repro.api.errors.PredictError`): changing ``decode_length`` adds
or removes whole decode steps, and resharding a TP=1 base *up* would have
to invent collective tasks that the base trace never contained.
"""

from __future__ import annotations

from repro.core.graph import ExecutionGraph
from repro.core.manipulation.dispatch import (
    KIND_SERVING,
    DeriveContext,
    register_manipulation,
)
from repro.core.perf_model import KernelPerfModel
from repro.core.tasks import Task, TaskKind
from repro.hardware.cluster import ClusterSpec
from repro.workload.arrivals import STREAM_METADATA_KEY, StreamPlan
from repro.workload.inference import (
    InferenceConfig,
    ServingTarget,
    decode_embedding_ops,
    decode_head_ops,
    decode_layer_ops,
    prefill_embedding_ops,
    prefill_head_ops,
    prefill_layer_ops,
    stream_decode_embedding_ops,
    stream_decode_head_ops,
    stream_decode_layer_ops,
    stream_prefill_embedding_ops,
    stream_prefill_head_ops,
    stream_prefill_layer_ops,
    validate_tp_for_model,
)
from repro.workload.model_config import ModelConfig
from repro.workload.operators import OpClass, OpSpec
from repro.workload.parallelism import ParallelismConfig

#: Lookup key of one operator instance: (phase, op_name, decode step).
_OpKey = tuple[str, str, int | None]

#: Machine-readable refusal code: ``batch=`` targets on a continuous-
#: batching stream base (the cap drives the admission schedule, so the
#: derived program's topology would change).
REFUSE_STREAM_BATCH = "serving-stream-batch-policy"


class ServingManipulationError(ValueError):
    """A typed serving-manipulation refusal carrying a machine code.

    Callers that map manipulation errors onto
    :class:`~repro.api.errors.PredictError` propagate :attr:`code` so
    tools can branch on the refusal reason without parsing messages.
    """

    def __init__(self, message: str, *, code: str) -> None:
        super().__init__(message)
        self.code = code


def _op_table(model: ModelConfig, parallel: ParallelismConfig,
              config: InferenceConfig) -> dict[_OpKey, OpSpec]:
    """Regenerate the serving episode's operators, keyed like trace tasks.

    Prefill ops key on step ``None``; decode ops key on their step index
    (shapes depend on the step through the KV-cache context length).
    Layers are architecturally identical, so the layer index is not part
    of the key.
    """
    table: dict[_OpKey, OpSpec] = {}
    for op in (prefill_embedding_ops(model, parallel, config)
               + prefill_layer_ops(model, parallel, config)
               + prefill_head_ops(model, parallel, config)):
        table[("prefill", op.name, None)] = op
    for step in range(config.decode_length):
        for op in (decode_embedding_ops(model, parallel, config, step)
                   + decode_layer_ops(model, parallel, config, step)
                   + decode_head_ops(model, parallel, config, step)):
            table[("decode", op.name, step)] = op
    return table


def _stream_op_table(model: ModelConfig, parallel: ParallelismConfig,
                     config: InferenceConfig,
                     plan: StreamPlan) -> dict[_OpKey, OpSpec]:
    """Regenerate a continuous-batching episode's operators.

    The admission schedule is held fixed (it lives in the plan), so the
    same chunks and steps are regenerated at the target shapes: prefill
    ops key on their chunk index, decode ops on their global step index
    — matching the ``microbatch`` the stream builder recorded.
    """
    table: dict[_OpKey, OpSpec] = {}
    for chunk, admitted in enumerate(plan.chunk_requests):
        batch = len(admitted)
        for op in (stream_prefill_embedding_ops(model, parallel, config, batch)
                   + stream_prefill_layer_ops(model, parallel, config, batch)
                   + stream_prefill_head_ops(model, parallel, config, batch)):
            table[("prefill", op.name, chunk)] = op
    for step in range(plan.num_steps):
        contexts = plan.step_contexts(config.prompt_length, step)
        for op in (stream_decode_embedding_ops(model, parallel, config, contexts)
                   + stream_decode_layer_ops(model, parallel, config, contexts)
                   + stream_decode_head_ops(model, parallel, config, contexts)):
            table[("decode", op.name, step)] = op
    return table


def _task_key(task: Task, stream: bool = False) -> _OpKey | None:
    phase = task.args.get("phase")
    op_name = task.args.get("op_name")
    if phase not in ("prefill", "decode") or not op_name:
        return None
    # Fixed episodes have one prefill (step None); stream episodes key
    # prefill ops on their chunk index, carried in ``microbatch``.
    step = task.args.get("microbatch") if (phase == "decode" or stream) else None
    return (str(phase), str(op_name), step)


def rescale_serving_graph(graph: ExecutionGraph, target: ServingTarget, *,
                          base_model: ModelConfig,
                          base_parallel: ParallelismConfig,
                          base_inference: InferenceConfig,
                          perf_model: KernelPerfModel,
                          cluster: ClusterSpec | None = None) -> ExecutionGraph:
    """Derive the execution graph for a new serving configuration.

    Parameters
    ----------
    graph:
        Execution graph built from the base serving episode's trace.
    target:
        The batch / prompt / TP knobs to change.
    base_model, base_parallel, base_inference:
        The configuration the base trace was collected with.
    perf_model:
        Kernel performance model calibrated from the base trace; supplies
        the analytical ratios (its cluster is replaced by ``cluster`` for
        re-timing collectives on the target deployment).
    cluster:
        Cluster hosting the target; defaults to a cluster sized for the
        larger of the base and target world sizes (perf-model rescaling
        evaluates the old collective groups too).
    """
    new_inference, new_parallel = target.resolve(base_inference, base_parallel)
    new_parallel.validate_for_inference()
    validate_tp_for_model(base_model, new_parallel.tp)
    if new_parallel.tp > base_parallel.tp == 1:
        raise ValueError(
            "cannot reshard a TP=1 serving base to "
            f"TP={new_parallel.tp}: the base trace contains no tensor-parallel "
            "collectives to rescale; emulate a TP>1 base episode instead")
    stream_payload = graph.metadata.get(STREAM_METADATA_KEY)
    plan = None if stream_payload is None else StreamPlan.from_json(stream_payload)
    if plan is not None and target.batch_size is not None:
        raise ServingManipulationError(
            "cannot change 'batch' on a continuous-batching stream base: the "
            "batch-size cap drives the admission schedule, so the derived "
            "program's topology would change; re-emulate with the new cap "
            "instead", code=REFUSE_STREAM_BATCH)
    if cluster is None:
        cluster = ClusterSpec.for_world_size(
            max(base_parallel.world_size, new_parallel.world_size))
    scaled_model = KernelPerfModel(cluster=cluster, dtype_bytes=perf_model.dtype_bytes,
                                   calibration=dict(perf_model.calibration))

    if plan is not None:
        # Stream re-timing holds the admission schedule fixed: the same
        # chunks and steps run at the target shapes/topology.  (A target
        # that made the engine schedule differently is exactly the
        # ``batch=`` refusal above.)
        old_ops = _stream_op_table(base_model, base_parallel, base_inference, plan)
        new_ops = _stream_op_table(base_model, new_parallel, new_inference, plan)
    else:
        old_ops = _op_table(base_model, base_parallel, base_inference)
        new_ops = _op_table(base_model, new_parallel, new_inference)
    new_tp_ranks = new_parallel.groups().tp_group(0).ranks

    new_graph = ExecutionGraph(metadata={
        **graph.metadata,
        "manipulated": "serving",
        "parallelism": new_parallel.label(),
        "inference": new_inference.to_json(),
    })
    id_map: dict[int, int] = {}
    gpu_tasks = matched = 0
    for task in graph.task_list():
        clone = task.copy()
        clone.task_id = -1
        if clone.kind == TaskKind.GPU:
            gpu_tasks += 1
            key = _task_key(clone, stream=plan is not None)
            old_op = old_ops.get(key) if key is not None else None
            new_op = new_ops.get(key) if key is not None else None
            if old_op is not None and new_op is not None:
                matched += 1
                clone.duration = _rescale(task, old_op, new_op, scaled_model,
                                          new_tp_ranks)
                _update_args(clone, new_op, new_tp_ranks)
            elif (old_op is not None and old_op.is_communication
                    and new_parallel.tp == 1):
                # The TP=1 decomposition emits no collectives at all, so
                # the lookup misses; the observed collective degenerates
                # to a rank-local no-op.  Keeping the (empty) task
                # preserves the graph topology.
                matched += 1
                clone.duration = 0.0
                clone.args["group_ranks"] = list(new_tp_ranks)
                clone.args["group_size"] = 1
        id_map[task.task_id] = new_graph.add_task(clone).task_id
    if gpu_tasks and not matched:
        # Every lookup missed: the trace is not a serving episode of this
        # configuration (e.g. an inference= override forced onto a
        # training trace).  Returning the unmodified graph would report
        # the base time as a confident "prediction" — refuse instead.
        raise ValueError(
            "no GPU task of the trace matched the serving operator "
            "decomposition; the base trace does not look like a serving "
            "episode of this model/parallelism/inference configuration")

    for dependency in graph.dependencies:
        new_graph.add_dependency(id_map[dependency.src], id_map[dependency.dst],
                                 dependency.dep_type)
    return new_graph


@register_manipulation(KIND_SERVING)
def _derive_serving(graph: ExecutionGraph, label: str, context: DeriveContext,
                    world_size: int) -> tuple[ExecutionGraph, int]:
    if context.base_inference is None:
        raise ValueError(
            "the base trace is a training iteration; serving targets "
            "(batch=/prompt=/tp=) require a study opened over an "
            "emulated serving episode")
    serving = ServingTarget.parse(label)
    derived = rescale_serving_graph(
        graph, serving, base_model=context.base_model,
        base_parallel=context.base_parallel,
        base_inference=context.base_inference,
        perf_model=context.perf_model)
    _, target_parallel = serving.resolve(context.base_inference,
                                         context.base_parallel)
    return derived, target_parallel.world_size


def _rescale(task: Task, old_op: OpSpec, new_op: OpSpec,
             perf_model: KernelPerfModel, new_tp_ranks: tuple[int, ...]) -> float:
    """Observed duration × analytical(new) / analytical(old) per op class."""
    observed = task.duration
    if old_op == new_op:
        # Unchanged shape — keep the observed duration bit-exact instead
        # of multiplying by a ratio that is 1.0 only up to rounding.
        return observed
    if old_op.is_communication:
        assert new_op.collective is not None and old_op.collective is not None
        old_ranks = tuple(task.args.get("group_ranks", ()))
        if not old_ranks:
            return observed
        return perf_model.scale_collective(
            observed, kind=old_op.collective.kind,
            old_size=old_op.collective.size_bytes, old_ranks=old_ranks,
            new_size=new_op.collective.size_bytes, new_ranks=new_tp_ranks)
    if old_op.op_class == OpClass.GEMM:
        return perf_model.scale_gemm(observed, (old_op.m, old_op.n, old_op.k),
                                     (new_op.m, new_op.n, new_op.k))
    if old_op.op_class == OpClass.DECODE_ATTENTION:
        return perf_model.scale_decode_attention(
            observed, old_op.flops, old_op.bytes_accessed,
            new_op.flops, new_op.bytes_accessed)
    if old_op.op_class == OpClass.ATTENTION:
        return perf_model.scale_flops_bound(observed, old_op.flops, new_op.flops)
    return perf_model.scale_memory_bound(observed, old_op.bytes_accessed,
                                         new_op.bytes_accessed)


def _update_args(clone: Task, new_op: OpSpec, new_tp_ranks: tuple[int, ...]) -> None:
    """Refresh the shape-describing args so breakdowns stay meaningful."""
    if new_op.is_communication:
        clone.args["group_ranks"] = list(new_tp_ranks)
        clone.args["group_size"] = len(new_tp_ranks)
        assert new_op.collective is not None
        clone.args["size_bytes"] = new_op.collective.size_bytes
    else:
        if clone.args.get("flops"):
            clone.args["flops"] = new_op.flops
        if clone.args.get("bytes_accessed"):
            clone.args["bytes_accessed"] = new_op.bytes_accessed
