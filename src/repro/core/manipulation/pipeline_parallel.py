"""Pipeline-parallelism manipulation.

Per §3.4 of the paper, adjusting pipeline parallelism requires updating the
pipeline schedule for the new stage count, grouping the existing tasks by
layer, re-partitioning the layers (and their tasks) into the new stages,
and inserting communication tasks at the new stage boundaries.  This module
drives that flow through template extraction + graph synthesis and also
re-times data-parallel collectives (gradient size per stage changes with
the partition).
"""

from __future__ import annotations

from repro.core.graph import ExecutionGraph
from repro.core.manipulation.synthesize import GraphSynthesizer
from repro.core.manipulation.templates import extract_iteration_template
from repro.core.perf_model import KernelPerfModel
from repro.hardware.cluster import ClusterSpec
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


def scale_pipeline_parallelism(graph: ExecutionGraph, base_model: ModelConfig,
                               base_parallel: ParallelismConfig, training: TrainingConfig,
                               new_pipeline_parallel: int, perf_model: KernelPerfModel,
                               new_data_parallel: int | None = None,
                               cluster: ClusterSpec | None = None) -> ExecutionGraph:
    """Derive the execution graph for a new pipeline-parallel degree.

    ``new_data_parallel`` may be given to change both degrees at once (the
    paper's Figure 7c scenario); tensor parallelism is never changed.
    """
    if new_pipeline_parallel < 1:
        raise ValueError("pipeline parallel degree must be >= 1")
    target_parallel = base_parallel.with_changes(
        pipeline_parallel=new_pipeline_parallel,
        data_parallel=new_data_parallel if new_data_parallel is not None else base_parallel.dp,
    )
    if cluster is None:
        cluster = ClusterSpec.for_world_size(target_parallel.world_size)
    template = extract_iteration_template(graph, base_model, base_parallel, training)
    retargeted = KernelPerfModel(cluster=cluster, dtype_bytes=perf_model.dtype_bytes,
                                 calibration=dict(perf_model.calibration))
    synthesizer = GraphSynthesizer(template, base_model, target_parallel, retargeted,
                                   training=training, cluster=cluster)
    return synthesizer.build()
