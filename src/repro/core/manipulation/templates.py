"""Extraction of reusable task templates from an execution graph.

The paper manipulates graphs by "grouping the tasks by layers" and reusing
them under new schedules and partitions.  :func:`extract_iteration_template`
performs that grouping: it pulls, from the profiled execution graph, the
per-layer forward/backward kernel sequences (including the tensor-parallel
collectives embedded in them), the embedding/head/optimizer sequences, the
data-parallel bucket and pipeline transfer samples, and the CPU-side
overheads.  Durations are medians across the observed micro-batches, which
smooths per-kernel jitter in the profiled iteration.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from statistics import median
from typing import Any

from repro.core.graph import ExecutionGraph
from repro.core.tasks import Task, TaskKind
from repro.trace.events import CudaRuntimeName
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig
from repro.workload.pipeline import stage_layers
from repro.workload.training import TrainingConfig


@dataclass
class KernelTemplate:
    """One kernel position of a reusable task group."""

    name: str
    op_name: str | None
    op_class: str | None
    stream: int
    duration: float
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def is_communication(self) -> bool:
        return bool(self.args.get("collective"))

    @property
    def comm_group(self) -> str | None:
        return self.args.get("group")

    def clone_args(self) -> dict[str, Any]:
        return dict(self.args)


@dataclass
class CpuOverheads:
    """CPU-side costs reused when synthesising a new graph."""

    launch_us: float = 7.0
    python_step_us: float = 60.0
    data_loader_us: float = 900.0
    iteration_end_us: float = 400.0
    sync_call_us: float = 5.0


@dataclass
class IterationTemplate:
    """Everything needed to rebuild one training iteration for a new configuration."""

    base_model: ModelConfig
    base_parallel: ParallelismConfig
    training: TrainingConfig
    layer_forward: dict[int, list[KernelTemplate]] = field(default_factory=dict)
    layer_backward: dict[int, list[KernelTemplate]] = field(default_factory=dict)
    embedding_forward: list[KernelTemplate] = field(default_factory=list)
    embedding_backward: list[KernelTemplate] = field(default_factory=list)
    head_forward: list[KernelTemplate] = field(default_factory=list)
    head_backward: list[KernelTemplate] = field(default_factory=list)
    optimizer: list[KernelTemplate] = field(default_factory=list)
    optimizer_stage_layers: int = 1
    optimizer_includes_embedding: bool = False
    dp_bucket_sample: KernelTemplate | None = None
    pp_send_sample: KernelTemplate | None = None
    pp_recv_sample: KernelTemplate | None = None
    cpu: CpuOverheads = field(default_factory=CpuOverheads)

    def layer_template(self, layer: int, phase: str) -> list[KernelTemplate]:
        """The kernel sequence of one observed layer for ``phase``.

        When the requested layer does not exist in the base model (the
        architecture manipulation may add layers), the template of an
        observed layer is reused, matching the paper's "duplicate the layers
        and corresponding tasks from the existing trace".
        """
        table = self.layer_forward if phase == "forward" else self.layer_backward
        if not table:
            raise ValueError("iteration template has no layer tasks")
        if layer in table:
            return table[layer]
        observed = sorted(table)
        return table[observed[layer % len(observed)]]


def _template_from_task(task: Task, duration: float | None = None) -> KernelTemplate:
    return KernelTemplate(
        name=task.name,
        op_name=task.args.get("op_name"),
        op_class=task.args.get("op_class"),
        stream=int(task.stream) if task.stream is not None else 0,
        duration=duration if duration is not None else task.duration,
        args=dict(task.args),
    )


def _median_by_op(tasks_by_microbatch: dict[int, list[Task]]) -> list[KernelTemplate]:
    """Build a template sequence with per-op median durations across micro-batches."""
    if not tasks_by_microbatch:
        return []
    reference_mb = max(tasks_by_microbatch, key=lambda mb: len(tasks_by_microbatch[mb]))
    reference = sorted(tasks_by_microbatch[reference_mb], key=lambda t: (t.trace_ts, t.task_id))

    durations: dict[tuple[str | None, int], list[float]] = defaultdict(list)
    for tasks in tasks_by_microbatch.values():
        counters: dict[str | None, int] = defaultdict(int)
        for task in sorted(tasks, key=lambda t: (t.trace_ts, t.task_id)):
            key = task.args.get("op_name") or task.name
            durations[(key, counters[key])].append(task.duration)
            counters[key] += 1

    templates: list[KernelTemplate] = []
    counters = defaultdict(int)
    for task in reference:
        key = task.args.get("op_name") or task.name
        samples = durations.get((key, counters[key]), [task.duration])
        counters[key] += 1
        templates.append(_template_from_task(task, duration=float(median(samples))))
    return templates


def extract_iteration_template(graph: ExecutionGraph, base_model: ModelConfig,
                               base_parallel: ParallelismConfig,
                               training: TrainingConfig) -> IterationTemplate:
    """Group the tasks of a profiled execution graph into reusable templates."""
    template = IterationTemplate(base_model=base_model, base_parallel=base_parallel,
                                 training=training)

    ranks = graph.ranks()
    if not ranks:
        raise ValueError("execution graph has no tasks")
    first_rank, last_rank = ranks[0], ranks[-1]

    layer_tasks: dict[tuple[int, str], dict[int, list[Task]]] = \
        defaultdict(lambda: defaultdict(list))
    no_layer_tasks: dict[tuple[int, str], dict[int, list[Task]]] = \
        defaultdict(lambda: defaultdict(list))
    optimizer_tasks: dict[int, list[Task]] = defaultdict(list)
    dp_samples: list[Task] = []
    pp_send_samples: list[Task] = []
    pp_recv_samples: list[Task] = []

    for task in graph.task_list():
        if task.kind != TaskKind.GPU:
            continue
        group = task.args.get("group")
        phase = task.phase
        if group == "dp":
            dp_samples.append(task)
            continue
        if group == "pp":
            kind = task.args.get("collective")
            (pp_send_samples if kind == "send" else pp_recv_samples).append(task)
            continue
        if phase == "optimizer":
            optimizer_tasks[task.rank].append(task)
            continue
        microbatch = task.microbatch if task.microbatch is not None else 0
        if task.layer is not None:
            layer_tasks[(int(task.layer), phase or "forward")][microbatch].append(task)
        else:
            no_layer_tasks[(task.rank, phase or "forward")][microbatch].append(task)

    for (layer, phase), by_microbatch in layer_tasks.items():
        table = template.layer_forward if phase == "forward" else template.layer_backward
        table[layer] = _median_by_op(by_microbatch)

    template.embedding_forward = _median_by_op(no_layer_tasks.get((first_rank, "forward"), {}))
    template.embedding_backward = _median_by_op(no_layer_tasks.get((first_rank, "backward"), {}))
    if last_rank != first_rank:
        template.head_forward = _median_by_op(no_layer_tasks.get((last_rank, "forward"), {}))
        template.head_backward = _median_by_op(no_layer_tasks.get((last_rank, "backward"), {}))

    optimizer_rank = last_rank if optimizer_tasks.get(last_rank) else first_rank
    template.optimizer = [_template_from_task(task) for task in
                          sorted(optimizer_tasks.get(optimizer_rank, []),
                                 key=lambda t: (t.trace_ts, t.task_id))]
    stage_index = ranks.index(optimizer_rank)
    template.optimizer_stage_layers = len(stage_layers(
        base_model.n_layers, base_parallel.pp, min(stage_index, base_parallel.pp - 1)))
    template.optimizer_includes_embedding = optimizer_rank == first_rank

    if dp_samples:
        sample = dp_samples[len(dp_samples) // 2]
        template.dp_bucket_sample = _template_from_task(
            sample, duration=float(median(t.duration for t in dp_samples)))
    if pp_send_samples:
        template.pp_send_sample = _template_from_task(
            pp_send_samples[0], duration=float(median(t.duration for t in pp_send_samples)))
    if pp_recv_samples:
        template.pp_recv_sample = _template_from_task(
            pp_recv_samples[0], duration=float(median(t.duration for t in pp_recv_samples)))

    template.cpu = _extract_cpu_overheads(graph)
    return template


def _extract_cpu_overheads(graph: ExecutionGraph) -> CpuOverheads:
    launch_durations: list[float] = []
    python_durations: list[float] = []
    first_task_duration = None
    last_task_duration = None
    for task in graph.task_list():
        if task.kind != TaskKind.CPU:
            continue
        if task.name in CudaRuntimeName.LAUNCHES:
            launch_durations.append(task.duration)
        elif task.category == "cpu_op":
            python_durations.append(task.duration)
            if first_task_duration is None:
                first_task_duration = task.duration
            last_task_duration = task.duration
    overheads = CpuOverheads()
    if launch_durations:
        overheads.launch_us = float(median(launch_durations))
    if python_durations:
        overheads.python_step_us = float(median(python_durations))
    if first_task_duration is not None:
        overheads.data_loader_us = float(first_task_duration)
    if last_task_duration is not None:
        overheads.iteration_end_us = float(last_task_duration)
    return overheads
