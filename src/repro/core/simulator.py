"""The replay simulator (Algorithm 1).

The simulator schedules every task of an execution graph onto its
processor (a CPU thread or a CUDA stream), honouring:

* **fixed dependencies** — the graph edges built by the graph builder or
  by graph manipulation;
* **runtime dependencies** — blocking synchronisation tasks whose
  predecessors cannot be known statically: a ``cudaStreamSynchronize``
  completes only once every kernel of its target stream has drained, and a
  ``cudaDeviceSynchronize`` waits for every stream of its rank;
* **collective alignment** — GPU tasks that share a collective group
  (pipeline send/recv pairs) start together once every member is ready.

The output records the simulated start time of every task, from which the
iteration time, execution breakdown and SM utilisation are derived.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.graph import ExecutionGraph
from repro.core.tasks import Task, TaskKind
from repro.trace.events import Category, TraceEvent
from repro.trace.kineto import DistributedInfo, KinetoTrace, TraceBundle


@dataclass
class SimulatedTask:
    """One task with its simulated timing."""

    task: Task
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class SimulationResult:
    """Simulated timings for every task of the graph."""

    tasks: dict[int, SimulatedTask] = field(default_factory=dict)
    start_time: float = 0.0

    def end_time(self) -> float:
        """Simulated makespan end (latest task end)."""
        return max((t.end for t in self.tasks.values()), default=self.start_time)

    def total_time(self) -> float:
        """Simulated makespan duration in microseconds."""
        return self.end_time() - self.start_time

    def rank_span(self, rank: int) -> tuple[float, float]:
        """(start, end) of one rank's simulated execution."""
        times = [t for t in self.tasks.values() if t.task.rank == rank]
        if not times:
            return self.start_time, self.start_time
        return min(t.start for t in times), max(t.end for t in times)

    def gpu_tasks(self, rank: int | None = None) -> list[SimulatedTask]:
        return [t for t in self.tasks.values()
                if t.task.kind == TaskKind.GPU and (rank is None or t.task.rank == rank)]

    def to_trace_bundle(self) -> TraceBundle:
        """Render the simulation as a Kineto-style trace bundle.

        The output mirrors the input trace (§3.5: "the simulation generates
        a trace similar to the input trace initially profiled from the real
        run"), so every downstream analysis — breakdowns, SM utilisation —
        runs identically on real and simulated traces.
        """
        per_rank: dict[int, list[TraceEvent]] = defaultdict(list)
        for simulated in self.tasks.values():
            task = simulated.task
            if task.kind == TaskKind.GPU:
                category = task.category or Category.KERNEL
                tid = int(task.stream)
            else:
                category = task.category or Category.CPU_OP
                tid = int(task.thread)
            per_rank[task.rank].append(TraceEvent(
                name=task.name, cat=category, ts=simulated.start, dur=simulated.duration,
                pid=task.rank, tid=tid, args=dict(task.args),
            ))
        bundle = TraceBundle(metadata={"simulated": True})
        for rank, events in per_rank.items():
            start = min(e.ts for e in events)
            end = max(e.end for e in events)
            events.append(TraceEvent(name="ProfilerStep#0", cat=Category.USER_ANNOTATION,
                                     ts=start, dur=end - start, pid=rank, tid=0,
                                     args={"simulated": True}))
            world = len(per_rank)
            bundle.add(KinetoTrace(rank=rank, events=events,
                                   distributed=DistributedInfo(rank=rank, world_size=world),
                                   metadata={"simulated": True}))
        return bundle


class Simulator:
    """Replays an execution graph (Algorithm 1)."""

    def __init__(self, graph: ExecutionGraph) -> None:
        self.graph = graph

    def run(self, start_time: float = 0.0) -> SimulationResult:
        """Simulate the graph and return per-task timings."""
        graph = self.graph
        tasks = graph.tasks
        n = len(tasks)
        result = SimulationResult(start_time=start_time)
        if n == 0:
            return result

        indegree: dict[int, int] = {task_id: 0 for task_id in tasks}
        successors: dict[int, list[int]] = defaultdict(list)
        for dependency in graph.dependencies:
            indegree[dependency.dst] += 1
            successors[dependency.src].append(dependency.dst)

        ready_time: dict[int, float] = {task_id: start_time for task_id in tasks}
        processor_available: dict[tuple, float] = defaultdict(lambda: start_time)

        # Runtime-dependency bookkeeping for synchronisation tasks: a sync
        # completes once every kernel of its target streams has finished.
        stream_total: dict[tuple[int, int], int] = defaultdict(int)
        stream_finished: dict[tuple[int, int], int] = defaultdict(int)
        stream_last_end: dict[tuple[int, int], float] = defaultdict(lambda: start_time)
        for task in tasks.values():
            if task.kind == TaskKind.GPU:
                stream_total[(task.rank, int(task.stream))] += 1
        waiting_syncs: dict[tuple[int, int], list[int]] = defaultdict(list)

        # Collective alignment bookkeeping.
        group_members: dict[str, list[int]] = defaultdict(list)
        for task in tasks.values():
            if task.collective_group is not None:
                group_members[task.collective_group].append(task.task_id)
        group_ready: dict[str, dict[int, float]] = defaultdict(dict)

        # Ready heap ordered by earliest possible start for determinism.
        heap: list[tuple[float, int]] = []
        for task_id, degree in indegree.items():
            if degree == 0:
                heapq.heappush(heap, (ready_time[task_id], task_id))

        scheduled: dict[int, SimulatedTask] = {}

        def sync_satisfied(task: Task) -> bool:
            return all(stream_finished[(task.rank, stream)] >= stream_total[(task.rank, stream)]
                       for stream in task.sync_streams)

        def sync_ready_time(task: Task, base: float) -> float:
            latest = base
            for stream in task.sync_streams:
                latest = max(latest, stream_last_end[(task.rank, stream)])
            return latest

        def finalize(task_id: int, at: float) -> None:
            task = tasks[task_id]
            processor = task.processor
            begin = max(at, processor_available[processor])
            simulated = SimulatedTask(task=task, start=begin, duration=task.duration)
            scheduled[task_id] = simulated
            processor_available[processor] = simulated.end
            if task.kind == TaskKind.GPU:
                key = (task.rank, int(task.stream))
                stream_finished[key] += 1
                stream_last_end[key] = max(stream_last_end[key], simulated.end)
                if stream_finished[key] >= stream_total[key]:
                    for sync_id in waiting_syncs.pop(key, []):
                        if sync_id in scheduled:
                            continue
                        sync_task = tasks[sync_id]
                        if _sync_streams_done(sync_task, stream_finished, stream_total):
                            heapq.heappush(heap, (sync_ready_time(sync_task,
                                                                  ready_time[sync_id]), sync_id))
                        else:
                            # Re-park on the next stream that is still draining.
                            for pending in sync_task.sync_streams:
                                pending_key = (sync_task.rank, pending)
                                if stream_finished[pending_key] < stream_total[pending_key]:
                                    waiting_syncs[pending_key].append(sync_id)
                                    break
            for successor in successors[task_id]:
                ready_time[successor] = max(ready_time[successor], simulated.end)
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    heapq.heappush(heap, (ready_time[successor], successor))

        while heap:
            _, task_id = heapq.heappop(heap)
            if task_id in scheduled:
                continue
            task = tasks[task_id]

            # Runtime dependencies (GPU → CPU synchronisation).
            if task.is_sync and not sync_satisfied(task):
                for stream in task.sync_streams:
                    key = (task.rank, stream)
                    if stream_finished[key] < stream_total[key]:
                        waiting_syncs[key].append(task_id)
                        break
                continue
            if task.is_sync:
                ready_time[task_id] = sync_ready_time(task, ready_time[task_id])

            # Collective alignment (cross-rank point-to-point pairs).
            if task.collective_group is not None:
                group = task.collective_group
                group_ready[group][task_id] = max(ready_time[task_id],
                                                  processor_available[task.processor])
                members = group_members[group]
                if len(group_ready[group]) < len(members):
                    continue
                common_start = max(group_ready[group].values())
                for member in sorted(members):
                    finalize(member, common_start)
                continue

            finalize(task_id, ready_time[task_id])

        if len(scheduled) != n:
            missing = [tasks[task_id].name for task_id in tasks if task_id not in scheduled][:10]
            raise RuntimeError(
                f"simulation did not schedule {n - len(scheduled)} of {n} tasks "
                f"(first missing: {missing}); the graph may contain a cycle or an "
                f"unsatisfiable synchronisation"
            )

        result.tasks = scheduled
        return result


def _sync_streams_done(task: Task, finished: dict[tuple[int, int], int],
                       total: dict[tuple[int, int], int]) -> bool:
    return all(finished[(task.rank, stream)] >= total[(task.rank, stream)]
               for stream in task.sync_streams)
