"""The replay simulator (Algorithm 1).

The simulator schedules every task of an execution graph onto its
processor (a CPU thread or a CUDA stream), honouring:

* **fixed dependencies** — the graph edges built by the graph builder or
  by graph manipulation;
* **runtime dependencies** — blocking synchronisation tasks whose
  predecessors cannot be known statically: a ``cudaStreamSynchronize``
  completes only once every kernel of its target stream has drained, and a
  ``cudaDeviceSynchronize`` waits for every stream of its rank;
* **collective alignment** — GPU tasks that share a collective group
  (pipeline send/recv pairs) start together once every member is ready.

The output records the simulated start time of every task, from which the
iteration time, execution breakdown and SM utilisation are derived.

Since the array-backed engine landed (:mod:`repro.core.engine`), this
module is a thin compatibility wrapper: :class:`Simulator` compiles the
graph and runs one :class:`~repro.core.engine.SimulationSession`, then
materialises the dict-based :class:`SimulationResult` the rest of the
code base consumes.  Schedules are bit-identical to the original
dict/heap scheduler.  Hot paths that simulate one graph many times
should compile once and reuse a session instead.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.engine import SimulationSession, compile_graph
from repro.core.graph import ExecutionGraph
from repro.core.tasks import Task, TaskKind
from repro.trace.events import Category, TraceEvent
from repro.trace.kineto import DistributedInfo, KinetoTrace, TraceBundle


@dataclass
class SimulatedTask:
    """One task with its simulated timing."""

    task: Task
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class SimulationResult:
    """Simulated timings for every task of the graph."""

    tasks: dict[int, SimulatedTask] = field(default_factory=dict)
    start_time: float = 0.0

    def end_time(self) -> float:
        """Simulated makespan end (latest task end)."""
        return max((t.end for t in self.tasks.values()), default=self.start_time)

    def total_time(self) -> float:
        """Simulated makespan duration in microseconds."""
        return self.end_time() - self.start_time

    def rank_span(self, rank: int) -> tuple[float, float]:
        """(start, end) of one rank's simulated execution."""
        times = [t for t in self.tasks.values() if t.task.rank == rank]
        if not times:
            return self.start_time, self.start_time
        return min(t.start for t in times), max(t.end for t in times)

    def gpu_tasks(self, rank: int | None = None) -> list[SimulatedTask]:
        return [t for t in self.tasks.values()
                if t.task.kind == TaskKind.GPU and (rank is None or t.task.rank == rank)]

    def to_trace_bundle(self) -> TraceBundle:
        """Render the simulation as a Kineto-style trace bundle.

        The output mirrors the input trace (§3.5: "the simulation generates
        a trace similar to the input trace initially profiled from the real
        run"), so every downstream analysis — breakdowns, SM utilisation —
        runs identically on real and simulated traces.
        """
        per_rank: dict[int, list[TraceEvent]] = defaultdict(list)
        for simulated in self.tasks.values():
            task = simulated.task
            if task.kind == TaskKind.GPU:
                category = task.category or Category.KERNEL
                tid = int(task.stream)
            else:
                category = task.category or Category.CPU_OP
                tid = int(task.thread)
            per_rank[task.rank].append(TraceEvent(
                name=task.name, cat=category, ts=simulated.start, dur=simulated.duration,
                pid=task.rank, tid=tid, args=dict(task.args),
            ))
        bundle = TraceBundle(metadata={"simulated": True})
        for rank, events in per_rank.items():
            start = min(e.ts for e in events)
            end = max(e.end for e in events)
            events.append(TraceEvent(name="ProfilerStep#0", cat=Category.USER_ANNOTATION,
                                     ts=start, dur=end - start, pid=rank, tid=0,
                                     args={"simulated": True}))
            world = len(per_rank)
            bundle.add(KinetoTrace(rank=rank, events=events,
                                   distributed=DistributedInfo(rank=rank, world_size=world),
                                   metadata={"simulated": True}))
        return bundle


class Simulator:
    """Replays an execution graph (Algorithm 1).

    Compatibility wrapper over the array-backed engine: every ``run``
    compiles the graph's current state and simulates it once, producing
    schedules bit-identical to the original dict/heap scheduler.  To
    simulate the same structure repeatedly (what-if sweeps), compile once
    with :func:`repro.core.engine.compile_graph` and reuse a
    :class:`repro.core.engine.SimulationSession` instead.
    """

    def __init__(self, graph: ExecutionGraph) -> None:
        self.graph = graph

    def run(self, start_time: float = 0.0) -> SimulationResult:
        """Simulate the graph and return per-task timings."""
        compiled = compile_graph(self.graph)
        session = SimulationSession(compiled)
        return session.run(start_time=start_time).to_simulation_result()
