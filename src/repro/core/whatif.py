"""What-if scenario evaluation on execution graphs.

The paper's discussion section (§5) highlights that a fine-grained execution
graph can answer "how much would the overall runtime improve if a kernel ran
twice as fast" style questions before any engineering work happens.  This
module provides that capability as a first-class API: a scenario rescales a
selected set of kernels, the modified graph is re-simulated, and the result
reports the end-to-end effect (which is usually much smaller than the local
speed-up because of overlap and critical-path effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.engine import SessionRun, SimulationSession, compile_graph
from repro.core.graph import ExecutionGraph
from repro.core.replay import ReplayResult
from repro.core.tasks import Task, TaskKind

TaskPredicate = Callable[[Task], bool]

#: Anything that can serve as the baseline timing of a scenario: a full
#: :class:`ReplayResult`, a raw :class:`SessionRun`, or the time itself.
Baseline = ReplayResult | SessionRun | float


@dataclass(frozen=True)
class WhatIfResult:
    """Outcome of one what-if scenario."""

    name: str
    baseline_time_us: float
    scenario_time_us: float
    affected_tasks: int

    @property
    def saved_us(self) -> float:
        return self.baseline_time_us - self.scenario_time_us

    @property
    def speedup(self) -> float:
        if self.scenario_time_us <= 0:
            return float("inf")
        return self.baseline_time_us / self.scenario_time_us

    @property
    def improvement_percent(self) -> float:
        if self.baseline_time_us <= 0:
            return 0.0
        return self.saved_us / self.baseline_time_us * 100.0


def _clone_graph(graph: ExecutionGraph) -> ExecutionGraph:
    clone = ExecutionGraph(metadata=dict(graph.metadata))
    id_map: dict[int, int] = {}
    for task in graph.task_list():
        copy = task.copy()
        copy.task_id = -1
        id_map[task.task_id] = clone.add_task(copy).task_id
    for dependency in graph.dependencies:
        clone.add_dependency(id_map[dependency.src], id_map[dependency.dst], dependency.dep_type)
    return clone


def _baseline_time_us(baseline: Baseline) -> float:
    if isinstance(baseline, (int, float)):
        return float(baseline)
    return baseline.iteration_time_us


def evaluate_scenario(graph: ExecutionGraph, name: str, predicate: TaskPredicate,
                      speedup: float,
                      baseline: Baseline | None = None,
                      session: SimulationSession | None = None) -> WhatIfResult:
    """Rescale every task matching ``predicate`` by ``1/speedup`` and re-simulate.

    The input graph is left untouched; a ``speedup`` of 2.0 halves the
    matching tasks' durations, ``float("inf")`` removes them from the
    timeline entirely.

    A scenario is one duration-vector swap on a reusable simulation
    session: the graph is compiled once (or not at all when ``session`` —
    which must have been compiled from ``graph`` — is supplied) and only
    the rescaled durations are re-simulated.  Sweeps that evaluate many
    scenarios against one graph should pass the same ``session`` (and a
    precomputed ``baseline``) to every call.
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    if session is None:
        session = SimulationSession(compile_graph(graph))
    baseline_time = (_baseline_time_us(baseline) if baseline is not None
                     else session.run().iteration_time_us)
    durations, affected = session.compiled.scaled_durations(predicate, speedup)
    scenario_run = session.run(durations=durations)
    return WhatIfResult(
        name=name,
        baseline_time_us=baseline_time,
        scenario_time_us=scenario_run.iteration_time_us,
        affected_tasks=affected,
    )


def speed_up_communication(graph: ExecutionGraph, speedup: float = 2.0,
                           group: str | None = None,
                           baseline: Baseline | None = None,
                           session: SimulationSession | None = None) -> WhatIfResult:
    """What if communication kernels (optionally one group: tp/dp/pp) were faster?"""
    def predicate(task: Task) -> bool:
        if task.kind != TaskKind.GPU or not task.is_communication:
            return False
        return group is None or task.args.get("group") == group

    label = f"{group or 'all'}-communication x{speedup:g}"
    return evaluate_scenario(graph, label, predicate, speedup, baseline=baseline,
                             session=session)


def speed_up_kernel_class(graph: ExecutionGraph, op_class: str, speedup: float = 2.0,
                          baseline: Baseline | None = None,
                          session: SimulationSession | None = None) -> WhatIfResult:
    """What if every kernel of one class (e.g. ``"gemm"``) were faster?"""
    def predicate(task: Task) -> bool:
        return task.kind == TaskKind.GPU and task.op_class == op_class

    return evaluate_scenario(graph, f"{op_class} x{speedup:g}", predicate, speedup,
                             baseline=baseline, session=session)


def remove_launch_overhead(graph: ExecutionGraph,
                           baseline: Baseline | None = None,
                           session: SimulationSession | None = None) -> WhatIfResult:
    """What if CPU-side launch overhead were free (CUDA-graph style launches)?"""
    def predicate(task: Task) -> bool:
        return task.kind == TaskKind.CPU and task.name == "cudaLaunchKernel"

    return evaluate_scenario(graph, "zero launch overhead", predicate, float("inf"),
                             baseline=baseline, session=session)


def apply_speedup(graph: ExecutionGraph, kind: str, *, op_class: str | None = None,
                  group: str | None = None, speedup: float = 2.0,
                  baseline: Baseline | None = None,
                  session: SimulationSession | None = None) -> WhatIfResult:
    """Declarative entry point over the scenario helpers above.

    ``kind`` selects the scenario family: ``"kernel_class"`` (requires
    ``op_class``), ``"communication"`` (optionally one ``group``) or
    ``"launch_overhead"`` (ignores ``speedup``; launches are removed).
    This is what the sweep runner calls after expanding a declarative spec,
    passing one reusable ``session`` so the whole scenario group shares a
    single compiled graph.
    """
    if kind == "kernel_class":
        if not op_class:
            raise ValueError("what-if kind 'kernel_class' requires op_class")
        return speed_up_kernel_class(graph, op_class, speedup, baseline=baseline,
                                     session=session)
    if kind == "communication":
        return speed_up_communication(graph, speedup, group=group, baseline=baseline,
                                      session=session)
    if kind == "launch_overhead":
        return remove_launch_overhead(graph, baseline=baseline, session=session)
    raise ValueError(f"unknown what-if kind '{kind}'")
