"""What-if scenario evaluation on execution graphs.

The paper's discussion section (§5) highlights that a fine-grained execution
graph can answer "how much would the overall runtime improve if a kernel ran
twice as fast" style questions before any engineering work happens.  This
module provides that capability as a first-class API: a scenario rescales a
selected set of kernels, the modified graph is re-simulated, and the result
reports the end-to-end effect (which is usually much smaller than the local
speed-up because of overlap and critical-path effects).

Scenarios are plain ``(name, predicate, speedup)`` descriptions
(:class:`Scenario`); evaluating one is a duration-vector swap on a reusable
:class:`~repro.core.engine.SimulationSession`, and evaluating a *batch*
(:func:`evaluate_scenarios`) builds one ``(B, n_tasks)`` duration matrix
and simulates every scenario in a single vectorized sweep through
:meth:`~repro.core.engine.SimulationSession.run_batch` — with the engine's
documented fallback to per-scenario sequential runs for graphs whose
schedule is not provably duration-independent.  Both paths produce
bit-identical times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.engine import SessionRun, SimulationSession, compile_graph
from repro.core.graph import ExecutionGraph
from repro.core.replay import ReplayResult
from repro.core.tasks import Task, TaskKind

if TYPE_CHECKING:
    from repro.core.serving_metrics import ServingMetrics

TaskPredicate = Callable[[Task], bool]

#: Anything that can serve as the baseline timing of a scenario: a full
#: :class:`ReplayResult`, a raw :class:`SessionRun`, or the time itself.
Baseline = ReplayResult | SessionRun | float


@dataclass(frozen=True)
class WhatIfResult:
    """Outcome of one what-if scenario."""

    name: str
    baseline_time_us: float
    scenario_time_us: float
    affected_tasks: int
    #: Per-request serving metrics of the scenario's own simulation — set
    #: by callers that evaluate over a continuous-batching episode (the
    #: :class:`~repro.api.WhatIfBuilder`), ``None`` everywhere else.
    serving: "ServingMetrics | None" = None

    @property
    def saved_us(self) -> float:
        return self.baseline_time_us - self.scenario_time_us

    @property
    def speedup(self) -> float:
        if self.scenario_time_us <= 0:
            return float("inf")
        return self.baseline_time_us / self.scenario_time_us

    @property
    def improvement_percent(self) -> float:
        if self.baseline_time_us <= 0:
            return 0.0
        return self.saved_us / self.baseline_time_us * 100.0


@dataclass(frozen=True)
class Scenario:
    """One what-if scenario: rescale matching tasks by ``1/speedup``.

    A ``speedup`` of ``float("inf")`` removes the matching tasks from the
    timeline entirely (their durations become zero).
    """

    name: str
    predicate: TaskPredicate
    speedup: float = 2.0


def _communication_predicate(group: str | None) -> TaskPredicate:
    def predicate(task: Task) -> bool:
        if task.kind != TaskKind.GPU or not task.is_communication:
            return False
        return group is None or task.args.get("group") == group
    return predicate


def _kernel_class_predicate(op_class: str) -> TaskPredicate:
    def predicate(task: Task) -> bool:
        return task.kind == TaskKind.GPU and task.op_class == op_class
    return predicate


def _launch_overhead_predicate() -> TaskPredicate:
    def predicate(task: Task) -> bool:
        return task.kind == TaskKind.CPU and task.name == "cudaLaunchKernel"
    return predicate


def scenario_for(kind: str, *, op_class: str | None = None,
                 group: str | None = None, speedup: float = 2.0) -> Scenario:
    """Build the :class:`Scenario` for one declarative what-if kind.

    ``kind`` selects the scenario family: ``"kernel_class"`` (requires
    ``op_class``), ``"communication"`` (optionally one ``group``: tp/dp/pp)
    or ``"launch_overhead"`` (ignores ``speedup``; launches are removed).
    This is what the sweep runner and the :class:`~repro.api.WhatIfBuilder`
    queue after expanding a declarative spec.
    """
    if kind == "kernel_class":
        if not op_class:
            raise ValueError("what-if kind 'kernel_class' requires op_class")
        return Scenario(name=f"{op_class} x{speedup:g}",
                        predicate=_kernel_class_predicate(op_class),
                        speedup=speedup)
    if kind == "communication":
        return Scenario(name=f"{group or 'all'}-communication x{speedup:g}",
                        predicate=_communication_predicate(group),
                        speedup=speedup)
    if kind == "launch_overhead":
        return Scenario(name="zero launch overhead",
                        predicate=_launch_overhead_predicate(),
                        speedup=float("inf"))
    raise ValueError(f"unknown what-if kind '{kind}'")


def _clone_graph(graph: ExecutionGraph) -> ExecutionGraph:
    clone = ExecutionGraph(metadata=dict(graph.metadata))
    id_map: dict[int, int] = {}
    for task in graph.task_list():
        copy = task.copy()
        copy.task_id = -1
        id_map[task.task_id] = clone.add_task(copy).task_id
    for dependency in graph.dependencies:
        clone.add_dependency(id_map[dependency.src], id_map[dependency.dst], dependency.dep_type)
    return clone


def _baseline_time_us(baseline: Baseline) -> float:
    if isinstance(baseline, (int, float)):
        return float(baseline)
    return baseline.iteration_time_us


#: Per-scenario timing observer for :func:`evaluate_scenarios`: called as
#: ``collect(row, starts, durations)`` with dense-ordered arrays (one row
#: of the batched simulation).  Serving studies use it to derive
#: per-request metrics from the same simulation that timed the scenario.
ScenarioCollector = Callable[[int, np.ndarray, np.ndarray], None]


def evaluate_scenarios(graph: ExecutionGraph,
                       scenarios: Sequence[Scenario], *,
                       baseline: Baseline | None = None,
                       session: SimulationSession | None = None,
                       collect: ScenarioCollector | None = None) -> list[WhatIfResult]:
    """Evaluate a batch of scenarios against one graph in a single sweep.

    The graph is compiled once (or not at all when ``session`` — which
    must have been compiled from ``graph`` — is supplied), the scenarios'
    rescaled duration vectors are stacked into one ``(B, n_tasks)``
    matrix, and the whole batch is simulated by one
    :meth:`~repro.core.engine.SimulationSession.run_batch` call.  Results
    are bit-identical to evaluating each scenario on its own.

    ``collect`` (when given) observes every scenario's full timing row —
    ``collect(row, starts, durations)`` in dense task order — without a
    second simulation.
    """
    if not scenarios:
        return []
    for scenario in scenarios:
        if scenario.speedup <= 0:
            raise ValueError("speedup must be positive")
    if session is None:
        session = SimulationSession(compile_graph(graph))
    baseline_time = (_baseline_time_us(baseline) if baseline is not None
                     else session.run().iteration_time_us)

    compiled = session.compiled
    matrix = np.empty((len(scenarios), compiled.n_tasks), dtype=np.float64)
    affected: list[int] = []
    for row, scenario in enumerate(scenarios):
        durations, count = compiled.scaled_durations(scenario.predicate,
                                                     scenario.speedup)
        matrix[row] = durations
        affected.append(count)

    if len(scenarios) == 1:
        run = session.run(durations=matrix[0])
        times = [run.iteration_time_us]
        if collect is not None:
            collect(0, run.starts, matrix[0])
    else:
        batch = session.run_batch(matrix)
        times = batch.iteration_times_us.tolist()
        if collect is not None:
            for row in range(len(scenarios)):
                collect(row, batch.starts[row], matrix[row])

    return [WhatIfResult(name=scenario.name,
                         baseline_time_us=baseline_time,
                         scenario_time_us=time,
                         affected_tasks=count)
            for scenario, time, count in zip(scenarios, times, affected)]


def evaluate_scenario(graph: ExecutionGraph, name: str, predicate: TaskPredicate,
                      speedup: float,
                      baseline: Baseline | None = None,
                      session: SimulationSession | None = None) -> WhatIfResult:
    """Rescale every task matching ``predicate`` by ``1/speedup`` and re-simulate.

    The input graph is left untouched; a ``speedup`` of 2.0 halves the
    matching tasks' durations, ``float("inf")`` removes them from the
    timeline entirely.

    A scenario is one duration-vector swap on a reusable simulation
    session: the graph is compiled once (or not at all when ``session`` —
    which must have been compiled from ``graph`` — is supplied) and only
    the rescaled durations are re-simulated.  Sweeps that evaluate many
    scenarios against one graph should batch them through
    :func:`evaluate_scenarios` instead (one vectorized simulation for the
    whole batch).
    """
    return evaluate_scenarios(graph, [Scenario(name=name, predicate=predicate,
                                               speedup=speedup)],
                              baseline=baseline, session=session)[0]


def speed_up_communication(graph: ExecutionGraph, speedup: float = 2.0,
                           group: str | None = None,
                           baseline: Baseline | None = None,
                           session: SimulationSession | None = None) -> WhatIfResult:
    """What if communication kernels (optionally one group: tp/dp/pp) were faster?"""
    scenario = scenario_for("communication", group=group, speedup=speedup)
    return evaluate_scenarios(graph, [scenario], baseline=baseline,
                              session=session)[0]


def speed_up_kernel_class(graph: ExecutionGraph, op_class: str, speedup: float = 2.0,
                          baseline: Baseline | None = None,
                          session: SimulationSession | None = None) -> WhatIfResult:
    """What if every kernel of one class (e.g. ``"gemm"``) were faster?"""
    scenario = scenario_for("kernel_class", op_class=op_class, speedup=speedup)
    return evaluate_scenarios(graph, [scenario], baseline=baseline,
                              session=session)[0]


def remove_launch_overhead(graph: ExecutionGraph,
                           baseline: Baseline | None = None,
                           session: SimulationSession | None = None) -> WhatIfResult:
    """What if CPU-side launch overhead were free (CUDA-graph style launches)?"""
    scenario = scenario_for("launch_overhead")
    return evaluate_scenarios(graph, [scenario], baseline=baseline,
                              session=session)[0]


def apply_speedup(graph: ExecutionGraph, kind: str, *, op_class: str | None = None,
                  group: str | None = None, speedup: float = 2.0,
                  baseline: Baseline | None = None,
                  session: SimulationSession | None = None) -> WhatIfResult:
    """Declarative entry point over the scenario helpers above.

    ``kind`` selects the scenario family exactly like :func:`scenario_for`.
    Sweep groups that evaluate several declarative scenarios against one
    graph should build them with :func:`scenario_for` and submit the list
    to :func:`evaluate_scenarios` so the whole group shares a single
    batched simulation.
    """
    return evaluate_scenarios(graph, [scenario_for(kind, op_class=op_class,
                                                   group=group, speedup=speedup)],
                              baseline=baseline, session=session)[0]
