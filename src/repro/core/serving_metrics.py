"""Per-request serving metrics for continuous-batching episodes.

A continuous-batching serving graph carries its :class:`StreamPlan` in
graph metadata (key ``"serving_stream"``); any simulation of that graph
— the base replay, a what-if duration swap, a serving re-timing — yields
per-request timings by reading the simulated end of each phase's
``sample_token`` kernel:

* a request's **first token** is sampled at the end of its prefill
  chunk's head (TTFT = that end minus the request's arrival);
* its **completion** is the sampled token of its last decode step.

Arrival offsets are anchored at the simulation's earliest task start, so
host-side setup (request batching, tokenisation) counts toward the first
batch's TTFT — deliberately: that latency is real.

From the per-request (arrival, first token, completion) triples,
:class:`ServingMetrics` derives the serving numbers engineers rank
deployments by: TTFT and end-to-end latency p50/p99, generation
throughput (tokens/s), and SLO attainment / goodput at a configurable
latency deadline.  Quantiles use deterministic linear interpolation so
golden snapshots are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.tasks import Task
from repro.observability import tracing as observability
from repro.workload.arrivals import STREAM_METADATA_KEY, StreamPlan

__all__ = [
    "DEFAULT_SLO_MS",
    "RequestMetrics",
    "ServingMetrics",
    "compute_serving_metrics",
    "metrics_from_task_times",
    "stream_plan_of",
]

#: Default per-request end-to-end latency deadline for SLO attainment.
DEFAULT_SLO_MS = 500.0

_US_PER_MS = 1000.0
_US_PER_S = 1_000_000.0


@dataclass(frozen=True)
class RequestMetrics:
    """One request's simulated lifecycle (absolute simulation timestamps)."""

    request: int
    arrival_us: float
    first_token_us: float
    completion_us: float
    #: Tokens this request generated (its prefill token + one per decode step).
    tokens: int

    @property
    def ttft_us(self) -> float:
        """Time to first token: arrival until the prefill samples a token."""
        return self.first_token_us - self.arrival_us

    @property
    def ttft_ms(self) -> float:
        return self.ttft_us / _US_PER_MS

    @property
    def latency_us(self) -> float:
        """End-to-end request latency: arrival until the last token."""
        return self.completion_us - self.arrival_us

    @property
    def latency_ms(self) -> float:
        return self.latency_us / _US_PER_MS


def _percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile (deterministic, numpy-free)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    position = (pct / 100.0) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate serving quality of one simulated episode."""

    requests: tuple[RequestMetrics, ...]
    deadline_ms: float = DEFAULT_SLO_MS

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("serving metrics need at least one request")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def tokens_generated(self) -> int:
        return sum(r.tokens for r in self.requests)

    @property
    def episode_us(self) -> float:
        """First arrival until last completion."""
        return (max(r.completion_us for r in self.requests)
                - min(r.arrival_us for r in self.requests))

    @property
    def tokens_per_s(self) -> float:
        return self.tokens_generated / (self.episode_us / _US_PER_S)

    @property
    def request_throughput_rps(self) -> float:
        return self.num_requests / (self.episode_us / _US_PER_S)

    @property
    def ttft_p50_ms(self) -> float:
        return _percentile([r.ttft_ms for r in self.requests], 50.0)

    @property
    def ttft_p99_ms(self) -> float:
        return _percentile([r.ttft_ms for r in self.requests], 99.0)

    @property
    def latency_p50_ms(self) -> float:
        return _percentile([r.latency_ms for r in self.requests], 50.0)

    @property
    def latency_p99_ms(self) -> float:
        return _percentile([r.latency_ms for r in self.requests], 99.0)

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests whose end-to-end latency met the deadline."""
        met = sum(1 for r in self.requests if r.latency_ms <= self.deadline_ms)
        return met / self.num_requests

    @property
    def goodput_rps(self) -> float:
        """Deadline-meeting requests per second (the SLO-weighted throughput)."""
        return self.request_throughput_rps * self.slo_attainment

    def to_json(self) -> dict[str, Any]:
        """The summary payload sweeps cache and CLI reports print."""
        return {
            "num_requests": self.num_requests,
            "tokens_generated": self.tokens_generated,
            "deadline_ms": self.deadline_ms,
            "episode_us": self.episode_us,
            "ttft_p50_ms": self.ttft_p50_ms,
            "ttft_p99_ms": self.ttft_p99_ms,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "tokens_per_s": self.tokens_per_s,
            "request_throughput_rps": self.request_throughput_rps,
            "slo_attainment": self.slo_attainment,
            "goodput_rps": self.goodput_rps,
        }


def stream_plan_of(metadata: Mapping[str, Any]) -> StreamPlan | None:
    """Decode the continuous-batching plan from trace/graph metadata."""
    payload = metadata.get(STREAM_METADATA_KEY)
    if payload is None:
        return None
    return StreamPlan.from_json(payload)


def _metrics_from_events(events: Iterator[tuple[Task, float, float]],
                         plan: StreamPlan,
                         deadline_ms: float | None) -> ServingMetrics:
    """Core computation over (task, start, end) timing triples."""
    anchor: float | None = None
    sample_ends: dict[tuple[str, int], float] = {}
    for task, start, end in events:
        if anchor is None or start < anchor:
            anchor = start
        args = task.args
        if args.get("op_name") != "sample_token":
            continue
        phase = args.get("phase")
        if phase not in ("prefill", "decode"):
            continue
        key = (phase, int(args.get("microbatch", 0)))
        known = sample_ends.get(key)
        if known is None or end > known:
            sample_ends[key] = end
    if anchor is None:
        raise ValueError("serving metrics need a non-empty simulation")

    requests = []
    for schedule in plan.requests:
        try:
            first = sample_ends[("prefill", schedule.prefill_chunk)]
            completion = sample_ends[("decode", schedule.last_step)]
        except KeyError as missing:
            raise ValueError(
                f"simulation has no sample_token task for {missing.args[0]!r}; "
                "the graph does not match the stream plan") from None
        requests.append(RequestMetrics(
            request=schedule.request,
            arrival_us=anchor + schedule.arrival_us,
            first_token_us=first,
            completion_us=completion,
            tokens=schedule.num_decode_steps + 1,
        ))
    metrics = ServingMetrics(
        requests=tuple(requests),
        deadline_ms=DEFAULT_SLO_MS if deadline_ms is None else float(deadline_ms))
    if observability.tracing_enabled():
        for request in metrics.requests:
            observability.observe("serving.ttft_ms", request.ttft_ms)
            observability.observe("serving.latency_ms", request.latency_ms)
        observability.gauge("serving.slo_attainment", metrics.slo_attainment)
        observability.gauge("serving.goodput_rps", metrics.goodput_rps)
    return metrics


def compute_serving_metrics(simulation, plan: StreamPlan, *,
                            deadline_ms: float | None = None) -> ServingMetrics:
    """Score a :class:`SimulationResult` against a stream plan."""
    events = ((t.task, t.start, t.end) for t in simulation.tasks.values())
    return _metrics_from_events(events, plan, deadline_ms)


def metrics_from_task_times(tasks: Sequence[Task], starts: Iterable[float],
                            durations: Iterable[float], plan: StreamPlan, *,
                            deadline_ms: float | None = None) -> ServingMetrics:
    """Score dense-ordered task timing arrays (the batched what-if path).

    ``tasks`` is ``CompiledGraph.tasks`` and ``starts``/``durations`` one
    row of a (batched) session run, all in dense task order.
    """
    events = ((task, start, start + duration)
              for task, start, duration in zip(tasks, starts, durations))
    return _metrics_from_events(events, plan, deadline_ms)
