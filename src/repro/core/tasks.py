"""Tasks of the execution graph.

The paper's execution graph contains only two kinds of tasks (§3.3.1):

* **CPU tasks** — PyTorch operators and CUDA runtime events, tagged with
  the CPU thread that executed them;
* **GPU tasks** — GPU kernels (and memcpy/memset), tagged with the CUDA
  stream that executed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any


class TaskKind(str, Enum):
    """Whether a task executed on a CPU thread or a CUDA stream."""

    CPU = "cpu"
    GPU = "gpu"


class DependencyType(str, Enum):
    """The four dependency classes of §3.3.2 (plus collective grouping)."""

    CPU_INTRA_THREAD = "cpu_intra_thread"
    CPU_INTER_THREAD = "cpu_inter_thread"
    CPU_TO_GPU = "cpu_to_gpu"
    GPU_TO_CPU = "gpu_to_cpu"
    GPU_INTRA_STREAM = "gpu_intra_stream"
    GPU_INTER_STREAM = "gpu_inter_stream"


_COMM_NAME_MARKERS = ("nccl", "allreduce", "all_reduce", "allgather", "all_gather",
                      "reducescatter", "reduce_scatter", "sendrecv")


@dataclass
class Task:
    """One node of the execution graph.

    Attributes
    ----------
    task_id:
        Graph-unique integer id.
    rank:
        Global rank the task belongs to.
    kind:
        :class:`TaskKind` — CPU thread task or GPU stream task.
    name:
        Operator / runtime-call / kernel name from the trace.
    duration:
        Duration in microseconds (what the simulator replays).
    trace_ts:
        Original start timestamp in the profiled trace (used to order
        processor queues and to resolve event-synchronisation pairs).
    thread:
        CPU thread id for CPU tasks.
    stream:
        CUDA stream id for GPU tasks.
    correlation:
        Correlation id linking a launch runtime task with its kernel.
    category:
        Original trace event category.
    args:
        Original event args (layer, microbatch, op_class, collective
        metadata, ...), preserved so that replayed traces keep the
        information downstream analyses need.
    sync_streams:
        For blocking synchronisation tasks: the stream ids the task waits
        for (``None`` entries are not allowed; an empty tuple means the
        task is not a synchronisation point).  Device-wide synchronisation
        is expressed by listing every stream of the rank.
    collective_group:
        Key shared by the GPU tasks of one cross-rank collective instance
        (pipeline send/recv pairs); the simulator aligns their start times.
    """

    task_id: int
    rank: int
    kind: TaskKind
    name: str
    duration: float
    trace_ts: float = 0.0
    thread: int | None = None
    stream: int | None = None
    correlation: int | None = None
    category: str = ""
    args: dict[str, Any] = field(default_factory=dict)
    sync_streams: tuple[int, ...] = ()
    collective_group: str | None = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task '{self.name}' has negative duration {self.duration}")
        if self.kind == TaskKind.GPU and self.stream is None:
            raise ValueError(f"GPU task '{self.name}' requires a stream id")
        if self.kind == TaskKind.CPU and self.thread is None:
            raise ValueError(f"CPU task '{self.name}' requires a thread id")

    # -- derived metadata ----------------------------------------------------

    @property
    def processor(self) -> tuple[int, str, int]:
        """The processor the task occupies: ``(rank, "thread"/"stream", id)``."""
        if self.kind == TaskKind.CPU:
            return (self.rank, "thread", int(self.thread))  # type: ignore[arg-type]
        return (self.rank, "stream", int(self.stream))  # type: ignore[arg-type]

    @property
    def is_communication(self) -> bool:
        """True for communication kernels (NCCL collectives, send/recv)."""
        if self.kind != TaskKind.GPU:
            return False
        if self.args.get("collective"):
            return True
        lowered = self.name.lower()
        return any(marker in lowered for marker in _COMM_NAME_MARKERS)

    @property
    def is_sync(self) -> bool:
        """True for blocking CUDA synchronisation tasks."""
        return bool(self.sync_streams)

    @property
    def op_class(self) -> str | None:
        return self.args.get("op_class")

    @property
    def layer(self) -> int | None:
        return self.args.get("layer")

    @property
    def microbatch(self) -> int | None:
        return self.args.get("microbatch")

    @property
    def phase(self) -> str | None:
        return self.args.get("phase")

    def copy(self, **overrides: Any) -> "Task":
        """Return a copy with selected fields replaced (args are deep-ish copied)."""
        if not overrides:
            # Hot path: graph manipulations clone every task of a trace, and
            # ``dataclasses.replace`` re-runs ``__init__``/``__post_init__``
            # validation the source task already passed.
            clone = object.__new__(Task)
            clone.__dict__.update(self.__dict__)
            clone.args = dict(self.args)
            return clone
        clone = replace(self, **overrides)
        if "args" not in overrides:
            clone.args = dict(self.args)
        return clone
