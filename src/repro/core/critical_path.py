"""Critical-path and kernel-time analysis of a simulated execution.

Beyond replaying the iteration time, the execution graph supports the
diagnostic questions the paper motivates ("identifying performance
bottlenecks and guiding optimization efforts"): which chain of tasks
determines the iteration time, and where the GPU time goes by kernel class.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.graph import ExecutionGraph
from repro.core.simulator import SimulationResult, SimulatedTask, Simulator
from repro.core.tasks import Task, TaskKind


@dataclass(frozen=True)
class CriticalPathEntry:
    """One task on the critical path with its contribution."""

    task: Task
    start: float
    duration: float


@dataclass(frozen=True)
class CriticalPath:
    """The chain of tasks that determines the simulated makespan."""

    entries: tuple[CriticalPathEntry, ...]
    total_time: float

    def __len__(self) -> int:
        return len(self.entries)

    def time_by_category(self) -> dict[str, float]:
        """Critical-path time attributed to compute / communication / cpu."""
        buckets: dict[str, float] = defaultdict(float)
        for entry in self.entries:
            if entry.task.kind == TaskKind.CPU:
                buckets["cpu"] += entry.duration
            elif entry.task.is_communication:
                buckets["communication"] += entry.duration
            else:
                buckets["compute"] += entry.duration
        waiting = self.total_time - sum(buckets.values())
        buckets["wait"] = max(waiting, 0.0)
        return dict(buckets)


def critical_path(graph: ExecutionGraph,
                  simulation: SimulationResult | None = None) -> CriticalPath:
    """Extract the critical path of a (simulated) execution graph.

    The path is traced backwards from the task that finishes last: at each
    step the predecessor (graph dependency, processor predecessor, or
    collective/synchronisation constraint is approximated by the graph
    dependencies plus processor order) whose finish time equals the current
    task's start time is followed; if none matches exactly, the
    latest-finishing predecessor is used.
    """
    if simulation is None:
        simulation = Simulator(graph).run()
    if not simulation.tasks:
        return CriticalPath(entries=(), total_time=0.0)

    # Processor predecessor lookup from the simulated order.
    by_processor: dict[tuple, list[SimulatedTask]] = defaultdict(list)
    for simulated in simulation.tasks.values():
        by_processor[simulated.task.processor].append(simulated)
    processor_predecessor: dict[int, int] = {}
    for simulated_tasks in by_processor.values():
        simulated_tasks.sort(key=lambda t: (t.start, t.task.task_id))
        for previous, current in zip(simulated_tasks, simulated_tasks[1:]):
            processor_predecessor[current.task.task_id] = previous.task.task_id

    last = max(simulation.tasks.values(), key=lambda t: t.end)
    entries: list[CriticalPathEntry] = []
    current: SimulatedTask | None = last
    visited: set[int] = set()
    while current is not None and current.task.task_id not in visited:
        visited.add(current.task.task_id)
        entries.append(CriticalPathEntry(task=current.task, start=current.start,
                                         duration=current.duration))
        candidates = list(graph.predecessors(current.task.task_id))
        if current.task.task_id in processor_predecessor:
            candidates.append(processor_predecessor[current.task.task_id])
        candidate_tasks = [simulation.tasks[c] for c in candidates if c in simulation.tasks]
        if not candidate_tasks:
            break
        exact = [c for c in candidate_tasks if abs(c.end - current.start) < 1e-6]
        current = (max(exact, key=lambda t: t.end) if exact
                   else max(candidate_tasks, key=lambda t: t.end))
        if current.end < simulation.start_time + 1e-9 and current.start <= simulation.start_time:
            entries.append(CriticalPathEntry(task=current.task, start=current.start,
                                             duration=current.duration))
            break
    entries.reverse()
    return CriticalPath(entries=tuple(entries), total_time=simulation.total_time())


@dataclass(frozen=True)
class KernelClassSummary:
    """Aggregate GPU time of one kernel class."""

    op_class: str
    total_time_us: float
    count: int
    share: float


def kernel_time_summary(graph: ExecutionGraph,
                        top_k: int | None = None) -> list[KernelClassSummary]:
    """GPU time grouped by kernel class (``op_class`` arg, or comm/other).

    Useful for "where does the time go" reports; operates on recorded task
    durations, so it works before or after manipulation.
    """
    totals: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for task in graph.gpu_tasks():
        key = task.op_class or ("communication" if task.is_communication else "other")
        totals[key] += task.duration
        counts[key] += 1
    grand_total = sum(totals.values()) or 1.0
    summary = [
        KernelClassSummary(op_class=key, total_time_us=totals[key], count=counts[key],
                           share=totals[key] / grand_total)
        for key in sorted(totals, key=totals.get, reverse=True)
    ]
    return summary[:top_k] if top_k is not None else summary


def launch_overhead_summary(graph: ExecutionGraph) -> dict[str, float]:
    """Host-side launch statistics: total and mean ``cudaLaunchKernel`` time."""
    durations = [task.duration for task in graph.cpu_tasks()
                 if task.name == "cudaLaunchKernel"]
    if not durations:
        return {"count": 0, "total_us": 0.0, "mean_us": 0.0}
    return {
        "count": float(len(durations)),
        "total_us": float(sum(durations)),
        "mean_us": float(sum(durations) / len(durations)),
    }
