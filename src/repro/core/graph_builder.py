"""Constructs the execution graph from Kineto-style traces.

The builder implements §3.3 of the paper: it creates CPU and GPU tasks from
the trace events and connects them with the four dependency classes:

* **CPU → CPU**: consecutive tasks on the same thread (intra-thread), and
  cross-thread dependencies detected from significant execution gaps
  (inter-thread), e.g. the autograd thread starting after the forward pass.
* **CPU → GPU**: a ``cudaLaunchKernel``-style runtime task to the kernel it
  enqueues, linked by correlation id.
* **GPU → CPU**: blocking synchronisation calls (``cudaStreamSynchronize``,
  ``cudaDeviceSynchronize``).  These are *runtime* dependencies — which
  kernel is last on the stream is only known during simulation — so the
  builder records the target streams on the task and the simulator resolves
  them dynamically (Algorithm 1).
* **GPU → GPU**: consecutive kernels on the same stream (intra-stream), and
  inter-stream dependencies reconstructed from ``cudaEventRecord`` /
  ``cudaStreamWaitEvent`` pairs.

Point-to-point kernels that carry a ``comm_id`` are additionally grouped
across ranks so the simulator can align matching send/recv pairs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.graph import ExecutionGraph
from repro.core.tasks import DependencyType, Task, TaskKind
from repro.trace.events import Category, CudaRuntimeName, TraceEvent
from repro.trace.kineto import KinetoTrace, TraceBundle

_SYNC_CALL_OVERHEAD_US = 5.0


@dataclass(frozen=True)
class GraphBuilderOptions:
    """Feature switches of the graph builder.

    The defaults correspond to Lumos; disabling ``include_inter_stream`` and
    ``include_collective_groups`` yields the dPRO-style graph used as the
    baseline in the paper's evaluation.
    """

    include_inter_thread: bool = True
    include_inter_stream: bool = True
    include_sync: bool = True
    include_collective_groups: bool = True
    inter_thread_gap_us: float = 25.0
    profiler_step: int | None = None


class GraphBuilder:
    """Builds an :class:`ExecutionGraph` from one or more Kineto traces."""

    def __init__(self, options: GraphBuilderOptions | None = None) -> None:
        self.options = options or GraphBuilderOptions()

    # -- public API ----------------------------------------------------------------

    def build(self, traces: TraceBundle | KinetoTrace) -> ExecutionGraph:
        """Build the execution graph for a bundle (all ranks) or a single trace."""
        bundle = traces if isinstance(traces, TraceBundle) else _single_rank_bundle(traces)
        graph = ExecutionGraph(metadata=dict(bundle.metadata))
        for trace in bundle:
            self._add_rank(graph, trace)
        if self.options.include_collective_groups:
            self._prune_incomplete_groups(graph)
        return graph

    # -- per-rank construction --------------------------------------------------------

    def _add_rank(self, graph: ExecutionGraph, trace: KinetoTrace) -> None:
        window = trace.iteration_window(self.options.profiler_step)
        events = [e for e in trace.events
                  if e.ts >= window[0] and e.end <= window[1] + 1e-6]

        cpu_events = self._select_cpu_events(events)
        gpu_events = [e for e in events if e.cat in Category.GPU_CATEGORIES]
        rank = trace.rank

        cpu_tasks = [self._make_cpu_task(graph, rank, event) for event in cpu_events]
        gpu_tasks = [self._make_gpu_task(graph, rank, event) for event in gpu_events]

        self._add_cpu_dependencies(graph, rank, cpu_tasks)
        launch_ts_by_correlation = self._add_launch_dependencies(graph, cpu_tasks, gpu_tasks)
        self._add_stream_dependencies(graph, rank, gpu_tasks)
        if self.options.include_inter_stream:
            self._add_inter_stream_dependencies(graph, rank, cpu_tasks, gpu_tasks,
                                                launch_ts_by_correlation)
        if self.options.include_sync:
            self._mark_sync_tasks(rank, cpu_tasks, gpu_tasks)

    # -- task creation -----------------------------------------------------------------

    def _select_cpu_events(self, events: list[TraceEvent]) -> list[TraceEvent]:
        """CPU operator and runtime events, excluding wrapper ops around launches.

        Framework traces nest the runtime launch call inside the operator
        that issued it; keeping both would double-count CPU time on the
        thread, so operator events that contain a runtime event are dropped
        in favour of the runtime event itself.
        """
        cpu = [e for e in events if e.cat in (Category.CPU_OP, Category.CUDA_RUNTIME)]
        runtime_starts: dict[int, list[float]] = {}
        for event in cpu:
            if event.cat == Category.CUDA_RUNTIME:
                runtime_starts.setdefault(event.tid, []).append(event.ts)
        for starts in runtime_starts.values():
            starts.sort()

        selected: list[TraceEvent] = []
        for event in cpu:
            if event.cat == Category.CPU_OP:
                starts = runtime_starts.get(event.tid, [])
                index = bisect.bisect_left(starts, event.ts)
                contains_runtime = index < len(starts) and starts[index] < event.end
                if contains_runtime:
                    continue
            selected.append(event)
        return selected

    def _make_cpu_task(self, graph: ExecutionGraph, rank: int, event: TraceEvent) -> Task:
        task = Task(
            task_id=-1, rank=rank, kind=TaskKind.CPU, name=event.name,
            duration=event.dur, trace_ts=event.ts, thread=event.tid,
            correlation=event.correlation, category=event.cat, args=dict(event.args),
        )
        return graph.add_task(task)

    def _make_gpu_task(self, graph: ExecutionGraph, rank: int, event: TraceEvent) -> Task:
        collective_group = None
        if self.options.include_collective_groups and event.args.get("comm_id") is not None:
            collective_group = str(event.args["comm_id"])
        task = Task(
            task_id=-1, rank=rank, kind=TaskKind.GPU, name=event.name,
            duration=event.dur, trace_ts=event.ts, stream=int(event.stream),
            correlation=event.correlation, category=event.cat, args=dict(event.args),
            collective_group=collective_group,
        )
        return graph.add_task(task)

    # -- dependency construction ----------------------------------------------------------

    def _add_cpu_dependencies(self, graph: ExecutionGraph, rank: int,
                              cpu_tasks: list[Task]) -> None:
        by_thread: dict[int, list[Task]] = {}
        for task in cpu_tasks:
            by_thread.setdefault(int(task.thread), []).append(task)
        for tasks in by_thread.values():
            tasks.sort(key=lambda t: (t.trace_ts, t.task_id))
            for previous, current in zip(tasks, tasks[1:]):
                graph.add_dependency(previous.task_id, current.task_id,
                                     DependencyType.CPU_INTRA_THREAD)

        if not self.options.include_inter_thread or len(by_thread) < 2:
            return

        # Inter-thread: a task that starts after a significant gap on its own
        # thread (or is the first task of its thread) depends on the task on
        # another thread that finished most recently before it started.
        all_tasks = sorted(cpu_tasks, key=lambda t: (t.trace_ts, t.task_id))
        ends = [(t.trace_ts + t.duration, t.task_id, int(t.thread)) for t in all_tasks]
        ends.sort()
        end_times = [entry[0] for entry in ends]

        for thread, tasks in by_thread.items():
            previous_end: float | None = None
            for task in tasks:
                gap = float("inf") if previous_end is None else task.trace_ts - previous_end
                previous_end = task.trace_ts + task.duration
                if gap <= self.options.inter_thread_gap_us:
                    continue
                index = bisect.bisect_right(end_times, task.trace_ts + 1e-9) - 1
                while index >= 0:
                    _, candidate_id, candidate_thread = ends[index]
                    if candidate_thread != thread:
                        graph.add_dependency(candidate_id, task.task_id,
                                             DependencyType.CPU_INTER_THREAD)
                        break
                    index -= 1

    def _add_launch_dependencies(self, graph: ExecutionGraph, cpu_tasks: list[Task],
                                 gpu_tasks: list[Task]) -> dict[int, float]:
        launches = {t.correlation: t for t in cpu_tasks
                    if t.correlation is not None and t.name in CudaRuntimeName.LAUNCHES}
        launch_ts: dict[int, float] = {}
        for kernel in gpu_tasks:
            if kernel.correlation is None:
                continue
            launch = launches.get(kernel.correlation)
            if launch is None:
                continue
            graph.add_dependency(launch.task_id, kernel.task_id, DependencyType.CPU_TO_GPU)
            launch_ts[kernel.task_id] = launch.trace_ts
        return launch_ts

    def _add_stream_dependencies(self, graph: ExecutionGraph, rank: int,
                                 gpu_tasks: list[Task]) -> None:
        by_stream: dict[int, list[Task]] = {}
        for task in gpu_tasks:
            by_stream.setdefault(int(task.stream), []).append(task)
        for tasks in by_stream.values():
            tasks.sort(key=lambda t: (t.trace_ts, t.task_id))
            for previous, current in zip(tasks, tasks[1:]):
                graph.add_dependency(previous.task_id, current.task_id,
                                     DependencyType.GPU_INTRA_STREAM)

    def _add_inter_stream_dependencies(self, graph: ExecutionGraph, rank: int,
                                       cpu_tasks: list[Task], gpu_tasks: list[Task],
                                       launch_ts: dict[int, float]) -> None:
        """Reconstruct inter-stream edges from event record / stream wait pairs."""
        # Per stream, kernels ordered by launch time (enqueue order).
        enqueue_order: dict[int, list[tuple[float, int]]] = {}
        for kernel in gpu_tasks:
            ts = launch_ts.get(kernel.task_id, kernel.trace_ts)
            enqueue_order.setdefault(int(kernel.stream), []).append((ts, kernel.task_id))
        for entries in enqueue_order.values():
            entries.sort()

        records: dict[int, TaskRecord] = {}
        for task in cpu_tasks:
            if task.name == CudaRuntimeName.EVENT_RECORD:
                event_id = task.args.get("event_id")
                stream = task.args.get("stream")
                if event_id is None or stream is None:
                    continue
                records[int(event_id)] = TaskRecord(ts=task.trace_ts, stream=int(stream))

        for task in cpu_tasks:
            if task.name != CudaRuntimeName.STREAM_WAIT_EVENT:
                continue
            event_id = task.args.get("event_id")
            wait_stream = task.args.get("stream")
            if event_id is None or wait_stream is None:
                continue
            record = records.get(int(event_id))
            if record is None:
                continue
            source = _last_enqueued_before(enqueue_order.get(record.stream, []), record.ts)
            target = _first_enqueued_after(enqueue_order.get(int(wait_stream), []), task.trace_ts)
            if source is None or target is None or source == target:
                continue
            graph.add_dependency(source, target, DependencyType.GPU_INTER_STREAM)

    def _mark_sync_tasks(self, rank: int, cpu_tasks: list[Task], gpu_tasks: list[Task]) -> None:
        streams = tuple(sorted({int(t.stream) for t in gpu_tasks}))
        for task in cpu_tasks:
            if task.name == CudaRuntimeName.STREAM_SYNCHRONIZE:
                stream = task.args.get("stream")
                if stream is not None:
                    task.sync_streams = (int(stream),)
            elif task.name == CudaRuntimeName.DEVICE_SYNCHRONIZE:
                task.sync_streams = streams
            elif task.name == CudaRuntimeName.EVENT_SYNCHRONIZE:
                stream = task.args.get("stream")
                task.sync_streams = (int(stream),) if stream is not None else streams
            if task.sync_streams:
                # The recorded duration of a blocking synchronisation call is
                # mostly the time the CPU spent waiting for the GPU; that wait
                # re-emerges during simulation from the runtime dependency, so
                # only the call overhead itself is replayed.
                task.duration = min(task.duration, _SYNC_CALL_OVERHEAD_US)

    def _prune_incomplete_groups(self, graph: ExecutionGraph) -> None:
        """Drop collective groups with a single member (nothing to align)."""
        for members in graph.collective_groups().values():
            if len(members) < 2:
                for task_id in members:
                    graph.tasks[task_id].collective_group = None


@dataclass(frozen=True)
class TaskRecord:
    """Timestamp and stream of a ``cudaEventRecord`` call."""

    ts: float
    stream: int


def _last_enqueued_before(entries: list[tuple[float, int]], ts: float) -> int | None:
    index = bisect.bisect_right(entries, (ts, float("inf"))) - 1
    return entries[index][1] if index >= 0 else None


def _first_enqueued_after(entries: list[tuple[float, int]], ts: float) -> int | None:
    index = bisect.bisect_left(entries, (ts, -1))
    return entries[index][1] if index < len(entries) else None


def _single_rank_bundle(trace: KinetoTrace) -> TraceBundle:
    bundle = TraceBundle()
    bundle.add(trace)
    return bundle


def build_execution_graph(traces: TraceBundle | KinetoTrace,
                          options: GraphBuilderOptions | None = None) -> ExecutionGraph:
    """Convenience wrapper: build the Lumos execution graph from traces."""
    return GraphBuilder(options).build(traces)
