"""The array-backed simulation engine: compile once, simulate many times.

The seed :class:`~repro.core.simulator.Simulator` rebuilds every piece of
scheduling state — indegrees, successor lists, per-stream kernel counts,
collective-group membership — from Python dicts on every call, which makes
it the hot path of what-if sweeps that re-simulate one graph hundreds of
times with nothing but kernel durations changing.

This module splits Algorithm 1 into two phases:

* :class:`CompiledGraph` precomputes the immutable structure of an
  execution graph exactly once: dense integer task ids (assigned in
  ``task_id`` order so heap tie-breaking matches the seed scheduler),
  CSR-style successor adjacency, a topological task order (which doubles
  as the cycle check), processor slots, per-stream kernel totals and
  collective-group membership — all as flat numpy arrays.

* :class:`SimulationSession` owns preallocated per-run buffers (ready
  times, start times, processor-available times, stream drain counters)
  and replays the compiled graph.  Repeated :meth:`SimulationSession.run`
  calls only reset buffers and optionally swap the duration vector, so a
  what-if scenario costs one array scaling plus one simulation — no graph
  clone, no dict rebuilds, no trace-bundle materialisation.

The engine is bit-identical to the seed scheduler: it performs the same
floating-point operations in the same order, so every start time matches
exactly (``tests/test_engine.py`` asserts this against a verbatim copy of
the seed algorithm).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.graph import ExecutionGraph
from repro.core.tasks import Task, TaskKind
from repro.observability import tracing as observability


@dataclass(frozen=True)
class CompiledGraph:
    """Immutable, array-backed structure of one execution graph.

    Dense index ``i`` refers to ``tasks[i]``; dense indices are assigned in
    ascending ``task_id`` order so that ordering by dense index is ordering
    by ``task_id`` (the seed scheduler's heap tie-break).
    """

    graph: ExecutionGraph
    #: Tasks in dense-index (ascending ``task_id``) order.
    tasks: tuple[Task, ...]
    #: ``task_id`` → dense index.
    index_of: dict[int, int]
    #: Base durations (microseconds), dense-indexed.  float64.
    durations: np.ndarray
    #: Fixed-dependency indegree per task.  int32.
    indegree: np.ndarray
    #: CSR successor adjacency: successors of ``i`` are
    #: ``succ_indices[succ_indptr[i]:succ_indptr[i + 1]]``.
    succ_indptr: np.ndarray
    succ_indices: np.ndarray
    #: Dense indices in Kahn topological order (ties broken by task id).
    topological: np.ndarray
    #: Processor slot per task (one slot per distinct ``(rank, kind, id)``).
    proc_index: np.ndarray
    n_procs: int
    #: Stream slot per task (GPU tasks only; ``-1`` otherwise).
    stream_slot: np.ndarray
    #: GPU kernel count per stream slot.  int64.
    stream_total: np.ndarray
    n_streams: int
    #: Per-task stream slots a blocking sync waits on (empty for non-sync
    #: tasks; streams with no kernels are dropped at compile time because
    #: they are trivially drained).
    sync_slots: tuple[tuple[int, ...], ...]
    #: Collective-group slot per task (``-1`` when not in a group).
    group_id: np.ndarray
    #: Group members (dense indices, ascending) per group slot.
    group_members: tuple[tuple[int, ...], ...]

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def mask(self, predicate: Callable[[Task], bool]) -> np.ndarray:
        """Boolean dense-indexed mask of the tasks matching ``predicate``."""
        return np.fromiter((predicate(task) for task in self.tasks),
                           dtype=bool, count=len(self.tasks))

    def scaled_durations(self, predicate: Callable[[Task], bool],
                         speedup: float) -> tuple[np.ndarray, int]:
        """Base durations with matching tasks rescaled by ``1/speedup``.

        Returns the new duration vector and the number of affected tasks; a
        ``speedup`` of ``float("inf")`` zeroes the matching durations.  The
        arithmetic matches the seed what-if path (per-element division)
        exactly.
        """
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        durations = self.durations.copy()
        mask = self.mask(predicate)
        if speedup == float("inf"):
            durations[mask] = 0.0
        else:
            durations[mask] = durations[mask] / speedup
        return durations, int(mask.sum())


def compile_graph(graph: ExecutionGraph) -> CompiledGraph:
    """Precompute the immutable scheduling structure of ``graph``.

    Raises ``RuntimeError`` when the fixed dependencies contain a cycle
    (the seed scheduler reported this at run time; compiling surfaces it
    up front via the topological sort).
    """
    with observability.trace_span("engine.compile_graph", tasks=len(graph.tasks)):
        return _compile_graph(graph)


def _compile_graph(graph: ExecutionGraph) -> CompiledGraph:
    task_ids = sorted(graph.tasks)
    tasks = tuple(graph.tasks[task_id] for task_id in task_ids)
    index_of = {task_id: index for index, task_id in enumerate(task_ids)}
    n = len(tasks)

    durations = np.fromiter((task.duration for task in tasks),
                            dtype=np.float64, count=n)

    indegree = np.zeros(n, dtype=np.int32)
    succ_counts = np.zeros(n, dtype=np.int64)
    for dependency in graph.dependencies:
        indegree[index_of[dependency.dst]] += 1
        succ_counts[index_of[dependency.src]] += 1
    succ_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(succ_counts, out=succ_indptr[1:])
    succ_indices = np.zeros(len(graph.dependencies), dtype=np.int64)
    cursor = succ_indptr[:-1].copy()
    for dependency in graph.dependencies:
        src = index_of[dependency.src]
        succ_indices[cursor[src]] = index_of[dependency.dst]
        cursor[src] += 1

    processors: dict[tuple, int] = {}
    proc_index = np.zeros(n, dtype=np.int64)
    for index, task in enumerate(tasks):
        proc_index[index] = processors.setdefault(task.processor, len(processors))

    streams: dict[tuple[int, int], int] = {}
    stream_slot = np.full(n, -1, dtype=np.int64)
    stream_counts: list[int] = []
    for index, task in enumerate(tasks):
        if task.kind == TaskKind.GPU:
            key = (task.rank, int(task.stream))
            slot = streams.setdefault(key, len(streams))
            if slot == len(stream_counts):
                stream_counts.append(0)
            stream_counts[slot] += 1
            stream_slot[index] = slot
    stream_total = np.asarray(stream_counts, dtype=np.int64)

    sync_slots: list[tuple[int, ...]] = []
    for task in tasks:
        slots = tuple(streams[(task.rank, stream)] for stream in task.sync_streams
                      if (task.rank, stream) in streams)
        sync_slots.append(slots)

    groups: dict[str, int] = {}
    group_id = np.full(n, -1, dtype=np.int64)
    members: list[list[int]] = []
    for index, task in enumerate(tasks):
        if task.collective_group is not None:
            slot = groups.setdefault(task.collective_group, len(groups))
            if slot == len(members):
                members.append([])
            members[slot].append(index)
            group_id[index] = slot
    group_members = tuple(tuple(member_list) for member_list in members)

    topological = _topological_order(n, indegree, succ_indptr, succ_indices)
    if len(topological) != n:
        on_cycle = sorted(set(range(n)) - set(topological.tolist()))
        names = [tasks[index].name for index in on_cycle[:10]]
        raise RuntimeError(
            f"execution graph contains a dependency cycle through "
            f"{len(on_cycle)} tasks (first: {names})"
        )

    return CompiledGraph(
        graph=graph,
        tasks=tasks,
        index_of=index_of,
        durations=durations,
        indegree=indegree,
        succ_indptr=succ_indptr,
        succ_indices=succ_indices,
        topological=topological,
        proc_index=proc_index,
        n_procs=len(processors),
        stream_slot=stream_slot,
        stream_total=stream_total,
        n_streams=len(streams),
        sync_slots=tuple(sync_slots),
        group_id=group_id,
        group_members=group_members,
    )


def _topological_order(n: int, indegree: np.ndarray, indptr: np.ndarray,
                       indices: np.ndarray) -> np.ndarray:
    """Kahn topological order over the CSR adjacency (heap for determinism)."""
    remaining = indegree.copy()
    heap = [index for index in range(n) if remaining[index] == 0]
    heapq.heapify(heap)
    order = np.zeros(n, dtype=np.int64)
    count = 0
    while heap:
        index = heapq.heappop(heap)
        order[count] = index
        count += 1
        for position in range(indptr[index], indptr[index + 1]):
            successor = int(indices[position])
            remaining[successor] -= 1
            if remaining[successor] == 0:
                heapq.heappush(heap, successor)
    return order[:count]


@dataclass(frozen=True)
class SessionRun:
    """Timings of one :meth:`SimulationSession.run` call, as flat arrays.

    ``starts``/``durations`` are dense-indexed (``compiled.tasks`` order);
    ``finalize_order`` records the order tasks were scheduled in, which the
    compatibility layer uses to materialise a :class:`SimulationResult`
    whose dict iteration order matches the seed scheduler exactly.
    """

    compiled: CompiledGraph
    start_time: float
    starts: np.ndarray
    durations: np.ndarray
    finalize_order: np.ndarray

    @property
    def ends(self) -> np.ndarray:
        return self.starts + self.durations

    def start_of(self, task_id: int) -> float:
        return float(self.starts[self.compiled.index_of[task_id]])

    def end_time(self) -> float:
        if len(self.starts) == 0:
            return self.start_time
        return float(self.ends.max())

    def total_time(self) -> float:
        return self.end_time() - self.start_time

    @property
    def iteration_time_us(self) -> float:
        """Global span (earliest start to latest end) in microseconds.

        Matches ``SimulationResult.to_trace_bundle().iteration_time()``:
        the simulated bundle wraps each rank's events in one profiler-step
        annotation, so the bundle-level iteration time collapses to the
        global task span.
        """
        if len(self.starts) == 0:
            return 0.0
        return float(self.ends.max() - self.starts.min())

    def to_simulation_result(self):
        """Materialise the seed-compatible :class:`SimulationResult`."""
        from repro.core.simulator import SimulatedTask, SimulationResult

        result = SimulationResult(start_time=self.start_time)
        tasks = self.compiled.tasks
        starts = self.starts
        durations = self.durations
        for index in self.finalize_order.tolist():
            task = tasks[index]
            result.tasks[task.task_id] = SimulatedTask(
                task=task, start=float(starts[index]),
                duration=float(durations[index]))
        return result


class SimulationSession:
    """A reusable Algorithm 1 runner over one compiled graph.

    The session preallocates every per-run buffer once; :meth:`run` resets
    them in place, so back-to-back simulations of the same structure (the
    sweep hot path) allocate almost nothing.  Passing ``durations`` swaps
    the kernel-duration vector without touching the graph.
    """

    def __init__(self, compiled: CompiledGraph) -> None:
        self.compiled = compiled
        self._batch = None
        n = compiled.n_tasks
        self._ready = np.zeros(n, dtype=np.float64)
        self._starts = np.zeros(n, dtype=np.float64)
        self._scheduled = np.zeros(n, dtype=bool)
        self._indegree = np.zeros(n, dtype=np.int32)
        self._proc_available = np.zeros(compiled.n_procs, dtype=np.float64)
        self._stream_finished = np.zeros(compiled.n_streams, dtype=np.int64)
        self._stream_last_end = np.zeros(compiled.n_streams, dtype=np.float64)
        self._group_value = np.zeros(n, dtype=np.float64)
        self._group_seen = np.zeros(n, dtype=bool)
        self._group_count = np.zeros(len(compiled.group_members), dtype=np.int64)
        self._waiting: list[list[int]] = [[] for _ in range(compiled.n_streams)]
        self._order = np.zeros(n, dtype=np.int64)

    def run(self, durations: Sequence[float] | np.ndarray | None = None,
            start_time: float = 0.0) -> SessionRun:
        """Simulate the compiled graph and return flat per-task timings.

        Parameters
        ----------
        durations:
            Optional replacement duration vector (dense-indexed, same
            length as the compiled task list).  ``None`` replays the base
            durations.
        start_time:
            Simulated time every processor becomes available at.
        """
        compiled = self.compiled
        n = compiled.n_tasks
        if durations is None:
            duration = compiled.durations
        else:
            duration = np.ascontiguousarray(durations, dtype=np.float64)
            if duration.shape != (n,):
                raise ValueError(
                    f"duration vector has shape {duration.shape}, expected ({n},)")
        if n == 0:
            return SessionRun(compiled=compiled, start_time=start_time,
                              starts=np.zeros(0), durations=np.zeros(0),
                              finalize_order=np.zeros(0, dtype=np.int64))

        ready = self._ready
        ready.fill(start_time)
        starts = self._starts
        scheduled = self._scheduled
        scheduled.fill(False)
        indegree = self._indegree
        np.copyto(indegree, compiled.indegree)
        proc_available = self._proc_available
        proc_available.fill(start_time)
        stream_finished = self._stream_finished
        stream_finished.fill(0)
        stream_last_end = self._stream_last_end
        stream_last_end.fill(start_time)
        stream_total = compiled.stream_total
        group_value = self._group_value
        group_seen = self._group_seen
        group_seen.fill(False)
        group_count = self._group_count
        group_count.fill(0)
        waiting = self._waiting
        for parked in waiting:
            parked.clear()
        order = self._order

        indptr = compiled.succ_indptr
        indices = compiled.succ_indices
        proc_index = compiled.proc_index
        stream_slot = compiled.stream_slot
        sync_slots = compiled.sync_slots
        group_id = compiled.group_id
        group_members = compiled.group_members

        heap: list[tuple[float, int]] = [
            (start_time, index) for index in np.flatnonzero(indegree == 0).tolist()
        ]
        heapq.heapify(heap)
        finalized = 0

        def sync_ready_time(index: int, base: float) -> float:
            latest = base
            for slot in sync_slots[index]:
                latest = max(latest, stream_last_end[slot])
            return latest

        def finalize(index: int, at: float) -> None:
            nonlocal finalized
            processor = proc_index[index]
            begin = max(at, proc_available[processor])
            starts[index] = begin
            end = begin + duration[index]
            scheduled[index] = True
            order[finalized] = index
            finalized += 1
            proc_available[processor] = end
            slot = stream_slot[index]
            if slot >= 0:
                stream_finished[slot] += 1
                if end > stream_last_end[slot]:
                    stream_last_end[slot] = end
                if stream_finished[slot] >= stream_total[slot]:
                    parked, waiting[slot] = waiting[slot], []
                    for sync_index in parked:
                        if scheduled[sync_index]:
                            continue
                        if all(stream_finished[pending] >= stream_total[pending]
                               for pending in sync_slots[sync_index]):
                            heapq.heappush(heap, (
                                sync_ready_time(sync_index, ready[sync_index]),
                                sync_index))
                        else:
                            for pending in sync_slots[sync_index]:
                                if stream_finished[pending] < stream_total[pending]:
                                    waiting[pending].append(sync_index)
                                    break
            for position in range(indptr[index], indptr[index + 1]):
                successor = int(indices[position])
                if end > ready[successor]:
                    ready[successor] = end
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    heapq.heappush(heap, (ready[successor], successor))

        while heap:
            _, index = heapq.heappop(heap)
            if scheduled[index]:
                continue

            # Runtime dependencies (GPU → CPU synchronisation).
            slots = sync_slots[index]
            if slots:
                if not all(stream_finished[slot] >= stream_total[slot]
                           for slot in slots):
                    for slot in slots:
                        if stream_finished[slot] < stream_total[slot]:
                            waiting[slot].append(index)
                            break
                    continue
                ready[index] = sync_ready_time(index, ready[index])

            # Collective alignment (cross-rank point-to-point pairs).
            group = group_id[index]
            if group >= 0:
                group_value[index] = max(ready[index],
                                         proc_available[proc_index[index]])
                if not group_seen[index]:
                    group_seen[index] = True
                    group_count[group] += 1
                members = group_members[group]
                if group_count[group] < len(members):
                    continue
                common_start = max(group_value[member] for member in members)
                for member in members:
                    finalize(member, common_start)
                continue

            finalize(index, ready[index])

        if finalized != n:
            missing = [compiled.tasks[index].name for index in range(n)
                       if not scheduled[index]][:10]
            raise RuntimeError(
                f"simulation did not schedule {n - finalized} of {n} tasks "
                f"(first missing: {missing}); the graph may contain a cycle or an "
                f"unsatisfiable synchronisation"
            )

        return SessionRun(compiled=compiled, start_time=start_time,
                          starts=starts.copy(), durations=duration.copy(),
                          finalize_order=order[:finalized].copy())

    def batch_session(self):
        """The (lazily built) batched runner over this session's graph.

        See :mod:`repro.core.batch`: the returned
        :class:`~repro.core.batch.BatchSession` simulates a whole
        ``(B, n_tasks)`` duration matrix in one vectorized sweep when the
        graph's schedule is provably duration-independent, and falls back
        to per-scenario :meth:`run` calls on this session otherwise.
        """
        if self._batch is None:
            from repro.core.batch import BatchSession

            self._batch = BatchSession(self.compiled, fallback=self)
        return self._batch

    def run_batch(self, durations: "Sequence[Sequence[float]] | np.ndarray",
                  start_time: float = 0.0):
        """Simulate a batch of duration vectors (one scenario per row).

        Returns a :class:`~repro.core.batch.BatchRun` whose rows are
        bit-identical to ``[self.run(durations=row, start_time=start_time)
        for row in durations]`` — every start time matches exactly.
        """
        return self.batch_session().run(durations, start_time=start_time)
