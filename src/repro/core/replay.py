"""High-level replay API.

``replay(bundle)`` builds the execution graph from a profiled trace bundle,
simulates it with Algorithm 1 and returns the replayed iteration time, the
replayed trace (for breakdowns and SM utilisation) and the underlying graph
and simulation objects for further analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.breakdown import ExecutionBreakdown, compute_breakdown
from repro.core.engine import CompiledGraph, SessionRun, SimulationSession, compile_graph
from repro.core.graph import ExecutionGraph
from repro.core.graph_builder import GraphBuilder, GraphBuilderOptions
from repro.core.simulator import SimulationResult
from repro.trace.kineto import KinetoTrace, TraceBundle


@dataclass
class ReplayResult:
    """Outcome of replaying a profiled trace."""

    graph: ExecutionGraph
    simulation: SimulationResult
    replayed_trace: TraceBundle
    #: The compiled form of ``graph`` (compiling is part of replaying, so
    #: it is kept for callers that re-simulate — what-if evaluation and
    #: sweeps open a session on it instead of recompiling).
    compiled: CompiledGraph | None = None
    #: The session run that produced ``simulation`` (its arrays are
    #: copies, so it stays valid however the session is reused).  Callers
    #: that need the baseline timings — the ``Study`` facade's what-if
    #: path — read it instead of re-simulating.
    base_run: SessionRun | None = None

    @property
    def iteration_time_us(self) -> float:
        """Replayed per-iteration execution time in microseconds."""
        return self.replayed_trace.iteration_time()

    @property
    def iteration_time_ms(self) -> float:
        """Replayed per-iteration execution time in milliseconds."""
        return self.iteration_time_us / 1000.0

    def breakdown(self) -> ExecutionBreakdown:
        """Execution breakdown of the replayed iteration."""
        return compute_breakdown(self.replayed_trace)

    def session(self) -> SimulationSession:
        """A fresh simulation session over this replay's compiled graph."""
        compiled = self.compiled or compile_graph(self.graph)
        return SimulationSession(compiled)


def replay(traces: TraceBundle | KinetoTrace | None = None,
           options: GraphBuilderOptions | None = None,
           graph: ExecutionGraph | None = None) -> ReplayResult:
    """Replay a profiled trace (or a pre-built / manipulated graph).

    Parameters
    ----------
    traces:
        The profiled trace bundle.  Optional when ``graph`` is given (and
        ignored then); exactly one of ``traces`` / ``graph`` is required.
    options:
        Graph-builder options; the defaults are the full Lumos dependency
        model.
    graph:
        An already-constructed or manipulated execution graph to simulate
        instead of building one from ``traces``.
    """
    if graph is None:
        if traces is None:
            raise ValueError("replay() requires traces or a pre-built graph")
        graph = GraphBuilder(options).build(traces)
    compiled = compile_graph(graph)
    run = SimulationSession(compiled).run()
    simulation = run.to_simulation_result()
    return ReplayResult(graph=graph, simulation=simulation,
                        replayed_trace=simulation.to_trace_bundle(),
                        compiled=compiled, base_run=run)


def simulate_graph(graph: ExecutionGraph) -> ReplayResult:
    """Simulate an execution graph that was built or manipulated separately."""
    return replay(graph=graph)
