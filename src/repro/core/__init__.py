"""The Lumos core: execution graphs, replay simulation and graph manipulation.

This package implements the paper's contribution:

* :mod:`repro.core.tasks` / :mod:`repro.core.graph` — the task-level
  execution graph (CPU tasks, GPU tasks, four dependency classes,
  cross-rank collective groups);
* :mod:`repro.core.graph_builder` — constructing the graph from Kineto
  traces (§3.3);
* :mod:`repro.core.engine` — the array-backed two-phase engine: a
  :class:`~repro.core.engine.CompiledGraph` precomputes immutable
  structure once, a :class:`~repro.core.engine.SimulationSession` replays
  it over preallocated numpy buffers;
* :mod:`repro.core.batch` — the batched multi-scenario kernel: a
  :class:`~repro.core.batch.BatchSession` simulates a ``(B, n_tasks)``
  duration matrix in one vectorized sweep (bit-identical to B sequential
  runs), with a sequential fallback for graphs whose schedule is not
  provably duration-independent;
* :mod:`repro.core.simulator` — the replay simulator (Algorithm 1) with
  fixed and runtime dependencies, now a thin wrapper over the engine;
* :mod:`repro.core.replay` — the high-level replay API;
* :mod:`repro.core.breakdown` / :mod:`repro.core.sm_utilization` —
  execution-time breakdowns and SM-utilisation timelines (§4.2);
* :mod:`repro.core.perf_model` — the trace-calibrated kernel performance
  model used for kernels introduced by manipulation (§4.3);
* :mod:`repro.core.manipulation` — graph manipulation for new parallelism
  strategies and model architectures (§3.4, §4.3).
"""

from repro.core.tasks import DependencyType, Task, TaskKind
from repro.core.graph import ExecutionGraph
from repro.core.graph_builder import GraphBuilder, GraphBuilderOptions, build_execution_graph
from repro.core.engine import CompiledGraph, SessionRun, SimulationSession, compile_graph
from repro.core.batch import (
    BatchPlan,
    BatchRun,
    BatchSession,
    UnbatchableGraphError,
    compile_batch_plan,
)
from repro.core.simulator import SimulationResult, Simulator
from repro.core.replay import ReplayResult, replay
from repro.core.breakdown import ExecutionBreakdown, compute_breakdown
from repro.core.sm_utilization import sm_utilization_timeline
from repro.core.perf_model import KernelPerfModel
from repro.core.metrics import relative_error_percent, mean_absolute_percentage_error
from repro.core.critical_path import critical_path, kernel_time_summary
from repro.core.whatif import (
    Scenario,
    evaluate_scenarios,
    scenario_for,
    speed_up_communication,
    speed_up_kernel_class,
)

__all__ = [
    "Task",
    "TaskKind",
    "DependencyType",
    "ExecutionGraph",
    "GraphBuilder",
    "GraphBuilderOptions",
    "build_execution_graph",
    "CompiledGraph",
    "SimulationSession",
    "SessionRun",
    "compile_graph",
    "BatchPlan",
    "BatchRun",
    "BatchSession",
    "UnbatchableGraphError",
    "compile_batch_plan",
    "Simulator",
    "SimulationResult",
    "replay",
    "ReplayResult",
    "ExecutionBreakdown",
    "compute_breakdown",
    "sm_utilization_timeline",
    "KernelPerfModel",
    "relative_error_percent",
    "mean_absolute_percentage_error",
    "critical_path",
    "kernel_time_summary",
    "Scenario",
    "evaluate_scenarios",
    "scenario_for",
    "speed_up_communication",
    "speed_up_kernel_class",
]
