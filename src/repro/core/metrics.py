"""Error metrics used throughout the evaluation."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def relative_error_percent(predicted: float, actual: float) -> float:
    """Signed relative error of a prediction in percent."""
    if actual == 0:
        raise ValueError("actual value must be non-zero")
    return (predicted - actual) / actual * 100.0


def absolute_relative_error_percent(predicted: float, actual: float) -> float:
    """Unsigned relative error of a prediction in percent."""
    return abs(relative_error_percent(predicted, actual))


def mean_absolute_percentage_error(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean absolute percentage error over paired predictions."""
    predicted_array = np.asarray(predicted, dtype=float)
    actual_array = np.asarray(actual, dtype=float)
    if predicted_array.shape != actual_array.shape:
        raise ValueError("predicted and actual must have the same length")
    if predicted_array.size == 0:
        raise ValueError("at least one pair is required")
    if np.any(actual_array == 0):
        raise ValueError("actual values must be non-zero")
    return float(np.mean(np.abs((predicted_array - actual_array) / actual_array)) * 100.0)


def timeline_correlation(series_a: Sequence[float], series_b: Sequence[float]) -> float:
    """Pearson correlation between two equally-sampled timelines.

    Used to compare SM-utilisation curves; the shorter series is padded
    with zeros so that curves of slightly different length remain
    comparable.
    """
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    length = max(a.size, b.size)
    if length == 0:
        raise ValueError("series must be non-empty")
    a = np.pad(a, (0, length - a.size))
    b = np.pad(b, (0, length - b.size))
    if np.allclose(a.std(), 0) or np.allclose(b.std(), 0):
        return 1.0 if np.allclose(a, b) else 0.0
    return float(np.corrcoef(a, b)[0, 1])
