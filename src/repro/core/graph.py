"""The task-level execution graph."""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.tasks import DependencyType, Task, TaskKind


@dataclass(frozen=True)
class Dependency:
    """A directed edge ``src → dst`` with its dependency class."""

    src: int
    dst: int
    dep_type: DependencyType


@dataclass
class ExecutionGraph:
    """Tasks plus typed dependencies for one (or several) ranks.

    The graph is the central artifact of Lumos: it is built from profiling
    traces, replayed by the simulator, and manipulated to derive graphs for
    new configurations.
    """

    tasks: dict[int, Task] = field(default_factory=dict)
    dependencies: list[Dependency] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    _successors: dict[int, list[int]] = field(
        default_factory=lambda: defaultdict(list), repr=False)
    _predecessors: dict[int, list[int]] = field(
        default_factory=lambda: defaultdict(list), repr=False)
    _next_id: int = 0

    # -- construction -----------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Insert ``task`` (assigning a fresh id if its id collides or is negative)."""
        if task.task_id < 0 or task.task_id in self.tasks:
            task.task_id = self._next_id
        self.tasks[task.task_id] = task
        self._next_id = max(self._next_id, task.task_id + 1)
        return task

    def add_dependency(self, src: int, dst: int, dep_type: DependencyType) -> None:
        """Add a typed edge from task ``src`` to task ``dst``."""
        if src not in self.tasks or dst not in self.tasks:
            raise KeyError(f"dependency {src}->{dst} references unknown tasks")
        if src == dst:
            raise ValueError(f"self dependency on task {src}")
        self.dependencies.append(Dependency(src=src, dst=dst, dep_type=dep_type))
        self._successors[src].append(dst)
        self._predecessors[dst].append(src)

    def clone(self, *, metadata: dict[str, Any] | None = None,
              tasks: dict[int, Task] | None = None) -> "ExecutionGraph":
        """Structural copy: every task cloned (ids preserved), topology shared.

        :class:`Dependency` objects are immutable so the edge list and the
        adjacency maps are copied shallowly.  For manipulations that change
        only task attributes (e.g. a hardware retarget rescaling durations)
        this is much cheaper than re-adding every task and edge.  ``tasks``
        substitutes a pre-built task map with the same ids — a caller doing
        copy-on-write can share the unchanged task objects outright instead
        of paying a copy per task.
        """
        clone = ExecutionGraph(
            metadata=dict(self.metadata if metadata is None else metadata))
        clone.tasks = (dict(tasks) if tasks is not None else
                       {task_id: task.copy() for task_id, task in self.tasks.items()})
        clone.dependencies = list(self.dependencies)
        clone._successors = defaultdict(
            list, {src: list(dsts) for src, dsts in self._successors.items()})
        clone._predecessors = defaultdict(
            list, {dst: list(srcs) for dst, srcs in self._predecessors.items()})
        clone._next_id = self._next_id
        return clone

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def task_list(self) -> list[Task]:
        """All tasks sorted by original trace timestamp."""
        return sorted(self.tasks.values(), key=lambda t: (t.trace_ts, t.task_id))

    def successors(self, task_id: int) -> list[int]:
        return list(self._successors.get(task_id, ()))

    def predecessors(self, task_id: int) -> list[int]:
        return list(self._predecessors.get(task_id, ()))

    def ranks(self) -> list[int]:
        return sorted({task.rank for task in self.tasks.values()})

    def cpu_tasks(self, rank: int | None = None) -> list[Task]:
        return [t for t in self.task_list()
                if t.kind == TaskKind.CPU and (rank is None or t.rank == rank)]

    def gpu_tasks(self, rank: int | None = None) -> list[Task]:
        return [t for t in self.task_list()
                if t.kind == TaskKind.GPU and (rank is None or t.rank == rank)]

    def streams(self, rank: int) -> list[int]:
        return sorted({int(t.stream) for t in self.tasks.values()
                       if t.kind == TaskKind.GPU and t.rank == rank})

    def tasks_on_stream(self, rank: int, stream: int) -> list[Task]:
        """GPU tasks of one stream in trace (enqueue) order."""
        tasks = [t for t in self.tasks.values()
                 if t.kind == TaskKind.GPU and t.rank == rank and t.stream == stream]
        tasks.sort(key=lambda t: (t.trace_ts, t.task_id))
        return tasks

    def tasks_on_thread(self, rank: int, thread: int) -> list[Task]:
        """CPU tasks of one thread in trace order."""
        tasks = [t for t in self.tasks.values()
                 if t.kind == TaskKind.CPU and t.rank == rank and t.thread == thread]
        tasks.sort(key=lambda t: (t.trace_ts, t.task_id))
        return tasks

    def dependency_counts(self) -> dict[DependencyType, int]:
        """Number of edges of each dependency class."""
        counts: dict[DependencyType, int] = {dep_type: 0 for dep_type in DependencyType}
        for dependency in self.dependencies:
            counts[dependency.dep_type] += 1
        return counts

    def collective_groups(self) -> dict[str, list[int]]:
        """Cross-rank collective groups: key → member task ids."""
        groups: dict[str, list[int]] = defaultdict(list)
        for task in self.tasks.values():
            if task.collective_group is not None:
                groups[task.collective_group].append(task.task_id)
        return dict(groups)

    # -- structural checks ---------------------------------------------------------

    def is_acyclic(self) -> bool:
        """True when the dependency edges form a DAG."""
        return len(self.topological_order()) == len(self.tasks)

    def topological_order(self) -> list[int]:
        """Kahn topological order (may be partial if the graph has cycles)."""
        indegree = {task_id: 0 for task_id in self.tasks}
        for dependency in self.dependencies:
            indegree[dependency.dst] += 1
        queue = deque(sorted(task_id for task_id, degree in indegree.items() if degree == 0))
        order: list[int] = []
        while queue:
            task_id = queue.popleft()
            order.append(task_id)
            for successor in self._successors.get(task_id, ()):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    queue.append(successor)
        return order

    def validate(self) -> None:
        """Raise ``ValueError`` if the graph is structurally unsound."""
        if not self.is_acyclic():
            raise ValueError("execution graph contains a dependency cycle")
        for dependency in self.dependencies:
            if dependency.src not in self.tasks or dependency.dst not in self.tasks:
                raise ValueError("dependency references a missing task")

    # -- export ---------------------------------------------------------------------

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` (node/edge attributes included)."""
        import networkx as nx

        graph = nx.DiGraph()
        for task in self.tasks.values():
            graph.add_node(task.task_id, name=task.name, kind=task.kind.value,
                           rank=task.rank, duration=task.duration)
        for dependency in self.dependencies:
            graph.add_edge(dependency.src, dependency.dst, dep_type=dependency.dep_type.value)
        return graph

    def subgraph_for_ranks(self, ranks: Iterable[int]) -> "ExecutionGraph":
        """A copy containing only the tasks/edges of the given ranks."""
        wanted = set(ranks)
        subgraph = ExecutionGraph(metadata=dict(self.metadata))
        mapping: dict[int, int] = {}
        for task in self.task_list():
            if task.rank in wanted:
                clone = task.copy()
                clone.task_id = -1
                mapping[task.task_id] = subgraph.add_task(clone).task_id
        for dependency in self.dependencies:
            if dependency.src in mapping and dependency.dst in mapping:
                subgraph.add_dependency(mapping[dependency.src], mapping[dependency.dst],
                                        dependency.dep_type)
        return subgraph
