"""SM-utilisation timelines.

Following §4.2.3 of the paper, utilisation is "the fraction of time, over
1 ms intervals, during which at least one CUDA stream is actively executing
tasks", derived from kernel activity in profiled or simulated traces.
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import is_kernel_event
from repro.trace.kineto import KinetoTrace, TraceBundle


def sm_utilization_timeline(trace: KinetoTrace, bin_us: float = 1000.0,
                            window: tuple[float, float] | None = None) -> np.ndarray:
    """Per-bin fraction of time with at least one active kernel on one rank.

    Parameters
    ----------
    trace:
        Profiled or simulated per-rank trace.
    bin_us:
        Bin width in microseconds (1 ms in the paper).
    window:
        ``(start, end)`` window to analyse; defaults to the first profiler
        step of the trace.
    """
    if bin_us <= 0:
        raise ValueError("bin_us must be positive")
    if window is None:
        window = trace.iteration_window()
    start, end = window
    span = end - start
    if span <= 0:
        return np.zeros(0)

    num_bins = int(np.ceil(span / bin_us))
    busy = np.zeros(num_bins)

    intervals = []
    for event in trace.events:
        if not is_kernel_event(event):
            continue
        s = max(event.ts, start)
        e = min(event.end, end)
        if e > s:
            intervals.append((s, e))
    intervals.sort()

    # Merge intervals, then spread coverage over the bins each merged
    # interval touches.
    merged: list[tuple[float, float]] = []
    for s, e in intervals:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))

    for s, e in merged:
        first_bin = int((s - start) // bin_us)
        last_bin = int((e - start) // bin_us)
        for index in range(first_bin, min(last_bin, num_bins - 1) + 1):
            bin_start = start + index * bin_us
            bin_end = bin_start + bin_us
            busy[index] += max(0.0, min(e, bin_end) - max(s, bin_start))

    return np.clip(busy / bin_us, 0.0, 1.0)


def average_sm_utilization(traces: TraceBundle | KinetoTrace, bin_us: float = 1000.0) -> float:
    """Mean utilisation over the iteration, averaged across ranks."""
    if isinstance(traces, KinetoTrace):
        timeline = sm_utilization_timeline(traces, bin_us=bin_us)
        return float(timeline.mean()) if timeline.size else 0.0
    values = [average_sm_utilization(trace, bin_us=bin_us) for trace in traces]
    return float(np.mean(values)) if values else 0.0
