"""Kernel performance model for graph manipulation.

When manipulating the execution graph — changing data parallelism, pipeline
parallelism or the model architecture — some kernels change shape (GEMMs
under a new hidden size), some change cost (collectives over a new group),
and some appear that were not in the original trace (point-to-point
transfers for new stage boundaries).  The paper uses an in-house
fleet-trace performance model for these; this module provides the
equivalent: an analytical model *calibrated against the kernels observed in
the profiled trace*, used in two ways:

* ``scale_*`` — rescale an observed kernel's duration by the ratio of the
  analytical prediction for the new configuration to the prediction for the
  old one.  Systematic model error cancels in the ratio, which is why the
  paper only needs to update "a few key kernels, such as GEMM and
  communication-related ones".
* ``predict_*`` — absolute predictions (analytical model times the
  calibration factor learned from observed kernels of the same class), for
  kernels with no counterpart in the original trace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from statistics import median

from repro.core.graph import ExecutionGraph
from repro.core.tasks import TaskKind
from repro.hardware.cluster import ClusterSpec
from repro.kernels.collectives import collective_time_us, point_to_point_time_us
from repro.kernels.decode import decode_attention_time_us
from repro.kernels.gemm import gemm_time_us
from repro.kernels.memory_bound import memory_bound_time_us
from repro.observability import tracing as observability
from repro.workload.operators import CollectiveKind, OpClass

_GEMM_SHAPE_RE = re.compile(r"_m(\d+)_n(\d+)_k(\d+)")


def parse_gemm_shape(kernel_name: str) -> tuple[int, int, int] | None:
    """Extract (m, n, k) from a GEMM kernel name, if present."""
    match = _GEMM_SHAPE_RE.search(kernel_name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2)), int(match.group(3))


@dataclass
class KernelPerfModel:
    """Analytical kernel-time model calibrated from an observed trace."""

    cluster: ClusterSpec
    dtype_bytes: int = 2
    calibration: dict[str, float] = field(default_factory=dict)

    # -- calibration --------------------------------------------------------------

    @classmethod
    def calibrate(cls, graph: ExecutionGraph, cluster: ClusterSpec,
                  dtype_bytes: int = 2) -> "KernelPerfModel":
        """Fit per-class calibration factors from the kernels of ``graph``."""
        model = cls(cluster=cluster, dtype_bytes=dtype_bytes)
        ratios: dict[str, list[float]] = {}
        for task in graph.tasks.values():
            if task.kind != TaskKind.GPU or task.duration <= 0:
                continue
            if task.is_communication:
                key, analytical = model._analyse_communication(task.args)
            elif task.op_class == OpClass.DECODE_ATTENTION:
                # Decode-attention shapes are not in the kernel name; the
                # serving emulator carries the analytical inputs in the
                # event args instead (flops / bytes of KV traffic).
                flops = float(task.args.get("flops", 0.0))
                bytes_accessed = float(task.args.get("bytes_accessed", 0.0))
                if bytes_accessed <= 0:
                    continue
                key = "decode_attention"
                analytical = decode_attention_time_us(flops, bytes_accessed, cluster.gpu)
            else:
                shape = parse_gemm_shape(task.name)
                if shape is None:
                    continue
                key = "gemm"
                analytical = gemm_time_us(*shape, dtype_bytes=dtype_bytes, gpu=cluster.gpu)
            if analytical is None or analytical <= 0:
                continue
            ratios.setdefault(key, []).append(task.duration / analytical)
        model.calibration = {key: float(median(values)) for key, values in ratios.items()}
        if observability.tracing_enabled():
            # Residuals are what remains after the per-class factor: how far
            # each observed kernel sits from the fitted median, as a
            # fraction.  Only recorded under an active profile — the loop
            # re-walks every observation.
            for key, values in ratios.items():
                factor = model.calibration[key]
                observability.gauge(f"calibration.factor.{key}", factor)
                for value in values:
                    observability.observe(f"calibration.residual.{key}",
                                          value / factor - 1.0)
        return model

    def _analyse_communication(self, args: dict) -> tuple[str, float | None]:
        kind = args.get("collective")
        size_bytes = float(args.get("size_bytes", 0.0))
        group_ranks = tuple(args.get("group_ranks", ()))
        group = args.get("group", "unknown")
        if kind is None or not group_ranks:
            return "comm:unknown", None
        key = f"comm:{group}:{kind}"
        if kind in CollectiveKind.POINT_TO_POINT:
            analytical = point_to_point_time_us(size_bytes, group_ranks[0], group_ranks[-1],
                                                self.cluster)
        else:
            analytical = collective_time_us(kind, size_bytes, group_ranks, self.cluster)
        return key, analytical

    def calibration_factor(self, key: str, default: float = 1.0) -> float:
        """Calibration multiplier for a kernel class (1.0 when never observed)."""
        if key in self.calibration:
            return self.calibration[key]
        if key.startswith("comm:"):
            # Fall back to any communication observation of the same collective kind.
            kind = key.split(":")[-1]
            candidates = [value for name, value in self.calibration.items()
                          if name.startswith("comm:") and name.endswith(f":{kind}")]
            if candidates:
                return float(median(candidates))
            candidates = [value for name, value in self.calibration.items()
                          if name.startswith("comm:")]
            if candidates:
                return float(median(candidates))
        return default

    # -- absolute predictions -------------------------------------------------------

    def predict_gemm_us(self, m: int, n: int, k: int) -> float:
        """Predict the duration of an ``m×n×k`` GEMM."""
        analytical = gemm_time_us(m, n, k, dtype_bytes=self.dtype_bytes, gpu=self.cluster.gpu)
        return analytical * self.calibration_factor("gemm")

    def predict_collective_us(self, kind: str, size_bytes: float,
                              group_ranks: tuple[int, ...], group: str = "dp") -> float:
        """Predict the duration of a collective over ``group_ranks``."""
        if kind in CollectiveKind.POINT_TO_POINT:
            analytical = point_to_point_time_us(size_bytes, group_ranks[0], group_ranks[-1],
                                                self.cluster)
        else:
            analytical = collective_time_us(kind, size_bytes, group_ranks, self.cluster)
        return analytical * self.calibration_factor(f"comm:{group}:{kind}")

    def predict_memory_bound_us(self, op_class: str, bytes_accessed: float) -> float:
        """Predict the duration of a bandwidth-bound kernel."""
        return memory_bound_time_us(bytes_accessed, self.cluster.gpu, op_class=op_class)

    def predict_decode_attention_us(self, flops: float, bytes_accessed: float) -> float:
        """Predict the duration of a decode-attention KV-cache sweep."""
        analytical = decode_attention_time_us(flops, bytes_accessed, self.cluster.gpu)
        return analytical * self.calibration_factor("decode_attention")

    # -- ratio-based rescaling ---------------------------------------------------------

    def scale_gemm(self, observed_us: float, old_shape: tuple[int, int, int],
                   new_shape: tuple[int, int, int]) -> float:
        """Rescale an observed GEMM duration from ``old_shape`` to ``new_shape``."""
        old = gemm_time_us(*old_shape, dtype_bytes=self.dtype_bytes, gpu=self.cluster.gpu)
        new = gemm_time_us(*new_shape, dtype_bytes=self.dtype_bytes, gpu=self.cluster.gpu)
        return observed_us * new / old

    def scale_collective(self, observed_us: float, kind: str,
                         old_size: float, old_ranks: tuple[int, ...],
                         new_size: float, new_ranks: tuple[int, ...]) -> float:
        """Rescale an observed collective duration to a new size and group."""
        if kind in CollectiveKind.POINT_TO_POINT:
            old = point_to_point_time_us(old_size, old_ranks[0], old_ranks[-1], self.cluster)
            new = point_to_point_time_us(new_size, new_ranks[0], new_ranks[-1], self.cluster)
        else:
            old = collective_time_us(kind, old_size, old_ranks, self.cluster)
            new = collective_time_us(kind, new_size, new_ranks, self.cluster)
        return observed_us * new / old

    def scale_memory_bound(self, observed_us: float, old_bytes: float, new_bytes: float,
                           fixed_overhead_us: float | None = None) -> float:
        """Rescale an observed bandwidth-bound kernel duration to new traffic."""
        if old_bytes <= 0:
            return observed_us
        overhead = (self.cluster.gpu.kernel_fixed_overhead_us
                    if fixed_overhead_us is None else fixed_overhead_us)
        variable = max(observed_us - overhead, 0.0)
        return overhead + variable * (new_bytes / old_bytes)

    def scale_decode_attention(self, observed_us: float,
                               old_flops: float, old_bytes: float,
                               new_flops: float, new_bytes: float) -> float:
        """Rescale an observed decode-attention duration to a new KV sweep."""
        old = decode_attention_time_us(old_flops, old_bytes, self.cluster.gpu)
        new = decode_attention_time_us(new_flops, new_bytes, self.cluster.gpu)
        if old <= 0:
            return observed_us
        return observed_us * new / old

    def scale_flops_bound(self, observed_us: float, old_flops: float, new_flops: float,
                          fixed_overhead_us: float | None = None) -> float:
        """Rescale an observed compute-bound kernel (e.g. attention) by FLOP ratio."""
        if old_flops <= 0:
            return observed_us
        overhead = (self.cluster.gpu.kernel_fixed_overhead_us
                    if fixed_overhead_us is None else fixed_overhead_us)
        variable = max(observed_us - overhead, 0.0)
        return overhead + variable * (new_flops / old_flops)
