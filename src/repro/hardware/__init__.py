"""Hardware models: GPU, node-local and cross-node network, cluster layout.

These models parameterise the kernel and collective cost models
(:mod:`repro.kernels`) and the cluster emulator (:mod:`repro.emulator`).
Defaults approximate the paper's testbed: NVIDIA H100 GPUs, 8 GPUs per
server connected by NVLink, servers connected by 8×400 Gbps RoCE.

The named-spec registry (:func:`resolve_gpu`, :data:`GPU_REGISTRY`) also
backs the hardware what-if axis: prediction targets like
``gpu=H200-SXM`` resolve through it, and custom parts load from JSON
spec files.
"""

from repro.hardware.gpu import (
    A100_SXM,
    B200,
    GPU_REGISTRY,
    GPUSpec,
    H100_SXM,
    H200_SXM,
    gpu_names,
    registry_gpu,
    resolve_gpu,
)
from repro.hardware.network import NetworkSpec, DEFAULT_ROce_NETWORK
from repro.hardware.cluster import ClusterSpec, CommunicatorGroups, ProcessGroup

__all__ = [
    "GPUSpec",
    "GPU_REGISTRY",
    "H100_SXM",
    "A100_SXM",
    "H200_SXM",
    "B200",
    "gpu_names",
    "registry_gpu",
    "resolve_gpu",
    "NetworkSpec",
    "DEFAULT_ROce_NETWORK",
    "ClusterSpec",
    "CommunicatorGroups",
    "ProcessGroup",
]
