"""Hardware models: GPU, node-local and cross-node network, cluster layout.

These models parameterise the kernel and collective cost models
(:mod:`repro.kernels`) and the cluster emulator (:mod:`repro.emulator`).
Defaults approximate the paper's testbed: NVIDIA H100 GPUs, 8 GPUs per
server connected by NVLink, servers connected by 8×400 Gbps RoCE.
"""

from repro.hardware.gpu import GPUSpec, A100_SXM, H100_SXM
from repro.hardware.network import NetworkSpec, DEFAULT_ROce_NETWORK
from repro.hardware.cluster import ClusterSpec, CommunicatorGroups, ProcessGroup

__all__ = [
    "GPUSpec",
    "H100_SXM",
    "A100_SXM",
    "NetworkSpec",
    "DEFAULT_ROce_NETWORK",
    "ClusterSpec",
    "CommunicatorGroups",
    "ProcessGroup",
]
