"""GPU specifications used by the kernel cost models.

Besides the dataclass itself this module owns the named-spec registry
(:data:`GPU_REGISTRY`, looked up through :func:`resolve_gpu`) that the
hardware what-if axis uses to turn a target label like ``gpu=H200-SXM``
into a :class:`GPUSpec`.  Custom specs load from JSON files
(:meth:`GPUSpec.from_json`), so a hypothetical part can be swept without
editing the library.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"H100-SXM"``.
    sm_count:
        Number of streaming multiprocessors.
    bf16_tflops:
        Peak dense BF16/FP16 tensor-core throughput in TFLOP/s.
    fp32_tflops:
        Peak FP32 (non-tensor-core) throughput in TFLOP/s.
    memory_gb:
        HBM capacity in GiB.
    memory_bandwidth_gbps:
        HBM bandwidth in GB/s.
    nvlink_bandwidth_gbps:
        Unidirectional NVLink bandwidth per GPU in GB/s (intra-node).
    kernel_launch_overhead_us:
        Typical host-side latency of ``cudaLaunchKernel``.
    kernel_fixed_overhead_us:
        Device-side fixed overhead per kernel (launch latency, tail effects).
    """

    name: str
    sm_count: int
    bf16_tflops: float
    fp32_tflops: float
    memory_gb: float
    memory_bandwidth_gbps: float
    nvlink_bandwidth_gbps: float
    kernel_launch_overhead_us: float = 6.0
    kernel_fixed_overhead_us: float = 4.0

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("GPUSpec requires a non-empty name")
        for field_name in ("sm_count", "bf16_tflops", "fp32_tflops", "memory_gb",
                           "memory_bandwidth_gbps", "nvlink_bandwidth_gbps"):
            value = getattr(self, field_name)
            if not value > 0:
                raise ValueError(
                    f"GPUSpec.{field_name} must be positive, got {value!r}")
        for field_name in ("kernel_launch_overhead_us", "kernel_fixed_overhead_us"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(
                    f"GPUSpec.{field_name} must be non-negative, got {value!r}")

    @property
    def bf16_flops_per_us(self) -> float:
        """Peak BF16 FLOPs per microsecond.

        ``bf16_tflops`` is TFLOP/s, i.e. ``bf16_tflops * 1e12`` FLOP/s;
        dividing by ``1e6`` µs/s gives FLOPs per microsecond.  This is the
        compute-roofline denominator :func:`repro.kernels.gemm.gemm_time_us`
        (and the attention/decode models) divide by, after applying their
        per-class achievable-efficiency factors.
        """
        return self.bf16_tflops * 1e12 / 1e6

    @property
    def memory_bytes_per_us(self) -> float:
        """HBM bytes per microsecond (``memory_bandwidth_gbps * 1e9 / 1e6``)."""
        return self.memory_bandwidth_gbps * 1e9 / 1e6

    @property
    def nvlink_bytes_per_us(self) -> float:
        """NVLink bytes per microsecond (unidirectional)."""
        return self.nvlink_bandwidth_gbps * 1e9 / 1e6

    # -- JSON custom specs ---------------------------------------------------

    def to_json(self) -> dict:
        """JSON-serialisable payload round-tripping through :meth:`from_json`."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "GPUSpec":
        """Build a spec from a JSON payload, rejecting unknown/missing keys."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"a GPU spec must be a JSON object, got {type(payload).__name__}")
        known = {field_name for field_name in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown GPU spec keys {unknown}; known keys: {sorted(known)}")
        required = {"name", "sm_count", "bf16_tflops", "fp32_tflops", "memory_gb",
                    "memory_bandwidth_gbps", "nvlink_bandwidth_gbps"}
        missing = sorted(required - set(payload))
        if missing:
            raise ValueError(f"GPU spec is missing required keys {missing}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ValueError(f"malformed GPU spec: {exc}") from exc


H100_SXM = GPUSpec(
    name="H100-SXM",
    sm_count=132,
    bf16_tflops=989.0,
    fp32_tflops=67.0,
    memory_gb=80.0,
    memory_bandwidth_gbps=3350.0,
    nvlink_bandwidth_gbps=450.0,
)

A100_SXM = GPUSpec(
    name="A100-SXM",
    sm_count=108,
    bf16_tflops=312.0,
    fp32_tflops=19.5,
    memory_gb=80.0,
    memory_bandwidth_gbps=2039.0,
    nvlink_bandwidth_gbps=300.0,
)

# Same GH100 die as the H100 (so identical peak math throughput); the
# upgrade is HBM3e capacity and bandwidth.
H200_SXM = GPUSpec(
    name="H200-SXM",
    sm_count=132,
    bf16_tflops=989.0,
    fp32_tflops=67.0,
    memory_gb=141.0,
    memory_bandwidth_gbps=4800.0,
    nvlink_bandwidth_gbps=450.0,
)

B200 = GPUSpec(
    name="B200",
    sm_count=144,
    bf16_tflops=2250.0,
    fp32_tflops=80.0,
    memory_gb=192.0,
    memory_bandwidth_gbps=8000.0,
    nvlink_bandwidth_gbps=900.0,
)


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-")


#: Named specs reachable from target labels (``gpu=H200-SXM``), keyed by
#: their normalised name (case-insensitive, ``_`` and ``-`` equivalent).
GPU_REGISTRY: dict[str, GPUSpec] = {
    _normalize(spec.name): spec
    for spec in (H100_SXM, A100_SXM, H200_SXM, B200)
}


def gpu_names() -> list[str]:
    """The marketing names of every registry spec, sorted."""
    return sorted(spec.name for spec in GPU_REGISTRY.values())


def registry_gpu(name: str) -> GPUSpec | None:
    """The registry spec for ``name`` (case/sep-insensitive), or ``None``."""
    return GPU_REGISTRY.get(_normalize(name))


def resolve_gpu(target: "GPUSpec | str") -> GPUSpec:
    """Resolve a GPU reference: a spec, a registry name, or a JSON file path.

    Strings ending in ``.json`` (or containing a path separator) are read
    as custom spec files; anything else is looked up in
    :data:`GPU_REGISTRY`.  Raises :class:`ValueError` for unknown names,
    unreadable files and malformed specs.
    """
    if isinstance(target, GPUSpec):
        return target
    text = str(target).strip()
    if not text:
        raise ValueError("empty GPU name")
    if text.endswith(".json") or "/" in text or "\\" in text:
        path = Path(text)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ValueError(f"cannot read GPU spec file {text!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"GPU spec file {text!r} is not valid JSON: {exc}") from exc
        return GPUSpec.from_json(payload)
    spec = registry_gpu(text)
    if spec is None:
        raise ValueError(
            f"unknown GPU {text!r}; known specs: {', '.join(gpu_names())} "
            "(or give a path to a JSON spec file)")
    return spec
