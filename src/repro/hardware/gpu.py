"""GPU specifications used by the kernel cost models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"H100-SXM"``.
    sm_count:
        Number of streaming multiprocessors.
    bf16_tflops:
        Peak dense BF16/FP16 tensor-core throughput in TFLOP/s.
    fp32_tflops:
        Peak FP32 (non-tensor-core) throughput in TFLOP/s.
    memory_gb:
        HBM capacity in GiB.
    memory_bandwidth_gbps:
        HBM bandwidth in GB/s.
    nvlink_bandwidth_gbps:
        Unidirectional NVLink bandwidth per GPU in GB/s (intra-node).
    kernel_launch_overhead_us:
        Typical host-side latency of ``cudaLaunchKernel``.
    kernel_fixed_overhead_us:
        Device-side fixed overhead per kernel (launch latency, tail effects).
    """

    name: str
    sm_count: int
    bf16_tflops: float
    fp32_tflops: float
    memory_gb: float
    memory_bandwidth_gbps: float
    nvlink_bandwidth_gbps: float
    kernel_launch_overhead_us: float = 6.0
    kernel_fixed_overhead_us: float = 4.0

    @property
    def bf16_flops_per_us(self) -> float:
        """Peak BF16 FLOPs per microsecond."""
        return self.bf16_tflops * 1e12 / 1e6

    @property
    def memory_bytes_per_us(self) -> float:
        """HBM bytes per microsecond."""
        return self.memory_bandwidth_gbps * 1e9 / 1e6

    @property
    def nvlink_bytes_per_us(self) -> float:
        """NVLink bytes per microsecond (unidirectional)."""
        return self.nvlink_bandwidth_gbps * 1e9 / 1e6


H100_SXM = GPUSpec(
    name="H100-SXM",
    sm_count=132,
    bf16_tflops=989.0,
    fp32_tflops=67.0,
    memory_gb=80.0,
    memory_bandwidth_gbps=3350.0,
    nvlink_bandwidth_gbps=450.0,
)

A100_SXM = GPUSpec(
    name="A100-SXM",
    sm_count=108,
    bf16_tflops=312.0,
    fp32_tflops=19.5,
    memory_gb=80.0,
    memory_bandwidth_gbps=2039.0,
    nvlink_bandwidth_gbps=300.0,
)
