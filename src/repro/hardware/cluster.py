"""Cluster layout and communicator-group construction.

Ranks are laid out Megatron-style with tensor parallelism innermost, then
data parallelism, then pipeline parallelism outermost::

    tp_index = rank % TP
    dp_index = (rank // TP) % DP
    pp_index = rank // (TP * DP)

With 8 GPUs per node this keeps tensor-parallel groups inside a node (the
paper notes TP is "typically fixed in practice (e.g., within a single
node)") and places pipeline stages on different nodes, which is what makes
pipeline and data-parallel communication sensitive to the inter-node
fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.gpu import GPUSpec, H100_SXM
from repro.hardware.network import NetworkSpec, DEFAULT_ROce_NETWORK


@dataclass(frozen=True)
class ProcessGroup:
    """A communicator: an ordered list of global ranks plus a label."""

    kind: str
    ranks: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.ranks)

    def __contains__(self, rank: int) -> bool:
        return rank in self.ranks


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Attributes
    ----------
    num_gpus:
        Total number of GPUs (the world size of the training job).
    gpus_per_node:
        GPUs per server; 8 for the paper's H100 servers.
    gpu:
        Per-GPU specification.
    network:
        Fabric specification.
    """

    num_gpus: int
    gpus_per_node: int = 8
    gpu: GPUSpec = field(default=H100_SXM)
    network: NetworkSpec = field(default=DEFAULT_ROce_NETWORK)

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {self.num_gpus}")
        if self.gpus_per_node <= 0:
            raise ValueError(f"gpus_per_node must be positive, got {self.gpus_per_node}")

    @property
    def num_nodes(self) -> int:
        """Number of servers (rounded up)."""
        return -(-self.num_gpus // self.gpus_per_node)

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_rank(self, rank: int) -> int:
        """Index of ``rank`` within its node."""
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def is_intra_node(self, ranks: tuple[int, ...] | list[int]) -> bool:
        """True when all ``ranks`` live on the same node."""
        nodes = {self.node_of(r) for r in ranks}
        return len(nodes) <= 1

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_gpus:
            raise ValueError(f"rank {rank} out of range for cluster with {self.num_gpus} GPUs")

    @classmethod
    def for_world_size(cls, world_size: int, gpus_per_node: int = 8,
                       gpu: GPUSpec = H100_SXM,
                       network: NetworkSpec = DEFAULT_ROce_NETWORK) -> "ClusterSpec":
        """Convenience constructor sized exactly for ``world_size`` GPUs."""
        return cls(num_gpus=world_size, gpus_per_node=gpus_per_node, gpu=gpu, network=network)


class CommunicatorGroups:
    """Tensor/data/pipeline process groups for a 3D-parallel job."""

    def __init__(self, tensor_parallel: int, pipeline_parallel: int, data_parallel: int) -> None:
        if min(tensor_parallel, pipeline_parallel, data_parallel) < 1:
            raise ValueError("parallel degrees must be >= 1")
        self.tp = tensor_parallel
        self.pp = pipeline_parallel
        self.dp = data_parallel
        self.world_size = tensor_parallel * pipeline_parallel * data_parallel

    # -- coordinates --------------------------------------------------------

    def tp_index(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.tp

    def dp_index(self, rank: int) -> int:
        self._check_rank(rank)
        return (rank // self.tp) % self.dp

    def pp_index(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // (self.tp * self.dp)

    def rank_of(self, tp_index: int, dp_index: int, pp_index: int) -> int:
        """Global rank for the given 3D coordinates."""
        if not (0 <= tp_index < self.tp and 0 <= dp_index < self.dp and 0 <= pp_index < self.pp):
            raise ValueError(
                f"coordinates ({tp_index}, {dp_index}, {pp_index}) out of range "
                f"for TP={self.tp}, DP={self.dp}, PP={self.pp}"
            )
        return pp_index * (self.tp * self.dp) + dp_index * self.tp + tp_index

    # -- groups --------------------------------------------------------------

    def tp_group(self, rank: int) -> ProcessGroup:
        """The tensor-parallel group containing ``rank``."""
        dp_index, pp_index = self.dp_index(rank), self.pp_index(rank)
        ranks = tuple(self.rank_of(t, dp_index, pp_index) for t in range(self.tp))
        return ProcessGroup(kind="tp", ranks=ranks)

    def dp_group(self, rank: int) -> ProcessGroup:
        """The data-parallel group containing ``rank``."""
        tp_index, pp_index = self.tp_index(rank), self.pp_index(rank)
        ranks = tuple(self.rank_of(tp_index, d, pp_index) for d in range(self.dp))
        return ProcessGroup(kind="dp", ranks=ranks)

    def pp_group(self, rank: int) -> ProcessGroup:
        """The pipeline group containing ``rank`` (all stages, same TP/DP slot)."""
        tp_index, dp_index = self.tp_index(rank), self.dp_index(rank)
        ranks = tuple(self.rank_of(tp_index, dp_index, p) for p in range(self.pp))
        return ProcessGroup(kind="pp", ranks=ranks)

    def pp_neighbors(self, rank: int) -> tuple[int | None, int | None]:
        """The (previous, next) pipeline-stage peers of ``rank``."""
        group = self.pp_group(rank).ranks
        index = group.index(rank)
        previous = group[index - 1] if index > 0 else None
        nxt = group[index + 1] if index + 1 < len(group) else None
        return previous, nxt

    def all_tp_groups(self) -> list[ProcessGroup]:
        """One group per (dp, pp) slot."""
        return [
            ProcessGroup(kind="tp", ranks=tuple(self.rank_of(t, d, p) for t in range(self.tp)))
            for p in range(self.pp)
            for d in range(self.dp)
        ]

    def all_dp_groups(self) -> list[ProcessGroup]:
        """One group per (tp, pp) slot."""
        return [
            ProcessGroup(kind="dp", ranks=tuple(self.rank_of(t, d, p) for d in range(self.dp)))
            for p in range(self.pp)
            for t in range(self.tp)
        ]

    def all_pp_groups(self) -> list[ProcessGroup]:
        """One group per (tp, dp) slot."""
        return [
            ProcessGroup(kind="pp", ranks=tuple(self.rank_of(t, d, p) for p in range(self.pp)))
            for d in range(self.dp)
            for t in range(self.tp)
        ]

    def representative_ranks(self) -> list[int]:
        """One rank per pipeline stage (tp_index = dp_index = 0).

        The emulator models these ranks explicitly; TP and DP peers execute
        mirrored work whose communication cost is already captured through
        the group sizes, so modeling one rank per stage preserves the
        pipeline and overlap structure while keeping event counts tractable.
        """
        return [self.rank_of(0, 0, p) for p in range(self.pp)]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")
