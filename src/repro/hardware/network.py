"""Network specifications.

Two tiers matter for 3D-parallel training:

* intra-node: GPUs inside a server communicate over NVLink/NVSwitch;
* inter-node: servers communicate over the datacenter fabric (the paper's
  cluster uses 8×400 Gbps RoCE per host, i.e. one 400 Gbps NIC per GPU).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Bandwidth/latency description of the training fabric.

    Attributes
    ----------
    intra_node_bandwidth_gbps:
        Per-GPU unidirectional NVLink bandwidth in GB/s.
    inter_node_bandwidth_gbps:
        Per-GPU unidirectional network bandwidth in GB/s (NIC line rate
        divided by 8 bits, shared fabric effects folded into efficiency).
    intra_node_latency_us:
        Per-hop latency for NVLink transfers.
    inter_node_latency_us:
        Per-hop latency for RoCE transfers (including NIC and switch).
    intra_node_efficiency / inter_node_efficiency:
        Achievable fraction of peak bandwidth for large messages
        (protocol overhead, congestion).
    """

    intra_node_bandwidth_gbps: float = 450.0
    inter_node_bandwidth_gbps: float = 50.0
    intra_node_latency_us: float = 2.0
    inter_node_latency_us: float = 12.0
    intra_node_efficiency: float = 0.80
    inter_node_efficiency: float = 0.72

    def bandwidth_bytes_per_us(self, intra_node: bool) -> float:
        """Effective bandwidth in bytes/us for the given tier."""
        if intra_node:
            gbps = self.intra_node_bandwidth_gbps * self.intra_node_efficiency
        else:
            gbps = self.inter_node_bandwidth_gbps * self.inter_node_efficiency
        return gbps * 1e9 / 1e6

    def latency_us(self, intra_node: bool) -> float:
        """Per-hop latency in microseconds for the given tier."""
        return self.intra_node_latency_us if intra_node else self.inter_node_latency_us


#: Default fabric modelled after the paper's testbed: NVLink inside a host,
#: 8×400 Gbps RoCE between hosts (400 Gbps = 50 GB/s per GPU).
DEFAULT_ROce_NETWORK = NetworkSpec()
