"""Figure 8 / Table 2: predicting model-architecture variants from the base trace.

From the GPT-3 15B trace, Lumos predicts the iteration time and breakdown of
the V1–V4 variants (more layers, larger hidden/FFN sizes) and the
predictions are validated against directly emulated runs of the variants.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.experiments.figures import FIG8_VARIANTS, run_architecture_prediction
from repro.workload.model_config import GPT3_VARIANTS


def _run(settings):
    return [run_architecture_prediction(name, settings=settings) for name in FIG8_VARIANTS]


def test_fig8_architecture_variants(benchmark, settings):
    comparisons = run_once(benchmark, _run, settings)

    print("\nTable 2 — architecture variants derived from GPT-3 15B")
    table2 = [[m.name, f"{m.num_parameters / 1e9:.0f}B", m.n_layers, m.d_model, m.d_ff]
              for m in GPT3_VARIANTS.values()]
    print(format_table(["model", "n_params", "n_layers", "d_model", "d_ffn"], table2))

    print("\nFigure 8 — iteration-time breakdown of model variants "
          "(upper = actual, lower = predicted)")
    rows = []
    for comparison in comparisons:
        rows.append(format_breakdown_row(f"{comparison.label} actual", comparison.actual))
        rows.append(format_breakdown_row(f"{comparison.label} predicted", comparison.predicted))
    print(format_table(breakdown_headers(), rows))

    errors = [abs(c.total_error_percent) for c in comparisons]
    print(f"average |error|: {np.mean(errors):.1f}%")

    assert np.mean(errors) < 10.0
    assert max(errors) < 15.0
    # Bigger variants take longer, and the predictions preserve the ranking
    # of the variants by iteration time.
    actual_totals = [c.actual.total for c in comparisons]
    predicted_totals = [c.predicted.total for c in comparisons]
    assert np.argsort(actual_totals).tolist() == np.argsort(predicted_totals).tolist()
    # V2 (96 layers) is roughly 2x the 48-layer base's depth class (V1 is 64
    # layers); it must be the slowest of V1/V2 in both actual and predicted.
    by_label_actual = {c.label.split(":")[0]: c.actual.total for c in comparisons}
    by_label_predicted = {c.label.split(":")[0]: c.predicted.total for c in comparisons}
    assert by_label_actual["gpt3-v2"] > by_label_actual["gpt3-v1"]
    assert by_label_predicted["gpt3-v2"] > by_label_predicted["gpt3-v1"]
