"""Figure 1: execution breakdown of GPT-3 175B (8x4x8), dPRO vs actual.

The motivation figure of the paper: dPRO's replay of a GPT-3 175B iteration
over-estimates how much compute and communication overlap and therefore
under-estimates the iteration time, because it misses inter-stream
dependencies.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.experiments.figures import run_motivation_comparison


def test_fig1_dpro_overestimates_overlap(benchmark, settings):
    result = run_once(benchmark, run_motivation_comparison, settings)

    comparison = result.actual
    print("\nFigure 1 — GPT-3 175B (TP=8, PP=4, DP=8) execution breakdown (ms)")
    print(format_table(breakdown_headers(), [
        format_breakdown_row("actual", comparison.actual),
        format_breakdown_row("dPRO", comparison.predicted),
    ]))
    print(f"dPRO overlap / actual overlap: {result.dpro_overlap_ratio:.2f}x")

    # The paper's qualitative findings: dPRO reports substantially more
    # overlapped execution than really happens and a shorter iteration.
    assert result.dpro_overlap_ratio > 1.2
    assert result.dpro_underestimates_total
    assert comparison.predicted.exposed_communication < comparison.actual.exposed_communication
    # The gap is significant (the paper shows ~25% shorter iteration).
    assert comparison.total_error_percent < -5.0
