"""Sweep-engine throughput benchmarks.

Measures what future PRs must not regress: cold sweep throughput
(scenarios/sec with the base trace replayed and calibrated once), the
cache-hit speedup of a repeated sweep, and the serial/parallel equivalence
of the runner.  The grid is the acceptance-criteria shape: 24 scenarios
from one base trace.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.emulator.api import emulate
from repro.sweep import SweepCache, SweepSpec, WhatIfSpec, run_sweep
from repro.sweep.analysis import format_report
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

BASE_PARALLELISM = "2x2x2"

#: (1 baseline + 5 parallelism targets + 2 model variants) x (none + 2 what-ifs)
SWEEP_SPEC = SweepSpec(
    base_model="gpt3-15b",
    base_parallelism=BASE_PARALLELISM,
    micro_batch_size=1,
    num_microbatches=2,
    parallelism=("2x2x4", "2x2x8", "2x1x2", "2x4x2", "2x4x4"),
    models=("gpt3-v1", "gpt3-v3"),
    whatif=(WhatIfSpec(kind="kernel_class", op_class="gemm", speedup=2.0),
            WhatIfSpec(kind="launch_overhead")),
)


@pytest.fixture(scope="module")
def base_bundle():
    model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse(BASE_PARALLELISM)
    training = TrainingConfig(micro_batch_size=1, num_microbatches=2)
    return emulate(model, parallel, training, iterations=1, seed=11).profiled


def test_benchmark_sweep_cold_throughput(benchmark, base_bundle):
    result = run_once(benchmark, run_sweep, base_bundle, SWEEP_SPEC, workers=1)

    assert len(result) == 24
    print(f"\ncold sweep: {len(result)} scenarios in {result.elapsed_seconds:.2f} s "
          f"({result.scenarios_per_second:.1f} scenarios/s)")
    print(format_report(result, top=5))
    # Sharing replay + calibration across the grid must keep throughput well
    # above one-predict-per-invocation territory.
    assert result.scenarios_per_second > 1.0


def test_benchmark_sweep_cache_hit_speedup(benchmark, base_bundle, tmp_path):
    cache_dir = tmp_path / "cache"
    started = time.perf_counter()
    cold = run_sweep(base_bundle, SWEEP_SPEC, cache=SweepCache(cache_dir))
    cold_seconds = time.perf_counter() - started

    warm = run_once(benchmark, run_sweep, base_bundle, SWEEP_SPEC,
                    cache=SweepCache(cache_dir))
    warm_seconds = warm.elapsed_seconds

    assert all(r.from_cache for r in warm.results)
    speedup = cold_seconds / warm_seconds
    print(f"\ncold {cold_seconds:.2f} s vs warm {warm_seconds:.2f} s "
          f"-> cache-hit speedup {speedup:.1f}x")
    # A fully cached sweep skips replay, calibration and every simulation; it
    # must be measurably faster than the cold run.
    assert warm_seconds < cold_seconds
    assert speedup > 2.0
    # The cache changes where results come from, never what they are.
    assert [(r.label, r.iteration_time_us) for r in warm.ranked()] == \
        [(r.label, r.iteration_time_us) for r in cold.ranked()]


def test_benchmark_sweep_parallel_matches_serial(benchmark, base_bundle):
    serial = run_sweep(base_bundle, SWEEP_SPEC, workers=1)
    parallel = run_once(benchmark, run_sweep, base_bundle, SWEEP_SPEC, workers=4)

    print(f"\nserial {serial.elapsed_seconds:.2f} s vs "
          f"parallel (4 workers) {parallel.elapsed_seconds:.2f} s")
    assert [(r.label, r.iteration_time_us, r.world_size) for r in parallel.ranked()] == \
        [(r.label, r.iteration_time_us, r.world_size) for r in serial.ranked()]
