"""Serving-workload benchmarks: the inference path at paper scale.

One GPT-3 15B serving episode (prefill + autoregressive decode under TP)
is emulated, replayed and swept end-to-end, mirroring what
``examples/serving_exploration.py`` and the ``repro-lumos`` CLI drive.
The metrics prove two things at scale:

* the full trace → replay → calibrate → serving-manipulation pipeline has
  usable latency (an exploration sweep over batch/prompt/TP targets); and
* serving sweep groups take the batched fast path — the 64-scenario
  what-if group must go through ``run_batch`` (not the sequential
  fallback) and beat the per-scenario session loop.

Metrics append to the same machine-readable JSON as the engine benchmarks
(``REPRO_PERF_JSON``) and are gated in CI against
``benchmarks/baselines/inference.json`` — see ``benchmarks/README.md``
for the baseline-refresh procedure.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.test_perf_engine import _under_xdist, record_metric
from repro.api import Study
from repro.core.engine import SimulationSession, compile_graph
from repro.core.whatif import Scenario
from repro.experiments.settings import _fast_mode
from repro.workload.inference import InferenceConfig

BATCH = 64
SERVING_TARGETS = ("batch=16", "batch=32", "prompt=1024", "tp=1", "tp=4")


@pytest.fixture(scope="module")
def serving_study():
    decode = 4 if _fast_mode() else 8
    inference = InferenceConfig(batch_size=8, prompt_length=512,
                                decode_length=decode)
    return Study.from_emulation("gpt3-15b", "2x1x1", inference=inference,
                                iterations=1, seed=17)


def test_benchmark_serving_exploration(benchmark, serving_study):
    """Replay + calibrate + predict every serving target from one episode."""

    def explore():
        serving_study.release()
        return [serving_study.predict(serving=target).iteration_time_us
                for target in SERVING_TARGETS]

    started = time.perf_counter()
    times = benchmark.pedantic(explore, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started

    assert len(times) == len(SERVING_TARGETS)
    assert all(time_us > 0 for time_us in times)
    print(f"\nserving exploration: {len(SERVING_TARGETS)} targets in "
          f"{elapsed:.2f} s (base {serving_study.base_time_ms:.1f} ms)")
    record_metric("serving_targets_per_sec", len(SERVING_TARGETS) / elapsed,
                  higher_is_better=True, unit="targets/s")


def test_benchmark_serving_batch_vs_session_loop(benchmark, serving_study):
    """A serving sweep group's 64 what-ifs must take the batched fast path."""
    graph = serving_study.base_graph
    compiled = compile_graph(graph)
    session = SimulationSession(compiled)
    session.run()
    ladders = [
        ("decode_attention", lambda task: task.op_class == "decode_attention"),
        ("gemm", lambda task: task.op_class == "gemm"),
        ("comm", lambda task: task.is_communication),
        ("launch", lambda task: task.name == "cudaLaunchKernel"),
    ]
    scenarios = [Scenario(name=f"{name} x{1.1 + 0.15 * step:g}",
                          predicate=predicate, speedup=1.1 + 0.15 * step)
                 for name, predicate in ladders
                 for step in range(BATCH // len(ladders))]
    matrix = np.empty((BATCH, compiled.n_tasks), dtype=np.float64)
    for row, scenario in enumerate(scenarios):
        matrix[row] = compiled.scaled_durations(scenario.predicate,
                                                scenario.speedup)[0]

    started = time.perf_counter()
    loop_times = [session.run(durations=matrix[row]).iteration_time_us
                  for row in range(BATCH)]
    loop_seconds = time.perf_counter() - started

    session.batch_session()  # build the plan outside the timed window
    started = time.perf_counter()
    run = benchmark.pedantic(session.run_batch, args=(matrix,),
                             rounds=1, iterations=1)
    batch_seconds = time.perf_counter() - started

    assert run.batched, "serving graphs must take the vectorized fast path"
    assert run.iteration_times_us.tolist() == loop_times
    speedup = loop_seconds / batch_seconds
    print(f"\nserving batch ({compiled.n_tasks} tasks): loop {loop_seconds:.2f} s "
          f"vs batch {batch_seconds:.3f} s -> {speedup:.1f}x")
    record_metric("serving_batch_vs_loop_speedup_64", speedup,
                  higher_is_better=True, unit="x")
    assert speedup >= (1.5 if _under_xdist() else 3.0)
