"""Figure 7a: predicting scale-out of data parallelism from the base trace.

From the GPT-3 15B trace collected at TP=2, PP=2, DP=4 (16 GPUs), Lumos
predicts the iteration time and breakdown at DP=8/16/32 (32–128 GPUs) by
re-timing the data-parallel collectives, and the predictions are validated
against directly emulated runs of those configurations.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.experiments.figures import FIG7A_CONFIGS, run_parallelism_prediction


def _run(settings):
    return [run_parallelism_prediction(label, settings=settings) for label in FIG7A_CONFIGS]


def test_fig7a_scale_data_parallelism(benchmark, settings):
    comparisons = run_once(benchmark, _run, settings)

    print("\nFigure 7a — scaling data parallelism from 2x2x4 (upper = predicted, lower = actual)")
    rows = []
    for comparison in comparisons:
        rows.append(format_breakdown_row(f"{comparison.label} predicted", comparison.predicted))
        rows.append(format_breakdown_row(f"{comparison.label} actual", comparison.actual))
    print(format_table(breakdown_headers(), rows))

    errors = [abs(c.total_error_percent) for c in comparisons]
    print(f"average |error|: {np.mean(errors):.1f}%")

    # Predictions track the directly measured configurations closely.
    assert np.mean(errors) < 10.0
    assert max(errors) < 15.0
    # Scaling DP beyond a node makes communication more expensive per byte:
    # exposed communication grows monotonically in the measured runs, and the
    # predictions reproduce that trend.
    actual_comm = [c.actual.exposed_communication for c in comparisons]
    predicted_comm = [c.predicted.exposed_communication for c in comparisons]
    assert actual_comm == sorted(actual_comm)
    assert predicted_comm == sorted(predicted_comm)
    # Local compute is unchanged by DP scaling (within noise).
    compute = [c.actual.exposed_compute for c in comparisons]
    assert (max(compute) - min(compute)) / max(compute) < 0.15
