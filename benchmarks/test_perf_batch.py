"""Batched-simulation benchmarks: the numbers the batch perf gate consumes.

The batched kernel's pitch is one vectorized sweep instead of B Python
event-loop passes, so the headline metric is the speedup of
``SimulationSession.run_batch`` over the per-scenario session loop for a
group of 64 duration-swap scenarios (acceptance floor: 3x).  A throughput
metric (scenarios/second through the batched path) and the plan-build
latency ride along.

Metrics append to the same machine-readable JSON as the engine benchmarks
(``REPRO_PERF_JSON``); CI gates them against
``benchmarks/baselines/batch.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.test_perf_engine import _under_xdist, record_metric
from repro.core.batch import BatchSession
from repro.core.engine import SimulationSession, compile_graph
from repro.core.graph_builder import GraphBuilder
from repro.core.whatif import Scenario, evaluate_scenarios
from repro.emulator.api import emulate
from repro.experiments.settings import _fast_mode
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

BASE_PARALLELISM = "2x2x2"
BATCH = 64

#: The scenario grid of one big sweep group: a speedup ladder per kernel
#: class plus communication/launch variants — 64 duration-swap scenarios
#: sharing one compiled graph, the shape ``repro.sweep`` evaluates per
#: target configuration.
def _scenario_grid() -> list[Scenario]:
    scenarios: list[Scenario] = []
    ladders = [
        ("gemm", lambda task: task.op_class == "gemm"),
        ("attention", lambda task: task.op_class == "attention"),
        ("comm", lambda task: task.is_communication),
        ("launch", lambda task: task.name == "cudaLaunchKernel"),
    ]
    speedups = [1.1 + 0.15 * step for step in range(BATCH // len(ladders))]
    for name, predicate in ladders:
        for speedup in speedups:
            scenarios.append(Scenario(name=f"{name} x{speedup:g}",
                                      predicate=predicate, speedup=speedup))
    assert len(scenarios) == BATCH
    return scenarios


@pytest.fixture(scope="module")
def built_graph():
    model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse(BASE_PARALLELISM)
    microbatches = 1 if _fast_mode() else 2
    training = TrainingConfig(micro_batch_size=1, num_microbatches=microbatches)
    bundle = emulate(model, parallel, training, iterations=1, seed=11).profiled
    return GraphBuilder().build(bundle)


def test_benchmark_batch_vs_session_loop(benchmark, built_graph):
    """64-scenario batch must beat the per-scenario session loop by >= 3x."""
    compiled = compile_graph(built_graph)
    session = SimulationSession(compiled)
    session.run()
    scenarios = _scenario_grid()
    matrix = np.empty((BATCH, compiled.n_tasks), dtype=np.float64)
    for row, scenario in enumerate(scenarios):
        matrix[row] = compiled.scaled_durations(scenario.predicate,
                                                scenario.speedup)[0]

    def run_loop():
        return [session.run(durations=matrix[row]).iteration_time_us
                for row in range(BATCH)]

    def run_batched():
        return session.run_batch(matrix).iteration_times_us.tolist()

    started = time.perf_counter()
    loop_times = run_loop()
    loop_seconds = time.perf_counter() - started

    session.batch_session()  # build the plan outside the timed window
    started = time.perf_counter()
    batch_times = benchmark.pedantic(run_batched, rounds=1, iterations=1)
    batch_seconds = time.perf_counter() - started

    assert session.batch_session().batchable, \
        session.batch_session().fallback_reason
    assert batch_times == loop_times, \
        "batched path must produce the session loop's exact scenario times"
    speedup = loop_seconds / batch_seconds
    print(f"\n{BATCH} scenarios ({compiled.n_tasks} tasks): "
          f"loop {loop_seconds:.2f} s vs batch {batch_seconds:.3f} s "
          f"-> {speedup:.1f}x")
    record_metric("batch_vs_loop_speedup_64", speedup,
                  higher_is_better=True, unit="x")
    record_metric("batch_scenarios_per_sec", BATCH / batch_seconds,
                  higher_is_better=True, unit="scenarios/s")
    # The acceptance floor holds on an uncontended machine; under xdist the
    # other workers distort short timing windows (the serial perf-smoke job
    # enforces the real floor).
    assert speedup >= (1.5 if _under_xdist() else 3.0)


def test_benchmark_batch_plan_build(benchmark, built_graph):
    compiled = compile_graph(built_graph)

    started = time.perf_counter()
    batch = benchmark.pedantic(BatchSession, args=(compiled,),
                               rounds=1, iterations=1)
    build_ms = (time.perf_counter() - started) * 1000.0

    assert batch.batchable, batch.fallback_reason
    print(f"\nbatch plan ({compiled.n_tasks} tasks): {build_ms:.1f} ms, "
          f"{batch.plan.n_levels} levels")
    record_metric("batch_plan_build_ms", build_ms,
                  higher_is_better=False, unit="ms")


def test_benchmark_whatif_group_end_to_end(benchmark, built_graph):
    """The sweep-group shape: evaluate_scenarios on one shared session."""
    session = SimulationSession(compile_graph(built_graph))
    baseline = session.run()
    scenarios = _scenario_grid()

    started = time.perf_counter()
    results = benchmark.pedantic(
        evaluate_scenarios, args=(built_graph, scenarios),
        kwargs={"baseline": baseline, "session": session},
        rounds=1, iterations=1)
    elapsed = time.perf_counter() - started

    assert len(results) == BATCH
    assert all(result.baseline_time_us == baseline.iteration_time_us
               for result in results)
    print(f"\nwhat-if group: {BATCH} scenarios in {elapsed:.3f} s "
          f"({BATCH / elapsed:.0f} scenarios/s)")
    record_metric("whatif_group_scenarios_per_sec", BATCH / elapsed,
                  higher_is_better=True, unit="scenarios/s")
