"""CI perf-regression gate for the engine benchmarks.

Compares the JSON emitted by ``benchmarks/test_perf_engine.py`` (and any
other benchmark writing the same schema) against the committed baseline
and fails when any metric regressed by more than the allowed factor:

.. code-block:: sh

    python benchmarks/perf_gate.py \
        --current benchmarks/engine-perf.json \
        --baseline benchmarks/baselines/engine.json \
        --max-regression 2.0

A metric's regression factor is ``current / baseline`` for
lower-is-better metrics (latencies) and ``baseline / current`` for
higher-is-better ones (speedups, throughput), so 1.0 means "exactly the
baseline" and 2.0 means "twice as bad".  Metrics present in the baseline
but missing from the current run fail the gate; extra current metrics are
reported but never fail it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_metrics(path: Path) -> dict[str, dict]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    metrics = payload.get("metrics", {})
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path} contains no metrics")
    return metrics


def regression_factor(baseline: dict, current: dict) -> float:
    """How many times worse the current value is (1.0 = at baseline)."""
    baseline_value = float(baseline["value"])
    current_value = float(current["value"])
    if baseline_value <= 0 or current_value <= 0:
        raise ValueError("metric values must be positive")
    if baseline.get("higher_is_better", False):
        return baseline_value / current_value
    return current_value / baseline_value


def check(baseline_metrics: dict[str, dict], current_metrics: dict[str, dict],
          max_regression: float) -> list[str]:
    """Return a list of failure messages (empty when the gate passes)."""
    failures: list[str] = []
    for name, baseline in sorted(baseline_metrics.items()):
        current = current_metrics.get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        factor = regression_factor(baseline, current)
        unit = baseline.get("unit", "")
        direction = "higher" if baseline.get("higher_is_better", False) else "lower"
        line = (f"{name}: baseline {baseline['value']:.3f} {unit} -> "
                f"current {current['value']:.3f} {unit} "
                f"({factor:.2f}x worse, {direction} is better)")
        if factor > max_regression:
            failures.append(line)
        else:
            print(f"ok   {line}")
    for name in sorted(set(current_metrics) - set(baseline_metrics)):
        print(f"new  {name}: {current_metrics[name]['value']:.3f} "
              f"{current_metrics[name].get('unit', '')} (not gated)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, required=True,
                        help="JSON emitted by the benchmark run under test")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline JSON")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="maximum allowed regression factor (default 2.0)")
    args = parser.parse_args(argv)

    failures = check(load_metrics(args.baseline), load_metrics(args.current),
                     args.max_regression)
    if failures:
        print(f"\nperf gate FAILED (> {args.max_regression:g}x regression):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
