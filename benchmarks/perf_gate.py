"""CI perf-regression gate for the engine benchmarks.

Compares the JSON emitted by ``benchmarks/test_perf_engine.py`` (and any
other benchmark writing the same schema) against the committed baseline
and fails when any metric regressed by more than the allowed factor:

.. code-block:: sh

    python benchmarks/perf_gate.py \
        --current benchmarks/engine-perf.json \
        --baseline benchmarks/baselines/engine.json \
        --max-regression 2.0

A metric's regression factor is ``current / baseline`` for
lower-is-better metrics (latencies) and ``baseline / current`` for
higher-is-better ones (speedups, throughput), so 1.0 means "exactly the
baseline" and 2.0 means "twice as bad".  Metrics present in the baseline
but missing from the current run fail the gate; extra current metrics are
reported but never fail it.

On GitHub runners the gate also appends a baseline-vs-current markdown
table to the job's step summary (``$GITHUB_STEP_SUMMARY``; override or
disable with ``--summary``).

``--update-baseline`` refreshes the committed baseline from the current
run instead of gating: existing metrics are replaced, new ones added, and
the baseline's ``comment`` field is preserved.  See ``benchmarks/README.md``
for the refresh procedure (run on an uncontended machine, then commit the
diff).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_metrics(path: Path) -> dict[str, dict]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    metrics = payload.get("metrics", {})
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path} contains no metrics")
    return metrics


def regression_factor(baseline: dict, current: dict) -> float:
    """How many times worse the current value is (1.0 = at baseline)."""
    baseline_value = float(baseline["value"])
    current_value = float(current["value"])
    if baseline_value <= 0 or current_value <= 0:
        raise ValueError("metric values must be positive")
    if baseline.get("higher_is_better", False):
        return baseline_value / current_value
    return current_value / baseline_value


def check(baseline_metrics: dict[str, dict], current_metrics: dict[str, dict],
          max_regression: float) -> list[str]:
    """Return a list of failure messages (empty when the gate passes)."""
    failures: list[str] = []
    for name, baseline in sorted(baseline_metrics.items()):
        current = current_metrics.get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        factor = regression_factor(baseline, current)
        unit = baseline.get("unit", "")
        direction = "higher" if baseline.get("higher_is_better", False) else "lower"
        line = (f"{name}: baseline {baseline['value']:.3f} {unit} -> "
                f"current {current['value']:.3f} {unit} "
                f"({factor:.2f}x worse, {direction} is better)")
        if factor > max_regression:
            failures.append(line)
        else:
            print(f"ok   {line}")
    for name in sorted(set(current_metrics) - set(baseline_metrics)):
        print(f"new  {name}: {current_metrics[name]['value']:.3f} "
              f"{current_metrics[name].get('unit', '')} (not gated)")
    return failures


def summary_table(baseline_metrics: dict[str, dict], current_metrics: dict[str, dict],
                  max_regression: float) -> str:
    """Render the baseline-vs-current comparison as a markdown table."""
    lines = [
        "### Perf gate",
        "",
        f"Budget: {max_regression:g}x regression per metric.",
        "",
        "| metric | baseline | current | factor | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    for name, baseline in sorted(baseline_metrics.items()):
        unit = baseline.get("unit", "")
        current = current_metrics.get(name)
        if current is None:
            lines.append(f"| {name} | {baseline['value']:.3f} {unit} | — | — "
                         "| ❌ missing |")
            continue
        factor = regression_factor(baseline, current)
        status = "✅ ok" if factor <= max_regression else "❌ regressed"
        lines.append(f"| {name} | {baseline['value']:.3f} {unit} "
                     f"| {current['value']:.3f} {unit} | {factor:.2f}x | {status} |")
    for name in sorted(set(current_metrics) - set(baseline_metrics)):
        current = current_metrics[name]
        unit = current.get("unit", "")
        lines.append(f"| {name} | — | {current['value']:.3f} {unit} | — "
                     "| 🆕 not gated |")
    return "\n".join(lines) + "\n"


def update_baseline(current_path: Path, baseline_path: Path) -> None:
    """Replace the baseline's metrics with the current run's, keeping the comment."""
    current_metrics = load_metrics(current_path)
    comment = None
    if baseline_path.exists():
        comment = json.loads(baseline_path.read_text(encoding="utf-8")).get("comment")
    payload: dict = {"schema": 1}
    if comment is not None:
        payload["comment"] = comment
    payload["metrics"] = current_metrics
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, required=True,
                        help="JSON emitted by the benchmark run under test")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline JSON")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="maximum allowed regression factor (default 2.0)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current run "
                             "instead of gating (preserves the comment field)")
    parser.add_argument("--summary", type=Path,
                        default=os.environ.get("GITHUB_STEP_SUMMARY") or None,
                        help="append a markdown comparison table to this file "
                             "(defaults to $GITHUB_STEP_SUMMARY when set)")
    args = parser.parse_args(argv)

    if args.update_baseline:
        update_baseline(args.current, args.baseline)
        print(f"baseline {args.baseline} refreshed from {args.current}; "
              "review and commit the diff")
        return 0

    baseline_metrics = load_metrics(args.baseline)
    current_metrics = load_metrics(args.current)
    failures = check(baseline_metrics, current_metrics, args.max_regression)
    if args.summary is not None:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(summary_table(baseline_metrics, current_metrics,
                                       args.max_regression))
    if failures:
        print(f"\nperf gate FAILED (> {args.max_regression:g}x regression):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
