"""Figure 6: SM utilisation over one iteration of GPT-3 15B (2x2x4).

Lumos's replayed SM-utilisation timeline tracks the measured one closely;
dPRO's timeline deviates more (it compresses the iteration and shifts
activity), which the paper shows as visible fluctuations and discrepancies.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.metrics import timeline_correlation
from repro.experiments.figures import run_sm_utilization


def test_fig6_sm_utilization_timeline(benchmark, settings):
    result = run_once(benchmark, run_sm_utilization, settings)

    lumos_corr = timeline_correlation(result.actual, result.lumos)
    dpro_corr = timeline_correlation(result.actual, result.dpro)
    lumos_mean_gap = abs(float(result.lumos.mean()) - float(result.actual.mean()))
    dpro_length_gap = abs(result.dpro.size - result.actual.size)
    lumos_length_gap = abs(result.lumos.size - result.actual.size)

    print("\nFigure 6 — SM utilisation (1 ms bins), rank 0, GPT-3 15B 2x2x4")
    print(f"actual : {result.actual.size} bins, mean {result.actual.mean():.2f}")
    print(f"lumos  : {result.lumos.size} bins, mean {result.lumos.mean():.2f}, "
          f"correlation with actual {lumos_corr:.3f}")
    print(f"dpro   : {result.dpro.size} bins, mean {result.dpro.mean():.2f}, "
          f"correlation with actual {dpro_corr:.3f}")
    series = np.stack([
        np.pad(result.actual, (0, max(0, result.lumos.size - result.actual.size))),
    ])
    print(f"first 20 actual bins: {np.round(result.actual[:20], 2).tolist()}")
    assert series.size > 0

    # Lumos reproduces both the length of the iteration and the utilisation level.
    assert lumos_length_gap <= max(3, int(0.05 * result.actual.size))
    assert lumos_mean_gap < 0.1
    assert lumos_corr > 0.5
    # dPRO compresses the timeline noticeably more than Lumos does.
    assert dpro_length_gap > lumos_length_gap
