"""Ablation: which dependency classes matter for replay accuracy.

The paper attributes dPRO's failure to missing inter-stream dependencies;
this ablation quantifies the contribution of each dependency class by
replaying the same trace with individual classes disabled, and also
contrasts trace-driven replay with a purely analytical estimate
(AmPeD/Calculon style) that consumes no trace at all.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.baselines.analytical import analytical_iteration_time
from repro.core.graph_builder import GraphBuilderOptions
from repro.core.metrics import absolute_relative_error_percent
from repro.core.replay import replay
from repro.emulator.api import emulate
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig

_VARIANTS = {
    "full (Lumos)": GraphBuilderOptions(),
    "no inter-stream": GraphBuilderOptions(include_inter_stream=False),
    "no collective alignment": GraphBuilderOptions(include_collective_groups=False),
    "no inter-thread": GraphBuilderOptions(include_inter_thread=False),
    "no inter-stream + no alignment (dPRO-like)": GraphBuilderOptions(
        include_inter_stream=False, include_collective_groups=False),
}


def _run(settings):
    model = gpt3_model("gpt3-44b")
    parallel = ParallelismConfig.parse("4x4x2")
    emulation = emulate(model, parallel, settings.training(), iterations=2, seed=settings.seed)
    actual = emulation.measured.iteration_time()

    results = {}
    for label, options in _VARIANTS.items():
        result = replay(emulation.profiled, options=options)
        results[label] = (result.iteration_time_us,
                          absolute_relative_error_percent(result.iteration_time_us, actual))
    analytical = analytical_iteration_time(model, parallel, settings.training())
    results["analytical (no trace)"] = (
        analytical.total_us, absolute_relative_error_percent(analytical.total_us, actual))
    return actual, results


def test_ablation_dependency_classes(benchmark, settings):
    actual, results = run_once(benchmark, _run, settings)

    rows = [[label, f"{time_us / 1000:.1f}", f"{error:.1f}%"]
            for label, (time_us, error) in results.items()]
    print(f"\nAblation — GPT-3 44B at 4x4x2, actual iteration {actual / 1000:.1f} ms")
    print(format_table(["graph variant", "replayed_ms", "|error|"], rows))

    full_error = results["full (Lumos)"][1]
    # The full dependency model is the most accurate variant.
    assert full_error <= min(error for label, (_, error) in results.items()
                             if label != "full (Lumos)") + 1e-9
    # Removing inter-stream dependencies (the paper's key differentiator)
    # degrades accuracy substantially.
    assert results["no inter-stream"][1] > full_error
    # The trace-free analytical estimate is the least informed of all.
    assert results["analytical (no trace)"][1] >= full_error
