"""Figure 7b: predicting scale-out of pipeline parallelism from the base trace.

From the GPT-3 15B trace at TP=2, PP=2, DP=4, Lumos re-partitions the layers
into 4/8/16 stages, regenerates the 1F1B schedule, inserts the new
point-to-point transfers and predicts each configuration, validated against
directly emulated runs.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.experiments.figures import FIG7B_CONFIGS, run_parallelism_prediction


def _run(settings):
    return [run_parallelism_prediction(label, settings=settings) for label in FIG7B_CONFIGS]


def test_fig7b_scale_pipeline_parallelism(benchmark, settings):
    comparisons = run_once(benchmark, _run, settings)

    print("\nFigure 7b — scaling pipeline parallelism from 2x2x4 "
          "(upper = predicted, lower = actual)")
    rows = []
    for comparison in comparisons:
        rows.append(format_breakdown_row(f"{comparison.label} predicted", comparison.predicted))
        rows.append(format_breakdown_row(f"{comparison.label} actual", comparison.actual))
    print(format_table(breakdown_headers(), rows))

    errors = [abs(c.total_error_percent) for c in comparisons]
    print(f"average |error|: {np.mean(errors):.1f}%")

    # Predictions track the measured configurations.
    assert np.mean(errors) < 10.0
    assert max(errors) < 15.0
    # Deeper pipelines with a fixed number of micro-batches are less
    # efficient: the non-compute share (bubble + exposed communication) of
    # the iteration grows with PP in both measurement and prediction.
    def non_compute_share(breakdown):
        return (breakdown.other + breakdown.exposed_communication) / breakdown.total

    actual_shares = [non_compute_share(c.actual) for c in comparisons]
    predicted_shares = [non_compute_share(c.predicted) for c in comparisons]
    assert actual_shares == sorted(actual_shares)
    assert predicted_shares == sorted(predicted_shares)
    # Per-GPU compute shrinks as layers spread over more stages.
    compute = [c.actual.exposed_compute for c in comparisons]
    assert compute == sorted(compute, reverse=True)
