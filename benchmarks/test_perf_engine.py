"""Array-backed engine benchmarks: the numbers the CI perf gate consumes.

Three metrics track the two-phase engine's health:

* **single-replay latency** — compile + one session run on the standard
  benchmark graph;
* **session-reuse speedup** — evaluating a batch of what-if scenarios by
  swapping duration vectors on one session, versus the seed hot path that
  cloned the graph and ran a fresh per-scenario simulation (the acceptance
  floor is 3x);
* **sweep throughput** — scenarios/sec through ``run_sweep`` end to end.

Every test appends its metric to a machine-readable JSON file
(``benchmarks/engine-perf.json`` by default, ``REPRO_PERF_JSON`` to
override) which CI uploads as an artifact and feeds to
``benchmarks/perf_gate.py`` together with the committed baseline in
``benchmarks/baselines/engine.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.engine import SimulationSession, compile_graph
from repro.core.graph_builder import GraphBuilder
from repro.core.replay import simulate_graph
from repro.core.whatif import _clone_graph
from repro.emulator.api import emulate
from repro.experiments.settings import _fast_mode
from repro.sweep import SweepSpec, WhatIfSpec, run_sweep
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

BASE_PARALLELISM = "2x2x2"

#: The what-if batch of the session-reuse measurement: one predicate per
#: scenario, mirroring what one sweep group evaluates per configuration.
SCENARIOS = [
    ("gemm x1.5", lambda task: task.op_class == "gemm", 1.5),
    ("gemm x2", lambda task: task.op_class == "gemm", 2.0),
    ("gemm x4", lambda task: task.op_class == "gemm", 4.0),
    ("attention x2", lambda task: task.op_class == "attention", 2.0),
    ("comm x2", lambda task: task.is_communication, 2.0),
    ("comm x4", lambda task: task.is_communication, 4.0),
    ("launch free", lambda task: task.name == "cudaLaunchKernel", float("inf")),
    ("everything x1.25", lambda task: True, 1.25),
]

SWEEP_SPEC = SweepSpec(
    base_model="gpt3-15b",
    base_parallelism=BASE_PARALLELISM,
    micro_batch_size=1,
    num_microbatches=2,
    parallelism=("2x2x4", "2x1x2"),
    whatif=(WhatIfSpec(kind="kernel_class", op_class="gemm", speedup=2.0),
            WhatIfSpec(kind="launch_overhead")),
)


def _under_xdist() -> bool:
    return "PYTEST_XDIST_WORKER" in os.environ


def _perf_json_path() -> Path:
    override = os.environ.get("REPRO_PERF_JSON")
    if override:
        return Path(override)
    return Path(__file__).parent / "engine-perf.json"


def record_metric(name: str, value: float, *, higher_is_better: bool,
                  unit: str) -> None:
    """Append one metric to the machine-readable benchmark JSON.

    Skipped under pytest-xdist: parallel workers would race on the shared
    file, and timings taken on a contended runner are not gate-worthy.
    The CI perf-smoke job runs this module serially.
    """
    if _under_xdist():
        return
    path = _perf_json_path()
    payload = {"schema": 1, "fast_mode": _fast_mode(), "metrics": {}}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload.setdefault("metrics", {})
    payload["metrics"][name] = {
        "value": value,
        "higher_is_better": higher_is_better,
        "unit": unit,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="module")
def base_bundle():
    model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse(BASE_PARALLELISM)
    microbatches = 1 if _fast_mode() else 2
    training = TrainingConfig(micro_batch_size=1, num_microbatches=microbatches)
    return emulate(model, parallel, training, iterations=1, seed=11).profiled


@pytest.fixture(scope="module")
def built_graph(base_bundle):
    return GraphBuilder().build(base_bundle)


def test_benchmark_single_replay_latency(benchmark, built_graph):
    def compile_and_run():
        return SimulationSession(compile_graph(built_graph)).run()

    rounds = 3
    started = time.perf_counter()
    for _ in range(rounds):
        run = compile_and_run()
    latency_ms = (time.perf_counter() - started) / rounds * 1000.0
    benchmark.pedantic(compile_and_run, rounds=1, iterations=1)

    assert run.iteration_time_us > 0
    print(f"\nsingle replay (compile + simulate, {len(built_graph)} tasks): "
          f"{latency_ms:.1f} ms")
    record_metric("single_replay_latency_ms", latency_ms,
                  higher_is_better=False, unit="ms")


def test_benchmark_session_reuse_speedup(benchmark, built_graph):
    """Session-reuse replay must beat the seed per-scenario path by >= 3x."""
    session = SimulationSession(compile_graph(built_graph))
    session.run()

    def run_with_session():
        times = []
        for _, predicate, speedup in SCENARIOS:
            durations, _ = session.compiled.scaled_durations(predicate, speedup)
            times.append(session.run(durations=durations).iteration_time_us)
        return times

    def run_legacy():
        # The seed sweep hot path: clone the graph, rescale matching tasks,
        # simulate from scratch and materialise the replayed trace.
        times = []
        for _, predicate, speedup in SCENARIOS:
            clone = _clone_graph(built_graph)
            for task in clone.tasks.values():
                if predicate(task):
                    task.duration = (0.0 if speedup == float("inf")
                                     else task.duration / speedup)
            times.append(simulate_graph(clone).iteration_time_us)
        return times

    started = time.perf_counter()
    legacy_times = run_legacy()
    legacy_seconds = time.perf_counter() - started

    started = time.perf_counter()
    session_times = benchmark.pedantic(run_with_session, rounds=1, iterations=1)
    session_seconds = time.perf_counter() - started

    assert session_times == legacy_times, \
        "session path must produce the seed path's exact scenario times"
    speedup = legacy_seconds / session_seconds
    per_scenario_ms = session_seconds / len(SCENARIOS) * 1000.0
    print(f"\n{len(SCENARIOS)} scenarios: legacy {legacy_seconds:.2f} s vs "
          f"session {session_seconds:.2f} s -> {speedup:.1f}x "
          f"({per_scenario_ms:.1f} ms/scenario)")
    record_metric("session_reuse_speedup", speedup,
                  higher_is_better=True, unit="x")
    # The acceptance floor holds on an uncontended machine; under xdist the
    # other workers' load distorts short timing windows, so only a sanity
    # bound applies there (the serial perf-smoke job enforces the real one).
    assert speedup >= (1.5 if _under_xdist() else 3.0)


def test_benchmark_sweep_scenarios_per_sec(benchmark, base_bundle):
    result = benchmark.pedantic(run_sweep, args=(base_bundle, SWEEP_SPEC),
                                rounds=1, iterations=1)

    assert len(result) == 9
    print(f"\nsweep: {len(result)} scenarios in {result.elapsed_seconds:.2f} s "
          f"({result.scenarios_per_second:.1f} scenarios/s)")
    record_metric("sweep_scenarios_per_sec", result.scenarios_per_second,
                  higher_is_better=True, unit="scenarios/s")
    assert result.scenarios_per_second > 1.0
