"""Figure 7c: predicting simultaneous scaling of data and pipeline parallelism.

The paper reports an average error of 4.2% when scaling both degrees at
once from the GPT-3 15B 2x2x4 base trace; this benchmark regenerates those
configurations (2x4x8, 2x8x8, 2x4x16) and checks the predictions stay
accurate.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.experiments.figures import FIG7C_CONFIGS, run_parallelism_prediction


def _run(settings):
    return [run_parallelism_prediction(label, settings=settings) for label in FIG7C_CONFIGS]


def test_fig7c_scale_dp_and_pp(benchmark, settings):
    comparisons = run_once(benchmark, _run, settings)

    print("\nFigure 7c — scaling DP and PP together from 2x2x4 (upper = predicted, lower = actual)")
    rows = []
    for comparison in comparisons:
        rows.append(format_breakdown_row(f"{comparison.label} predicted", comparison.predicted))
        rows.append(format_breakdown_row(f"{comparison.label} actual", comparison.actual))
    print(format_table(breakdown_headers(), rows))

    errors = [abs(c.total_error_percent) for c in comparisons]
    print(f"average |error|: {np.mean(errors):.1f}% (paper reports 4.2%)")

    assert np.mean(errors) < 10.0
    assert max(errors) < 15.0
    # Every predicted breakdown preserves the dominant component of the
    # measured one (compute-dominated configurations stay compute-dominated).
    for comparison in comparisons:
        actual_top = max(comparison.actual.as_dict().items(), key=lambda kv: kv[1])
        predicted_top = max(comparison.predicted.as_dict().items(), key=lambda kv: kv[1])
        assert actual_top[0] == predicted_top[0]
