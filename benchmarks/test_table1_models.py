"""Table 1: model sizes and architectures used in the evaluation."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.workload.model_config import GPT3_MODELS


def _build_table() -> list[list[object]]:
    rows = []
    for model in GPT3_MODELS.values():
        rows.append([
            model.name,
            f"{model.num_parameters / 1e9:.0f}B",
            model.n_layers,
            model.d_model,
            model.d_ff,
            model.n_heads,
            model.d_head,
        ])
    return rows


def test_table1_model_architectures(benchmark):
    """Regenerate Table 1 and check the headline parameter counts."""
    rows = run_once(benchmark, _build_table)
    print("\nTable 1 — model sizes and architectures")
    print(format_table(["model", "n_params", "n_layers", "d_model", "d_ff", "n_heads", "d_head"],
                       rows))

    by_name = {row[0]: row for row in rows}
    # Parameter counts must land on the paper's headline sizes.
    assert by_name["gpt3-15b"][1] == "15B"
    assert by_name["gpt3-44b"][1] == "44B"
    assert by_name["gpt3-117b"][1] == "117B"
    assert by_name["gpt3-175b"][1] == "175B"
    # Architecture columns copied from Table 1.
    assert by_name["gpt3-175b"][2:] == [96, 12288, 49152, 96, 128]
    assert by_name["gpt3-15b"][2:] == [48, 6144, 12288, 48, 128]
