"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  The underlying experiments are emulation + replay pipelines that
take seconds each, so the ``pytest-benchmark`` fixture is always used in
pedantic mode with a single round: the recorded time is the cost of
regenerating the figure, and the printed tables are the figure data.
"""

from __future__ import annotations

import pytest

from repro.experiments.settings import EvaluationSettings


@pytest.fixture(scope="session")
def settings() -> EvaluationSettings:
    """Evaluation settings shared by all benchmarks (honours REPRO_FAST)."""
    return EvaluationSettings.default()


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark fixture and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
