"""Hardware-retarget overhead benchmarks: the numbers the hardware perf gate consumes.

A hardware scenario is one extra linear pass over the task graph (classify
each kernel once per signature, rescale durations by memoized roofline
ratios, copy-on-write only the tasks that actually move) before the same
compile + simulate every scenario pays; the acceptance criterion is that
retargeting a configuration costs less than 10% on top of evaluating the
same configuration in a plain what-if sweep.  The headline metric measures
exactly that: each ``<parallelism>+hardware`` composite resumes from its
bare ``<parallelism>`` sibling's cached derivation (the prefix-reuse path
of ``Study.derived_graph``), so the per-target time ratio of the composite
ladder over the workload ladder bounds the retarget's overhead.  A
sweep-throughput metric (scenarios/sec with the grid doubled by a
hardware axis) rides along as an end-to-end guard.

Metrics append to the same machine-readable JSON as the engine benchmarks
(``REPRO_PERF_JSON``); CI gates them against
``benchmarks/baselines/hardware.json``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.test_perf_engine import _under_xdist, record_metric
from repro.api import Study
from repro.emulator.api import emulate
from repro.experiments.settings import _fast_mode
from repro.sweep import SweepSpec, run_sweep
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

BASE_PARALLELISM = "2x2x2"
TARGET_LADDER = ("2x2x4", "2x1x2", "2x4x2", "2x4x4", "2x2x8")


@pytest.fixture(scope="module")
def base_bundle():
    model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse(BASE_PARALLELISM)
    microbatches = 1 if _fast_mode() else 2
    training = TrainingConfig(micro_batch_size=1, num_microbatches=microbatches)
    return emulate(model, parallel, training, iterations=1, seed=11).profiled


def _study(base_bundle) -> Study:
    study = Study.from_trace(base_bundle, model="gpt3-15b",
                             parallelism=BASE_PARALLELISM,
                             micro_batch_size=1, num_microbatches=2)
    study.replay()  # base replay + calibration outside the timed windows
    return study


def test_benchmark_retarget_overhead_per_target(benchmark, base_bundle):
    """The roofline pass must add < 10% to an otherwise identical predict."""
    study = _study(base_bundle)
    study.predict(TARGET_LADDER[0])  # warm the session machinery

    def predict_ladder(suffix: str) -> float:
        started = time.perf_counter()
        for label in TARGET_LADDER:
            study.predict(f"parallelism={label}{suffix}")
        return time.perf_counter() - started

    workload_seconds = predict_ladder("")
    composite_seconds = benchmark.pedantic(
        predict_ladder, args=(",gpu=H200-SXM",), rounds=1, iterations=1)

    overhead = composite_seconds / workload_seconds
    print(f"\n{len(TARGET_LADDER)} workload targets in {workload_seconds:.2f} s, "
          f"same targets retargeted to H200 in {composite_seconds:.2f} s "
          f"-> {overhead:.2f}x")
    record_metric("hardware_retarget_overhead", overhead,
                  higher_is_better=False, unit="x")
    # Under xdist the other workers distort short timing windows; the
    # serial perf-smoke job enforces the real floor.
    assert overhead < (1.5 if _under_xdist() else 1.10)


def test_benchmark_hardware_sweep_throughput(benchmark, base_bundle):
    """End-to-end guard: a hardware-crossed grid keeps sweep throughput."""
    spec = SweepSpec(base_model="gpt3-15b", base_parallelism=BASE_PARALLELISM,
                     micro_batch_size=1, num_microbatches=2,
                     parallelism=TARGET_LADDER[:3], hardware=("H200-SXM",))

    started = time.perf_counter()
    result = benchmark.pedantic(run_sweep, args=(base_bundle, spec),
                                kwargs={"workers": 1}, rounds=1, iterations=1)
    seconds = time.perf_counter() - started

    assert len(result) == 8  # (baseline + 3 parallelism) x (profiled, H200)
    throughput = len(result) / seconds
    print(f"\nhardware-crossed sweep: {len(result)} scenarios in "
          f"{seconds:.2f} s ({throughput:.1f} scenarios/s)")
    record_metric("hardware_sweep_scenarios_per_sec", throughput,
                  higher_is_better=True, unit="scenarios/s")
    assert throughput > (0.5 if _under_xdist() else 1.0)
