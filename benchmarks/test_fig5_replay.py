"""Figure 5: replay accuracy across models and parallelism strategies.

For every (model, TP×PP×DP) cell of the paper's grid, compare the actual
iteration time and breakdown against the Lumos replay and the dPRO replay.
The headline claims reproduced here:

* Lumos replays the iteration time with a small error (paper: 3.3% average,
  mostly under 5%);
* dPRO's error is several times larger (paper: 14% average, up to ~22%) and
  it systematically under-estimates by over-predicting overlap.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.experiments.figures import FIG5_CONFIGS, run_replay_comparison

_LUMOS_ERROR_BUDGET_PERCENT = 10.0


def _run_model_grid(model_name: str, settings) -> list:
    comparisons = []
    for offset, config in enumerate(FIG5_CONFIGS[model_name]):
        comparisons.append(run_replay_comparison(model_name, config, settings,
                                                 seed_offset=offset))
    return comparisons


def _print_grid(model_name: str, comparisons) -> None:
    rows = []
    for comparison in comparisons:
        rows.append([
            comparison.label.split(":")[1],
            f"{comparison.actual_time_us / 1000:.1f}",
            f"{comparison.lumos_time_us / 1000:.1f}",
            f"{comparison.dpro_time_us / 1000:.1f}",
            f"{comparison.lumos_error_percent:+.1f}%",
            f"{comparison.dpro_error_percent:+.1f}%",
        ])
    print(f"\nFigure 5 — {model_name}: per-iteration time, actual vs Lumos vs dPRO")
    print(format_table(["TPxPPxDP", "actual_ms", "lumos_ms", "dpro_ms",
                        "lumos_err", "dpro_err"], rows))


@pytest.mark.parametrize("model_name", list(FIG5_CONFIGS))
def test_fig5_replay_accuracy(benchmark, settings, model_name):
    comparisons = run_once(benchmark, _run_model_grid, model_name, settings)
    _print_grid(model_name, comparisons)

    lumos_errors = [c.lumos_abs_error_percent for c in comparisons]
    dpro_errors = [c.dpro_abs_error_percent for c in comparisons]
    print(f"average |error|: Lumos {np.mean(lumos_errors):.1f}%, dPRO {np.mean(dpro_errors):.1f}%")

    # Lumos replays accurately; dPRO is consistently worse on average.
    assert np.mean(lumos_errors) < _LUMOS_ERROR_BUDGET_PERCENT
    assert np.mean(dpro_errors) > np.mean(lumos_errors)
    # dPRO's characteristic failure mode: over-predicted overlap leads to
    # systematic under-estimation of the iteration time.
    assert np.mean([c.dpro_error_percent for c in comparisons]) < 0
    # dPRO reports more overlapped execution than the ground truth on average.
    overlap_bias = np.mean([
        c.dpro_breakdown.overlapped - c.actual_breakdown.overlapped for c in comparisons
    ])
    assert overlap_bias > 0
