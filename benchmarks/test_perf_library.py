"""Library micro-benchmarks: cost of the main Lumos pipeline stages.

These are classic pytest-benchmark measurements (multiple rounds) of the
library itself — trace parsing, graph construction and simulation — so that
performance regressions in the toolkit are visible, independent of the
figure-regeneration benchmarks.
"""

from __future__ import annotations

import pytest

from repro.core.graph_builder import GraphBuilder
from repro.core.replay import replay
from repro.core.simulator import Simulator
from repro.emulator.api import emulate
from repro.trace.kineto import KinetoTrace
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


@pytest.fixture(scope="module")
def profiled_bundle():
    model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse("2x2x2")
    training = TrainingConfig(micro_batch_size=1, num_microbatches=2)
    return emulate(model, parallel, training, iterations=1, seed=0).profiled


@pytest.fixture(scope="module")
def built_graph(profiled_bundle):
    return GraphBuilder().build(profiled_bundle)


def test_benchmark_trace_roundtrip(benchmark, profiled_bundle):
    trace = profiled_bundle[profiled_bundle.ranks()[0]]

    def roundtrip():
        return KinetoTrace.from_json(trace.to_json())

    result = benchmark(roundtrip)
    assert len(result) == len(trace)


def test_benchmark_graph_construction(benchmark, profiled_bundle):
    builder = GraphBuilder()
    graph = benchmark(builder.build, profiled_bundle)
    assert len(graph) > 0


def test_benchmark_simulation(benchmark, built_graph):
    simulator = Simulator(built_graph)
    result = benchmark(simulator.run)
    assert len(result.tasks) == len(built_graph)


def test_benchmark_end_to_end_replay(benchmark, profiled_bundle):
    result = benchmark.pedantic(replay, args=(profiled_bundle,), rounds=3, iterations=1)
    assert result.iteration_time_us > 0
