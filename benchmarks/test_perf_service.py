"""Sweep-service benchmarks: HTTP round-trip throughput and warm-cache latency.

One in-process :class:`~repro.service.ServiceApp` (real stdlib HTTP
server, real worker threads) serves a canned gpt3-15b serving trace.  The
metrics prove the service layer adds operability without destroying the
engine's economics:

* several concurrent clients submitting distinct sweeps all complete
  end-to-end (submit → ``?wait=`` long-poll → ranked result) at usable
  throughput; and
* an identical resubmission after completion is answered entirely from
  the shared on-disk sweep cache (``cache_hit_rate == 1.0``) fast — the
  whole point of content-addressed jobs over a shared cache.

Metrics append to the same machine-readable JSON as the engine benchmarks
(``REPRO_PERF_JSON``) and are gated in CI against
``benchmarks/baselines/service.json`` — see ``benchmarks/README.md`` for
the baseline-refresh procedure.
"""

from __future__ import annotations

import threading
import time

import pytest

from benchmarks.test_perf_engine import record_metric
from repro.emulator.api import emulate
from repro.experiments.settings import _fast_mode
from repro.service import ServiceApp, ServiceClient, validate_result_payload
from repro.workload.inference import InferenceConfig
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig

CLIENTS = 3


@pytest.fixture(scope="module")
def service_trace_dir(tmp_path_factory):
    decode = 4 if _fast_mode() else 8
    bundle = emulate(
        gpt3_model("gpt3-15b"), ParallelismConfig.parse("2x1x1"),
        inference=InferenceConfig(batch_size=2, prompt_length=128,
                                  decode_length=decode),
        iterations=1, seed=13).profiled
    directory = tmp_path_factory.mktemp("service-perf") / "serving"
    bundle.save(directory)
    return directory


def _submit_and_wait(url: str, body: dict) -> dict:
    client = ServiceClient(url)
    job = client.submit(body)["job"]
    # wait() long-polls the server (?wait=) — one parked request per
    # round trip instead of a client-side polling hammer.
    done = client.wait(job["job_id"], timeout=300.0)
    assert done["state"] == "done", done.get("error")
    return validate_result_payload(client.result(job["job_id"])["result"])


def test_benchmark_service_concurrent_round_trips(benchmark, service_trace_dir,
                                                  tmp_path):
    """N concurrent clients, N distinct sweep jobs, full HTTP round-trips."""
    bodies = [{"kind": "sweep", "trace": "canned",
               "targets": [f"batch={batch}"]} for batch in (4, 8, 16)][:CLIENTS]
    results: list[dict] = []
    lock = threading.Lock()

    with ServiceApp(tmp_path / "svc", workers=2,
                    traces={"canned": service_trace_dir}) as app:

        def round_trips() -> None:
            def one(body: dict) -> None:
                result = _submit_and_wait(app.url, body)
                with lock:
                    results.append(result)

            threads = [threading.Thread(target=one, args=(body,))
                       for body in bodies]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        started = time.perf_counter()
        benchmark.pedantic(round_trips, rounds=1, iterations=1)
        elapsed = time.perf_counter() - started

    assert len(results) == len(bodies)
    assert all(result["kind"] == "sweep" for result in results)
    jobs_per_sec = len(bodies) / elapsed
    print(f"\nservice round-trips: {len(bodies)} concurrent jobs in "
          f"{elapsed:.2f} s ({jobs_per_sec:.2f} jobs/s)")
    record_metric("service_jobs_per_sec", jobs_per_sec,
                  higher_is_better=True, unit="jobs/s")


def test_benchmark_service_warm_resubmit_latency(benchmark, service_trace_dir,
                                                 tmp_path):
    """An identical resubmission is served entirely from the shared cache."""
    body = {"kind": "sweep", "trace": "canned",
            "targets": ["batch=4"], "whatif": ["gemm:2"]}
    with ServiceApp(tmp_path / "svc", workers=1,
                    traces={"canned": service_trace_dir}) as app:
        cold = _submit_and_wait(app.url, body)
        assert cold["cache"]["hit_rate"] == 0.0

        started = time.perf_counter()
        warm = benchmark.pedantic(_submit_and_wait, args=(app.url, body),
                                  rounds=1, iterations=1)
        warm_ms = (time.perf_counter() - started) * 1000.0

    assert warm["cache"]["hit_rate"] == 1.0
    assert all(row["from_cache"] for row in warm["scenarios"])
    assert [row["label"] for row in warm["ranked"]] == \
        [row["label"] for row in cold["ranked"]]
    print(f"\nwarm resubmit: end-to-end {warm_ms:.0f} ms, "
          f"cache hit rate {warm['cache']['hit_rate']:.0%}")
    record_metric("service_warm_resubmit_ms", warm_ms,
                  higher_is_better=False, unit="ms")
