"""Continuous-batching stream benchmarks: serving realism at paper scale.

One GPT-3 15B serving *stream* — Poisson arrivals admitted under a batch
cap, chunked prefills, varying decode membership — is emulated, replayed
and explored end-to-end, mirroring ``examples/serving_slo.py`` and the
``repro-lumos`` serving-stream CLI flow.  The metrics prove two things:

* predicting SLO metrics (TTFT/latency percentiles, goodput) for a set
  of deployment targets from one profiled stream has usable latency; and
* the varying-batch stream graph still takes the batched fast path — the
  64-scenario what-if group must go through ``run_batch`` (not the
  sequential fallback) and beat the per-scenario session loop.

Metrics append to the same machine-readable JSON as the engine benchmarks
(``REPRO_PERF_JSON``) and are gated in CI against
``benchmarks/baselines/serving_stream.json`` — see ``benchmarks/README.md``
for the baseline-refresh procedure.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.test_perf_engine import _under_xdist, record_metric
from repro.api import Study
from repro.core.engine import SimulationSession, compile_graph
from repro.core.whatif import Scenario
from repro.experiments.settings import _fast_mode
from repro.workload.arrivals import parse_arrival
from repro.workload.inference import InferenceConfig

BATCH = 64
STREAM_TARGETS = ("serving:prompt=1024", "serving:tp=1", "serving:tp=4")


@pytest.fixture(scope="module")
def stream_study():
    decode = 4 if _fast_mode() else 8
    requests = 8 if _fast_mode() else 16
    inference = InferenceConfig(
        batch_size=4, prompt_length=512, decode_length=decode,
        arrival=parse_arrival(f"poisson:rate=400,n={requests},seed=3"))
    return Study.from_emulation("gpt3-15b", "2x1x1", inference=inference,
                                iterations=1, seed=17)


def test_benchmark_stream_slo_exploration(benchmark, stream_study):
    """Replay + calibrate + SLO metrics for every target from one stream."""

    def explore():
        stream_study.release()
        rows = [stream_study.base_serving_metrics()]
        rows += [stream_study.predict(target).serving_metrics()
                 for target in STREAM_TARGETS]
        return rows

    started = time.perf_counter()
    rows = benchmark.pedantic(explore, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started

    assert len(rows) == len(STREAM_TARGETS) + 1
    assert all(m is not None and m.latency_p99_ms > 0 for m in rows)
    print(f"\nstream SLO exploration: base + {len(STREAM_TARGETS)} targets in "
          f"{elapsed:.2f} s (base goodput {rows[0].goodput_rps:.1f} req/s)")
    record_metric("stream_targets_per_sec", len(STREAM_TARGETS) / elapsed,
                  higher_is_better=True, unit="targets/s")


def test_benchmark_stream_batch_vs_session_loop(benchmark, stream_study):
    """A stream sweep group's 64 what-ifs must take the batched fast path."""
    graph = stream_study.base_graph
    compiled = compile_graph(graph)
    session = SimulationSession(compiled)
    session.run()
    ladders = [
        ("decode_attention", lambda task: task.op_class == "decode_attention"),
        ("gemm", lambda task: task.op_class == "gemm"),
        ("comm", lambda task: task.is_communication),
        ("launch", lambda task: task.name == "cudaLaunchKernel"),
    ]
    scenarios = [Scenario(name=f"{name} x{1.1 + 0.15 * step:g}",
                          predicate=predicate, speedup=1.1 + 0.15 * step)
                 for name, predicate in ladders
                 for step in range(BATCH // len(ladders))]
    matrix = np.empty((BATCH, compiled.n_tasks), dtype=np.float64)
    for row, scenario in enumerate(scenarios):
        matrix[row] = compiled.scaled_durations(scenario.predicate,
                                                scenario.speedup)[0]

    started = time.perf_counter()
    loop_times = [session.run(durations=matrix[row]).iteration_time_us
                  for row in range(BATCH)]
    loop_seconds = time.perf_counter() - started

    session.batch_session()  # build the plan outside the timed window
    started = time.perf_counter()
    run = benchmark.pedantic(session.run_batch, args=(matrix,),
                             rounds=1, iterations=1)
    batch_seconds = time.perf_counter() - started

    assert run.batched, "stream graphs must take the vectorized fast path"
    assert run.iteration_times_us.tolist() == loop_times
    speedup = loop_seconds / batch_seconds
    print(f"\nstream batch ({compiled.n_tasks} tasks): loop {loop_seconds:.2f} s "
          f"vs batch {batch_seconds:.3f} s -> {speedup:.1f}x")
    record_metric("stream_batch_vs_loop_speedup_64", speedup,
                  higher_is_better=True, unit="x")
    assert speedup >= (1.5 if _under_xdist() else 3.0)
