"""Behavioral tests for the hardware what-if axis.

The retarget rescales every classified GPU kernel by the roofline ratio
of the analytical models evaluated on the profiled and the hypothetical
part (Lumos §3.4 applied to a hardware change); these tests lock the
direction of the predictions, the typed refusals, and the memoization
contract that every spelling of one GPU shares a single derived graph.
"""

from __future__ import annotations

import pytest

from repro import PredictError, Study
from repro.core.graph import ExecutionGraph
from repro.core.manipulation import registered_kinds, retarget_hardware
from repro.core.manipulation.hardware import (
    REFUSE_CAPACITY,
    REFUSE_UNCLASSIFIED,
    HardwareManipulationError,
    estimate_rank_memory_bytes,
)
from repro.core.perf_model import KernelPerfModel
from repro.core.tasks import Task, TaskKind
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import B200, H100_SXM, H200_SXM, GPUSpec
from repro.workload.inference import InferenceConfig
from repro.workload.parallelism import ParallelismConfig
from tests.conftest import tiny_model

TINY_GPU = GPUSpec(name="TINY", sm_count=8, bf16_tflops=10.0, fp32_tflops=5.0,
                   memory_gb=0.25, memory_bandwidth_gbps=100.0,
                   nvlink_bandwidth_gbps=50.0)


class TestDispatchRegistry:
    def test_all_kinds_registered(self):
        assert registered_kinds() == [
            "architecture", "baseline", "hardware", "parallelism", "serving"]


class TestTrainingRetarget:
    @pytest.fixture(scope="class")
    def study(self):
        return Study.from_emulation(tiny_model(), "2x1x1", iterations=1, seed=7)

    def test_h200_is_faster_than_the_h100_base(self, study):
        # Same die, faster HBM: memory-bound time shrinks, nothing grows.
        prediction = study.predict("gpu=H200-SXM")
        assert prediction.iteration_time_us < study.replay().iteration_time_us
        assert prediction.speedup_vs_base > 1.0

    def test_a100_is_slower_than_the_h100_base(self, study):
        prediction = study.predict("gpu=A100-SXM")
        assert prediction.iteration_time_us > study.replay().iteration_time_us

    def test_b200_beats_h200(self, study):
        assert study.predict("gpu=B200").iteration_time_us < \
            study.predict("gpu=H200-SXM").iteration_time_us

    def test_metadata_records_gpu_and_rescale_factors(self, study):
        graph = study.predict("gpu=H200-SXM").graph
        assert graph.metadata["gpu"] == "H200-SXM"
        assert graph.metadata["manipulated"] == "hardware"
        factors = graph.metadata["hardware_rescale"]
        # The H200 upgrade is the memory subsystem: bandwidth-bound
        # classes speed up toward the HBM ratio (the fixed kernel
        # overhead share does not scale), compute stays put.
        assert 3350.0 / 4800.0 < factors["memory_bound"] < 1.0
        assert factors["gemm"] == pytest.approx(1.0)

    def test_equivalent_spellings_share_one_memoized_prediction(self, study):
        canonical = study.predict("gpu=H200-SXM")
        for spelling in ("hardware:H200-SXM", "gpu=h200_sxm", H200_SXM):
            assert study.predict(spelling) is canonical

    def test_profiled_gpu_folds_to_the_baseline(self, study):
        prediction = study.predict("gpu=H100-SXM")
        assert prediction.kind == "baseline"
        assert prediction.iteration_time_us == study.replay().iteration_time_us

    def test_composite_parallelism_plus_hardware(self, study):
        prediction = study.predict("parallelism=2x1x2,gpu=H200-SXM")
        assert prediction.world_size == 4
        assert prediction.iteration_time_us < \
            study.predict("2x1x2").iteration_time_us

    def test_capacity_refusal_carries_typed_code(self, study):
        with pytest.raises(PredictError, match="would not fit") as excinfo:
            study.predict(TINY_GPU)
        assert excinfo.value.code == REFUSE_CAPACITY

    def test_custom_spec_shadowing_the_base_gpu_is_refused(self, study):
        impostor = GPUSpec(**dict(H100_SXM.to_json(), memory_gb=999.0))
        with pytest.raises(PredictError, match="named like the base GPU"):
            study.predict(impostor)

    def test_custom_spec_shadowing_the_registry_is_refused(self, study):
        impostor = GPUSpec(**dict(B200.to_json(), memory_gb=999.0))
        with pytest.raises(PredictError, match="distinct name"):
            study.predict(impostor)

    def test_two_different_specs_with_one_name_are_refused(self, study):
        first = GPUSpec(**dict(H200_SXM.to_json(), name="X100"))
        study.predict(first)
        second = GPUSpec(**dict(B200.to_json(), name="X100"))
        with pytest.raises(PredictError, match="already predicted"):
            study.predict(second)


class TestServingRetarget:
    @pytest.fixture(scope="class")
    def study(self):
        inference = InferenceConfig(batch_size=4, prompt_length=64,
                                    decode_length=2)
        return Study.from_emulation(tiny_model(), "2x1x1", inference=inference,
                                    iterations=1, seed=11)

    def test_h200_speeds_up_decode(self, study):
        # Decode attention is bandwidth-bound: the HBM3e part wins.
        prediction = study.predict("gpu=H200-SXM")
        assert prediction.iteration_time_us < study.replay().iteration_time_us

    def test_composite_serving_plus_hardware(self, study):
        prediction = study.predict("batch=8,gpu=B200")
        assert prediction.kind == "serving+hardware"
        assert prediction.graph.metadata["gpu"] == "B200"

    def test_capacity_check_includes_the_kv_cache(self, study):
        parallel = ParallelismConfig.parse("2x1x1")
        inference = InferenceConfig(batch_size=4, prompt_length=64,
                                    decode_length=2)
        serving = estimate_rank_memory_bytes(tiny_model(), parallel,
                                             inference=inference)
        training = estimate_rank_memory_bytes(tiny_model(), parallel)
        assert serving > 0 and training > 0
        # 18 bytes/param of optimizer state dwarfs a tiny KV cache.
        assert training > serving


class TestUnclassifiedRefusal:
    def _retarget(self, graph):
        cluster = ClusterSpec(num_gpus=1)
        return retarget_hardware(
            graph, H200_SXM, base_model=tiny_model(),
            base_parallel=ParallelismConfig.parse("1x1x1"),
            perf_model=KernelPerfModel(cluster=cluster), base_cluster=cluster)

    def test_opaque_kernels_past_the_budget_refuse(self):
        graph = ExecutionGraph()
        graph.add_task(Task(task_id=0, rank=0, kind=TaskKind.GPU,
                            name="mystery_kernel", duration=100.0, stream=0))
        with pytest.raises(HardwareManipulationError,
                           match="cannot classify") as excinfo:
            self._retarget(graph)
        assert excinfo.value.code == REFUSE_UNCLASSIFIED

    def test_small_unclassified_residue_is_kept_verbatim(self):
        graph = ExecutionGraph()
        graph.add_task(Task(task_id=0, rank=0, kind=TaskKind.GPU,
                            name="mystery_kernel", duration=1.0, stream=0))
        graph.add_task(Task(task_id=1, rank=0, kind=TaskKind.GPU,
                            name="fused_layernorm", duration=1000.0, stream=0,
                            args={"op_class": "layernorm"}))
        derived = self._retarget(graph)
        by_name = {task.name: task for task in derived.task_list()}
        assert by_name["mystery_kernel"].duration == 1.0  # under budget: kept
        assert by_name["fused_layernorm"].duration < 1000.0
