"""Unit tests for error metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    absolute_relative_error_percent,
    mean_absolute_percentage_error,
    relative_error_percent,
    timeline_correlation,
)


class TestRelativeError:
    def test_signed_error(self):
        assert relative_error_percent(110.0, 100.0) == pytest.approx(10.0)
        assert relative_error_percent(90.0, 100.0) == pytest.approx(-10.0)

    def test_absolute_error(self):
        assert absolute_relative_error_percent(90.0, 100.0) == pytest.approx(10.0)

    def test_zero_actual_raises(self):
        with pytest.raises(ValueError):
            relative_error_percent(1.0, 0.0)


class TestMAPE:
    def test_perfect_prediction(self):
        assert mean_absolute_percentage_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert mean_absolute_percentage_error([110.0, 80.0], [100.0, 100.0]) == pytest.approx(15.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])

    def test_zero_actual_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [0.0])


class TestTimelineCorrelation:
    def test_identical_series(self):
        series = [0.1, 0.5, 0.9, 0.3]
        assert timeline_correlation(series, series) == pytest.approx(1.0)

    def test_anticorrelated_series(self):
        a = [0.0, 1.0, 0.0, 1.0]
        b = [1.0, 0.0, 1.0, 0.0]
        assert timeline_correlation(a, b) == pytest.approx(-1.0)

    def test_different_lengths_padded(self):
        value = timeline_correlation([1.0, 1.0, 1.0, 0.0], [1.0, 1.0, 1.0])
        assert -1.0 <= value <= 1.0

    def test_constant_series(self):
        assert timeline_correlation([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert timeline_correlation([1.0, 1.0], [0.5, 0.5]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            timeline_correlation([], [])

    def test_numpy_inputs_accepted(self):
        a = np.array([0.2, 0.4, 0.8])
        assert timeline_correlation(a, a) == pytest.approx(1.0)
