"""Tests for trace emission and the high-level emulation API."""

import pytest

from repro.emulator.api import emulate
from repro.emulator.program import Streams, Threads
from repro.trace.events import Category, CudaRuntimeName
from repro.trace.validation import validate_trace
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig
from tests.conftest import tiny_model


class TestEmulationResult:
    def test_one_trace_per_pipeline_stage(self, profiled_bundle, small_parallel):
        assert len(profiled_bundle) == small_parallel.pp

    def test_profiled_and_measured_are_distinct_iterations(self, small_emulation):
        assert small_emulation.profiled is small_emulation.iterations[0]
        assert small_emulation.measured is small_emulation.iterations[-1]
        assert small_emulation.profiled is not small_emulation.measured

    def test_iteration_times_are_positive_and_similar(self, small_emulation):
        t0 = small_emulation.iteration_time(0)
        t1 = small_emulation.iteration_time(1)
        assert t0 > 0 and t1 > 0
        assert abs(t1 - t0) / t0 < 0.25

    def test_traces_are_structurally_valid(self, small_emulation):
        for bundle in small_emulation.iterations:
            assert validate_trace(bundle).ok

    def test_distributed_info_attached(self, profiled_bundle, small_parallel):
        for trace in profiled_bundle:
            info = trace.distributed
            assert info is not None
            assert info.world_size == small_parallel.world_size
            assert info.tensor_parallel == small_parallel.tp

    def test_metadata_records_configuration(self, profiled_bundle, small_model, small_parallel):
        assert profiled_bundle.metadata["model"] == small_model.name
        assert profiled_bundle.metadata["parallelism"] == small_parallel.label()

    def test_requires_at_least_one_iteration(self, small_emulator):
        with pytest.raises(ValueError):
            small_emulator.run(iterations=0)

    def test_programs_are_cached(self, small_emulator):
        assert small_emulator.programs() is small_emulator.programs()


class TestEmittedTraceContents:
    def test_profiler_step_annotation_present(self, profiled_bundle):
        for trace in profiled_bundle:
            steps = trace.profiler_steps()
            assert len(steps) == 1
            assert steps[0].name == "ProfilerStep#0"

    def test_event_categories_present(self, profiled_bundle):
        trace = profiled_bundle[profiled_bundle.ranks()[0]]
        categories = {event.cat for event in trace}
        assert {Category.CPU_OP, Category.CUDA_RUNTIME, Category.KERNEL,
                Category.USER_ANNOTATION} <= categories

    def test_launches_and_kernels_share_correlation_ids(self, profiled_bundle):
        trace = profiled_bundle[profiled_bundle.ranks()[0]]
        launch_ids = {e.correlation for e in trace.runtime_events()
                      if e.name == CudaRuntimeName.LAUNCH_KERNEL}
        kernel_ids = {e.correlation for e in trace.kernels()}
        assert kernel_ids == launch_ids

    def test_event_record_and_wait_events_emitted(self, profiled_bundle):
        trace = profiled_bundle[profiled_bundle.ranks()[0]]
        names = {e.name for e in trace.runtime_events()}
        assert CudaRuntimeName.EVENT_RECORD in names
        assert CudaRuntimeName.STREAM_WAIT_EVENT in names
        assert CudaRuntimeName.DEVICE_SYNCHRONIZE in names

    def test_kernels_are_tagged_with_stream_and_metadata(self, profiled_bundle):
        trace = profiled_bundle[profiled_bundle.ranks()[0]]
        for kernel in trace.kernels():
            assert kernel.stream in Streams.ALL
            assert "op_class" in kernel.args

    def test_communication_kernels_carry_group_metadata(self, profiled_bundle):
        trace = profiled_bundle[profiled_bundle.ranks()[0]]
        comm = [k for k in trace.kernels() if k.args.get("collective")]
        assert comm
        for kernel in comm:
            assert kernel.args["group"] in ("tp", "dp", "pp")
            assert kernel.args["group_size"] >= 2
            assert kernel.args["size_bytes"] > 0

    def test_cpu_events_use_two_threads(self, profiled_bundle):
        trace = profiled_bundle[profiled_bundle.ranks()[0]]
        threads = {e.tid for e in trace if e.is_cpu()}
        assert {Threads.MAIN, Threads.BACKWARD} <= threads

    def test_sync_event_duration_covers_wait(self, profiled_bundle):
        trace = profiled_bundle[profiled_bundle.ranks()[0]]
        syncs = [e for e in trace.runtime_events()
                 if e.name == CudaRuntimeName.DEVICE_SYNCHRONIZE]
        assert syncs and all(s.dur > 10.0 for s in syncs)


class TestEmulationBehaviour:
    def test_same_seed_reproduces_iteration_time(self, small_model, small_parallel, small_training):
        first = emulate(small_model, small_parallel, small_training, iterations=1, seed=3)
        second = emulate(small_model, small_parallel, small_training, iterations=1, seed=3)
        assert first.iteration_time(0) == pytest.approx(second.iteration_time(0))

    def test_different_seeds_differ(self, small_model, small_parallel, small_training):
        first = emulate(small_model, small_parallel, small_training, iterations=1, seed=3)
        second = emulate(small_model, small_parallel, small_training, iterations=1, seed=4)
        assert first.iteration_time(0) != pytest.approx(second.iteration_time(0), rel=1e-6)

    def test_more_layers_take_longer(self, small_parallel, small_training):
        small = emulate(tiny_model(n_layers=4), small_parallel, small_training,
                        iterations=1, seed=0)
        large = emulate(tiny_model(n_layers=8), small_parallel, small_training,
                        iterations=1, seed=0)
        assert large.iteration_time(0) > small.iteration_time(0)

    def test_tensor_parallel_only_job_has_single_trace(self, small_training):
        result = emulate(tiny_model(n_layers=2), ParallelismConfig(2, 1, 1),
                         TrainingConfig(micro_batch_size=1, num_microbatches=2,
                                        sequence_length=512),
                         iterations=1, seed=0)
        assert len(result.profiled) == 1

    def test_emulator_object_reusable(self, small_emulator):
        result = small_emulator.run(iterations=1)
        assert result.iteration_time(0) > 0
