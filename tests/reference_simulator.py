"""Verbatim copy of the seed dict/heap scheduler, kept as a test oracle.

The array-backed engine (:mod:`repro.core.engine`) must reproduce the seed
scheduler's start times *exactly* — same floating-point operations in the
same order.  This module preserves the seed ``Simulator.run`` algorithm
(minus the ``SimulatedTask`` materialisation) so ``tests/test_engine.py``
can assert bit-identical schedules without depending on the production
wrapper, which itself runs on the engine.

Do not "improve" this file: its value is that it stays frozen at the seed
semantics.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.core.graph import ExecutionGraph
from repro.core.tasks import Task, TaskKind


def reference_run(graph: ExecutionGraph, start_time: float = 0.0) -> dict[int, tuple[float, float]]:
    """Seed Algorithm 1: returns ``task_id -> (start, duration)`` in finalize order."""
    tasks = graph.tasks
    n = len(tasks)
    if n == 0:
        return {}

    indegree: dict[int, int] = {task_id: 0 for task_id in tasks}
    successors: dict[int, list[int]] = defaultdict(list)
    for dependency in graph.dependencies:
        indegree[dependency.dst] += 1
        successors[dependency.src].append(dependency.dst)

    ready_time: dict[int, float] = {task_id: start_time for task_id in tasks}
    processor_available: dict[tuple, float] = defaultdict(lambda: start_time)

    stream_total: dict[tuple[int, int], int] = defaultdict(int)
    stream_finished: dict[tuple[int, int], int] = defaultdict(int)
    stream_last_end: dict[tuple[int, int], float] = defaultdict(lambda: start_time)
    for task in tasks.values():
        if task.kind == TaskKind.GPU:
            stream_total[(task.rank, int(task.stream))] += 1
    waiting_syncs: dict[tuple[int, int], list[int]] = defaultdict(list)

    group_members: dict[str, list[int]] = defaultdict(list)
    for task in tasks.values():
        if task.collective_group is not None:
            group_members[task.collective_group].append(task.task_id)
    group_ready: dict[str, dict[int, float]] = defaultdict(dict)

    heap: list[tuple[float, int]] = []
    for task_id, degree in indegree.items():
        if degree == 0:
            heapq.heappush(heap, (ready_time[task_id], task_id))

    scheduled: dict[int, tuple[float, float]] = {}

    def sync_satisfied(task: Task) -> bool:
        return all(stream_finished[(task.rank, stream)] >= stream_total[(task.rank, stream)]
                   for stream in task.sync_streams)

    def sync_ready_time(task: Task, base: float) -> float:
        latest = base
        for stream in task.sync_streams:
            latest = max(latest, stream_last_end[(task.rank, stream)])
        return latest

    def finalize(task_id: int, at: float) -> None:
        task = tasks[task_id]
        processor = task.processor
        begin = max(at, processor_available[processor])
        end = begin + task.duration
        scheduled[task_id] = (begin, task.duration)
        processor_available[processor] = end
        if task.kind == TaskKind.GPU:
            key = (task.rank, int(task.stream))
            stream_finished[key] += 1
            stream_last_end[key] = max(stream_last_end[key], end)
            if stream_finished[key] >= stream_total[key]:
                for sync_id in waiting_syncs.pop(key, []):
                    if sync_id in scheduled:
                        continue
                    sync_task = tasks[sync_id]
                    if _sync_streams_done(sync_task, stream_finished, stream_total):
                        heapq.heappush(heap, (sync_ready_time(sync_task,
                                                              ready_time[sync_id]), sync_id))
                    else:
                        for pending in sync_task.sync_streams:
                            pending_key = (sync_task.rank, pending)
                            if stream_finished[pending_key] < stream_total[pending_key]:
                                waiting_syncs[pending_key].append(sync_id)
                                break
        for successor in successors[task_id]:
            ready_time[successor] = max(ready_time[successor], end)
            indegree[successor] -= 1
            if indegree[successor] == 0:
                heapq.heappush(heap, (ready_time[successor], successor))

    while heap:
        _, task_id = heapq.heappop(heap)
        if task_id in scheduled:
            continue
        task = tasks[task_id]

        if task.is_sync and not sync_satisfied(task):
            for stream in task.sync_streams:
                key = (task.rank, stream)
                if stream_finished[key] < stream_total[key]:
                    waiting_syncs[key].append(task_id)
                    break
            continue
        if task.is_sync:
            ready_time[task_id] = sync_ready_time(task, ready_time[task_id])

        if task.collective_group is not None:
            group = task.collective_group
            group_ready[group][task_id] = max(ready_time[task_id],
                                              processor_available[task.processor])
            members = group_members[group]
            if len(group_ready[group]) < len(members):
                continue
            common_start = max(group_ready[group].values())
            for member in sorted(members):
                finalize(member, common_start)
            continue

        finalize(task_id, ready_time[task_id])

    if len(scheduled) != n:
        missing = [tasks[task_id].name for task_id in tasks if task_id not in scheduled][:10]
        raise RuntimeError(
            f"simulation did not schedule {n - len(scheduled)} of {n} tasks "
            f"(first missing: {missing}); the graph may contain a cycle or an "
            f"unsatisfiable synchronisation"
        )

    return scheduled


def _sync_streams_done(task: Task, finished: dict[tuple[int, int], int],
                       total: dict[tuple[int, int], int]) -> bool:
    return all(finished[(task.rank, stream)] >= total[(task.rank, stream)]
               for stream in task.sync_streams)
