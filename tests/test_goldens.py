"""Golden snapshot tests for the Study workflow.

Two canned traces (deterministic seeded emulations of the tiny test
transformer) are replayed, broken down, predicted and what-if'd through
the :class:`~repro.api.Study` facade, and the numeric outputs are compared
**exactly** against committed JSON snapshots under ``tests/goldens/``.

The engine's contract is bit-identical scheduling, so these numbers must
not move unless an algorithm changes on purpose — refactors like the
batched simulation kernel, session reuse or array-backend changes cannot
silently shift them.  After an intentional change, regenerate with::

    python -m pytest tests/test_goldens.py --update-goldens

and commit the resulting diff (it documents exactly what moved).
"""

from __future__ import annotations

import pytest

from repro.api import Study
from repro.workload.arrivals import parse_arrival
from repro.workload.inference import InferenceConfig
from repro.workload.training import TrainingConfig
from tests.conftest import tiny_model

#: The canned traces: name -> (emulation inputs, prediction targets).
#: Training cases predict parallelism labels; the serving case predicts
#: ``batch=/prompt=/tp=`` targets from an emulated inference episode.
_CASES = {
    "study_tiny_2x2x2": dict(
        model=tiny_model(),
        parallelism="2x2x2",
        training=TrainingConfig(micro_batch_size=1, num_microbatches=2,
                                sequence_length=512, gradient_bucket_layers=2),
        seed=7,
        predict_targets=("2x1x2", "2x2x4", "gpu=H200-SXM",
                         "parallelism=2x2x4,gpu=H200-SXM"),
    ),
    "study_tiny_1x2x2": dict(
        model=tiny_model(n_layers=2, d_model=512, name="tiny-gpt-narrow"),
        parallelism="1x2x2",
        training=TrainingConfig(micro_batch_size=2, num_microbatches=2,
                                sequence_length=256, gradient_bucket_layers=1),
        seed=9,
        predict_targets=("1x2x4",),
    ),
    "study_tiny_serving_2x1x1": dict(
        model=tiny_model(),
        parallelism="2x1x1",
        inference=InferenceConfig(batch_size=8, prompt_length=512,
                                  decode_length=4),
        seed=11,
        predict_targets=("gpu=H200-SXM", "batch=16,gpu=H200-SXM"),
        serving_targets=("batch=16", "prompt=1024", "tp=1"),
    ),
    "study_tiny_stream_2x1x1": dict(
        model=tiny_model(n_layers=2, d_model=4096, name="tiny-stream"),
        parallelism="2x1x1",
        inference=InferenceConfig(
            batch_size=4, prompt_length=512, decode_length=2,
            arrival=parse_arrival("poisson:rate=600,n=6,seed=3")),
        seed=7,
        predict_targets=("serving:prompt=1024",),
        serving_metrics=True,
    ),
}


@pytest.fixture(scope="module", params=sorted(_CASES))
def canned_study(request):
    case = _CASES[request.param]
    study = Study.from_emulation(case["model"], case["parallelism"],
                                 case.get("training"),
                                 inference=case.get("inference"),
                                 iterations=1, seed=case["seed"])
    return request.param, case, study


def _snapshot(case: dict, study: Study) -> dict:
    replay = study.replay()
    payload = {
        "replay": {
            "iteration_time_us": replay.iteration_time_us,
            "n_tasks": len(replay.graph),
            "n_dependencies": len(replay.graph.dependencies),
        },
        "breakdown": study.breakdown().as_dict(),
        "predict": {},
        "whatif": {},
    }
    if case.get("serving_metrics"):
        payload["serving"] = study.base_serving_metrics().to_json()
    for target in case.get("predict_targets", ()):
        prediction = study.predict(target)
        payload["predict"][target] = {
            "iteration_time_us": prediction.iteration_time_us,
            "world_size": prediction.world_size,
            "speedup_vs_base": prediction.speedup_vs_base,
        }
        if case.get("serving_metrics") and prediction.is_stream:
            payload["predict"][target]["serving"] = \
                prediction.serving_metrics().to_json()
    for target in case.get("serving_targets", ()):
        prediction = study.predict(serving=target)
        payload["predict"][target] = {
            "iteration_time_us": prediction.iteration_time_us,
            "world_size": prediction.world_size,
            "speedup_vs_base": prediction.speedup_vs_base,
        }
    for result in (study.whatif()
                   .kernel_class("gemm", 2.0)
                   .communication(2.0)
                   .launch_overhead()
                   .run()):
        payload["whatif"][result.name] = {
            "scenario_time_us": result.scenario_time_us,
            "affected_tasks": result.affected_tasks,
        }
    return payload


class TestGoldenSnapshots:
    def test_study_outputs_match_golden(self, canned_study, golden_check):
        name, case, study = canned_study
        golden_check(name, _snapshot(case, study))

    def test_snapshot_is_deterministic(self, canned_study):
        # The same study must serve identical numbers on repeated calls
        # (memoized replay, calibrate-once): a cheap within-run guard that
        # the golden comparison itself is meaningful.
        name, case, study = canned_study
        assert _snapshot(case, study) == _snapshot(case, study)
