"""Tests for declarative sweep specifications and their expansion."""

import json

import pytest

from repro.sweep.spec import (
    KIND_ARCHITECTURE,
    KIND_BASELINE,
    KIND_PARALLELISM,
    ScenarioSpec,
    SweepSpec,
    SweepSpecError,
    WhatIfSpec,
    scenario_cache_key,
)


class TestWhatIfSpec:
    def test_kernel_class_describe(self):
        spec = WhatIfSpec(kind="kernel_class", op_class="gemm", speedup=2.0)
        assert spec.describe() == "gemm x2"

    def test_communication_defaults_to_all_groups(self):
        assert WhatIfSpec(kind="communication").describe() == "all-comm x2"
        assert WhatIfSpec(kind="communication", group="dp").describe() == "dp-comm x2"

    def test_launch_overhead_is_always_infinite(self):
        spec = WhatIfSpec.from_json({"kind": "launch_overhead"})
        assert spec.speedup == float("inf")
        assert spec.describe() == "zero-launch"

    def test_json_roundtrip_preserves_infinity(self):
        spec = WhatIfSpec(kind="kernel_class", op_class="attention", speedup=float("inf"))
        payload = json.loads(json.dumps(spec.to_json()))
        assert WhatIfSpec.from_json(payload) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(SweepSpecError):
            WhatIfSpec(kind="teleportation")

    def test_kernel_class_requires_op_class(self):
        with pytest.raises(SweepSpecError):
            WhatIfSpec(kind="kernel_class")

    def test_non_positive_speedup_rejected(self):
        with pytest.raises(SweepSpecError):
            WhatIfSpec(kind="communication", speedup=0.0)

    @pytest.mark.parametrize("text, expected", [
        ("launch", WhatIfSpec(kind="launch_overhead", speedup=float("inf"))),
        ("gemm:2", WhatIfSpec(kind="kernel_class", op_class="gemm", speedup=2.0)),
        ("comm:dp:4", WhatIfSpec(kind="communication", group="dp", speedup=4.0)),
        ("comm:1.5", WhatIfSpec(kind="communication", speedup=1.5)),
        ("comm::inf", WhatIfSpec(kind="communication", speedup=float("inf"))),
    ])
    def test_parse_compact_cli_form(self, text, expected):
        assert WhatIfSpec.parse(text) == expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(SweepSpecError):
            WhatIfSpec.parse("gemm")
        with pytest.raises(SweepSpecError):
            WhatIfSpec.parse("gemm:fast")


class TestExpansion:
    def _spec(self, **overrides):
        defaults = dict(base_model="gpt3-15b", base_parallelism="2x2x2",
                        micro_batch_size=1, num_microbatches=2)
        defaults.update(overrides)
        return SweepSpec(**defaults)

    def test_baseline_only(self):
        scenarios = self._spec().expand()
        assert [s.kind for s in scenarios] == [KIND_BASELINE]
        assert scenarios[0].label == "base"

    def test_grid_is_configurations_times_whatif_variants(self):
        spec = self._spec(parallelism=("2x2x4", "2x4x2"), models=("gpt3-v1",),
                          whatif=(WhatIfSpec(kind="kernel_class", op_class="gemm"),
                                  WhatIfSpec(kind="launch_overhead")))
        scenarios = spec.expand()
        # (baseline + 2 parallelism + 1 model) x (none + 2 what-if) = 12
        assert len(scenarios) == 12
        assert sum(1 for s in scenarios if s.whatif is None) == 4
        assert sum(1 for s in scenarios if s.kind == KIND_ARCHITECTURE) == 3

    def test_labels_are_unique(self):
        spec = self._spec(parallelism=("2x2x4",), models=("gpt3-v1",),
                          whatif=(WhatIfSpec(kind="communication", group="dp"),))
        labels = [s.label for s in spec.expand()]
        assert len(labels) == len(set(labels))

    def test_duplicate_configurations_collapse(self):
        spec = self._spec(parallelism=("2x2x4", "2x2x4"))
        kinds = [(s.kind, s.target) for s in spec.expand()]
        assert kinds.count((KIND_PARALLELISM, "2x2x4")) == 1

    def test_exclude_baseline(self):
        spec = self._spec(parallelism=("2x2x4",), include_baseline=False)
        assert all(s.kind != KIND_BASELINE for s in spec.expand())


class TestValidation:
    def test_tensor_parallelism_change_rejected(self):
        spec = SweepSpec(base_parallelism="2x2x2", parallelism=("4x2x2",))
        with pytest.raises(SweepSpecError, match="tensor parallelism"):
            spec.validate()

    def test_unknown_model_rejected(self):
        spec = SweepSpec(models=("gpt5-900t",))
        with pytest.raises(SweepSpecError, match="unknown model"):
            spec.validate()

    def test_unknown_base_model_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown model"):
            SweepSpec(base_model="not-a-model").validate()

    def test_malformed_label_rejected(self):
        spec = SweepSpec(base_parallelism="2x2x2", parallelism=("2x2",))
        with pytest.raises(SweepSpecError, match="TPxPPxDP"):
            spec.validate()

    def test_excessive_pipeline_parallelism_rejected(self):
        spec = SweepSpec(base_model="gpt3-15b", base_parallelism="2x2x2",
                         parallelism=("2x64x1",))
        with pytest.raises(ValueError):
            spec.validate()

    def test_empty_grid_rejected(self):
        spec = SweepSpec(include_baseline=False)
        with pytest.raises(SweepSpecError, match="zero scenarios"):
            spec.validate()

    def test_valid_spec_passes(self):
        SweepSpec(base_parallelism="2x2x2", parallelism=("2x2x4",),
                  models=("gpt3-v1",)).validate()


class TestSerialisation:
    def test_json_roundtrip(self):
        spec = SweepSpec(base_model="gpt3-15b", base_parallelism="2x2x4",
                         micro_batch_size=2, num_microbatches=4,
                         parallelism=("2x2x8",), models=("gpt3-v2",),
                         whatif=(WhatIfSpec(kind="communication", group="pp"),),
                         include_baseline=False)
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_file_roundtrip(self, tmp_path):
        spec = SweepSpec(parallelism=("2x2x8",))
        path = tmp_path / "spec.json"
        spec.save(path)
        assert SweepSpec.load(path) == spec

    def test_coerce_accepts_spec_mapping_and_path(self, tmp_path):
        spec = SweepSpec(parallelism=("2x2x8",))
        path = tmp_path / "spec.json"
        spec.save(path)
        assert SweepSpec.coerce(spec) is spec
        assert SweepSpec.coerce(spec.to_json()) == spec
        assert SweepSpec.coerce(path) == spec
        with pytest.raises(SweepSpecError):
            SweepSpec.coerce(42)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SweepSpecError, match="not valid JSON"):
            SweepSpec.load(path)

    def test_scenario_roundtrip(self):
        scenario = ScenarioSpec(kind=KIND_PARALLELISM, target="2x4x4",
                                whatif=WhatIfSpec(kind="launch_overhead",
                                                  speedup=float("inf")))
        assert ScenarioSpec.from_json(scenario.to_json()) == scenario

    def test_cache_key_depends_on_base_configuration(self):
        scenario = ScenarioSpec(kind=KIND_PARALLELISM, target="2x2x8")
        key_a = scenario_cache_key(SweepSpec(base_parallelism="2x2x2"), scenario)
        key_b = scenario_cache_key(SweepSpec(base_parallelism="2x2x4"), scenario)
        assert key_a != key_b


class TestServingSpecs:
    def _serving_spec(self, **overrides):
        from repro.workload.inference import InferenceConfig
        base = dict(base_model="gpt3-15b", base_parallelism="2x1x1",
                    inference=InferenceConfig(batch_size=8, prompt_length=512,
                                              decode_length=16),
                    serving=("batch=16", "tp=4,prompt=1024"))
        base.update(overrides)
        return SweepSpec(**base)

    def test_serving_spec_roundtrips_through_json(self, tmp_path):
        spec = self._serving_spec()
        assert SweepSpec.from_json(spec.to_json()) == spec
        path = tmp_path / "serving.json"
        spec.save(path)
        assert SweepSpec.load(path) == spec

    def test_serving_configurations_use_canonical_labels(self):
        from repro.core.manipulation import KIND_SERVING
        configs = self._serving_spec().configurations()
        assert (KIND_SERVING, "batch=16") in configs
        # Keys are re-ordered canonically so equal targets memoize together.
        assert (KIND_SERVING, "prompt=1024,tp=4") in configs

    def test_serving_axis_requires_inference_base(self):
        with pytest.raises(SweepSpecError, match="inference base"):
            SweepSpec(serving=("batch=16",)).validate()

    def test_training_axes_rejected_on_serving_base(self):
        with pytest.raises(SweepSpecError, match="training bases"):
            self._serving_spec(parallelism=("2x1x2",), serving=()).validate()

    def test_serving_base_needs_no_registry_model(self):
        self._serving_spec(base_model="custom-llm").validate()

    def test_pp_base_rejected(self):
        with pytest.raises(SweepSpecError, match="pipeline parallelism"):
            self._serving_spec(base_parallelism="2x2x1").validate()

    def test_tp1_base_cannot_reshard_up(self):
        with pytest.raises(SweepSpecError, match="TP=1 base"):
            self._serving_spec(base_parallelism="1x1x1",
                               serving=("tp=2",)).validate()

    def test_malformed_serving_target_rejected(self):
        with pytest.raises(SweepSpecError, match="topology"):
            self._serving_spec(serving=("decode=32",)).validate()

    def test_non_dividing_tp_target_rejected_up_front(self):
        # gpt3-15b has 48 heads / 51200 vocab: tp=3 truncates the shards,
        # and validate() must say so before any replay/calibration work.
        with pytest.raises(SweepSpecError, match="does not divide"):
            self._serving_spec(serving=("tp=3",)).validate()
        # Custom base models can only be resolved by the owning study, so
        # the same target defers to evaluation-time validation there.
        self._serving_spec(base_model="custom-llm", serving=("tp=3",)).validate()

    def test_cache_key_depends_on_inference_base(self):
        from repro.core.manipulation import KIND_SERVING
        from repro.workload.inference import InferenceConfig
        scenario = ScenarioSpec(kind=KIND_SERVING, target="batch=16")
        key_a = scenario_cache_key(self._serving_spec(), scenario)
        key_b = scenario_cache_key(
            self._serving_spec(inference=InferenceConfig(batch_size=4)), scenario)
        assert key_a != key_b

    def test_training_base_json_is_unchanged_by_the_serving_fields(self):
        # Training cache keys must not move: the serving keys only appear
        # in serving-base payloads.
        payload = SweepSpec().base_json()
        assert "inference" not in payload
        assert set(payload) == {"model", "parallelism", "micro_batch_size",
                                "num_microbatches"}


class TestHardwareAxis:
    def _spec(self, **overrides):
        defaults = dict(base_model="gpt3-15b", base_parallelism="2x2x2",
                        parallelism=("2x2x4",), hardware=("H200-SXM",))
        defaults.update(overrides)
        return SweepSpec(**defaults)

    def test_json_roundtrip(self):
        spec = self._spec()
        assert SweepSpec.from_json(spec.to_json()) == spec
        assert spec.to_json()["hardware"] == ["H200-SXM"]

    def test_empty_axis_is_omitted_from_json(self):
        # Pre-hardware sweep specs must keep their cache keys.
        assert "hardware" not in SweepSpec().to_json()

    def test_axis_crosses_the_configuration_grid(self):
        configs = self._spec().configurations()
        # Every workload config appears unretargeted (the profiled-GPU
        # reference column) and once per listed GPU.
        assert (KIND_BASELINE, "2x2x2") in configs
        assert (KIND_PARALLELISM, "2x2x4") in configs
        assert ("hardware", "gpu=H200-SXM") in configs
        assert ("parallelism+hardware", "2x2x4+gpu=H200-SXM") in configs
        assert len(configs) == 4

    def test_gpu_names_canonicalise(self):
        spec = self._spec(hardware=("h200_sxm", "gpu=H200-SXM"))
        configs = spec.configurations()
        assert configs.count(("hardware", "gpu=H200-SXM")) == 1

    def test_unknown_gpu_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown GPU"):
            self._spec(hardware=("RTX-9090",)).validate()

    def test_spec_file_paths_rejected(self):
        with pytest.raises(SweepSpecError, match="registry GPU names"):
            self._spec(hardware=("/tmp/custom.json",)).validate()

    def test_registry_names_validate(self):
        self._spec(hardware=("H200-SXM", "B200", "A100-SXM")).validate()
