"""Tests for execution-graph construction from traces (§3.3)."""


from repro.core.graph_builder import GraphBuilder, GraphBuilderOptions, build_execution_graph
from repro.core.tasks import DependencyType
from repro.trace.events import Category, CudaRuntimeName, TraceEvent
from repro.trace.kineto import KinetoTrace


class TestBuilderOnEmulatedTrace:
    def test_all_ranks_present(self, small_graph, profiled_bundle):
        assert small_graph.ranks() == profiled_bundle.ranks()

    def test_gpu_task_count_matches_kernel_events(self, small_graph, profiled_bundle):
        kernels = sum(len(trace.kernels()) for trace in profiled_bundle)
        assert len(small_graph.gpu_tasks()) == kernels

    def test_wrapper_cpu_ops_dropped(self, small_graph, profiled_bundle):
        # Operator events that contain a runtime launch are dropped, so there
        # are fewer CPU tasks than CPU events.
        cpu_events = sum(len(trace.cpu_ops()) + len(trace.runtime_events())
                         for trace in profiled_bundle)
        assert len(small_graph.cpu_tasks()) < cpu_events

    def test_graph_is_acyclic(self, small_graph):
        small_graph.validate()

    def test_all_dependency_classes_present(self, small_graph):
        counts = small_graph.dependency_counts()
        assert counts[DependencyType.CPU_INTRA_THREAD] > 0
        assert counts[DependencyType.CPU_INTER_THREAD] > 0
        assert counts[DependencyType.CPU_TO_GPU] > 0
        assert counts[DependencyType.GPU_INTRA_STREAM] > 0
        assert counts[DependencyType.GPU_INTER_STREAM] > 0

    def test_every_kernel_has_a_launch_dependency(self, small_graph):
        launch_targets = {d.dst for d in small_graph.dependencies
                          if d.dep_type == DependencyType.CPU_TO_GPU}
        for task in small_graph.gpu_tasks():
            assert task.task_id in launch_targets

    def test_intra_stream_chain_is_a_total_order(self, small_graph):
        for rank in small_graph.ranks():
            for stream in small_graph.streams(rank):
                tasks = small_graph.tasks_on_stream(rank, stream)
                chain_edges = [d for d in small_graph.dependencies
                               if d.dep_type == DependencyType.GPU_INTRA_STREAM
                               and small_graph.tasks[d.src].stream == stream
                               and small_graph.tasks[d.src].rank == rank]
                assert len(chain_edges) == len(tasks) - 1

    def test_sync_tasks_marked_with_target_streams(self, small_graph):
        device_syncs = [t for t in small_graph.cpu_tasks()
                        if t.name == CudaRuntimeName.DEVICE_SYNCHRONIZE]
        assert device_syncs
        for sync in device_syncs:
            assert set(sync.sync_streams) == set(small_graph.streams(sync.rank))

    def test_sync_durations_clamped(self, small_graph):
        for task in small_graph.cpu_tasks():
            if task.is_sync:
                assert task.duration <= 5.0

    def test_p2p_kernels_grouped_across_ranks(self, small_graph):
        groups = small_graph.collective_groups()
        assert groups
        for members in groups.values():
            ranks = {small_graph.tasks[m].rank for m in members}
            assert len(members) == 2
            assert len(ranks) == 2

    def test_dpro_options_remove_inter_stream_edges(self, profiled_bundle):
        graph = GraphBuilder(GraphBuilderOptions(include_inter_stream=False)).build(profiled_bundle)
        assert graph.dependency_counts()[DependencyType.GPU_INTER_STREAM] == 0

    def test_disable_collective_groups(self, profiled_bundle):
        options = GraphBuilderOptions(include_collective_groups=False)
        graph = GraphBuilder(options).build(profiled_bundle)
        assert not graph.collective_groups()

    def test_disable_inter_thread(self, profiled_bundle):
        graph = GraphBuilder(GraphBuilderOptions(include_inter_thread=False)).build(profiled_bundle)
        assert graph.dependency_counts()[DependencyType.CPU_INTER_THREAD] == 0

    def test_single_trace_input_accepted(self, profiled_bundle):
        rank = profiled_bundle.ranks()[0]
        graph = build_execution_graph(profiled_bundle[rank])
        assert graph.ranks() == [rank]


class TestBuilderOnHandcraftedTrace:
    def _make_trace(self):
        events = [
            TraceEvent("aten::mm", Category.CPU_OP, 0.0, 10.0, 0, 1, {"correlation": 1}),
            TraceEvent(CudaRuntimeName.LAUNCH_KERNEL, Category.CUDA_RUNTIME, 5.0, 4.0, 0, 1,
                       {"correlation": 1, "stream": 7}),
            TraceEvent("gemm", Category.KERNEL, 20.0, 100.0, 0, 7,
                       {"correlation": 1, "stream": 7}),
            TraceEvent(CudaRuntimeName.EVENT_RECORD, Category.CUDA_RUNTIME, 10.0, 1.0, 0, 1,
                       {"event_id": 1, "stream": 7}),
            TraceEvent(CudaRuntimeName.STREAM_WAIT_EVENT, Category.CUDA_RUNTIME, 12.0, 1.0, 0, 1,
                       {"event_id": 1, "stream": 20}),
            TraceEvent(CudaRuntimeName.LAUNCH_KERNEL, Category.CUDA_RUNTIME, 14.0, 4.0, 0, 1,
                       {"correlation": 2, "stream": 20}),
            TraceEvent("nccl_all_reduce", Category.KERNEL, 125.0, 30.0, 0, 20,
                       {"correlation": 2, "stream": 20, "collective": "all_reduce"}),
            TraceEvent(CudaRuntimeName.STREAM_SYNCHRONIZE, Category.CUDA_RUNTIME, 19.0, 140.0,
                       0, 1, {"stream": 20}),
            # A second thread that starts after a large gap (autograd-style).
            TraceEvent("backward_op", Category.CPU_OP, 200.0, 10.0, 0, 2),
        ]
        return KinetoTrace(rank=0, events=events)

    def test_inter_stream_edge_from_event_pair(self):
        graph = GraphBuilder().build(self._make_trace())
        inter = [d for d in graph.dependencies
                 if d.dep_type == DependencyType.GPU_INTER_STREAM]
        assert len(inter) == 1
        src, dst = graph.tasks[inter[0].src], graph.tasks[inter[0].dst]
        assert src.name == "gemm" and dst.name == "nccl_all_reduce"

    def test_stream_sync_targets_requested_stream(self):
        graph = GraphBuilder().build(self._make_trace())
        sync = [t for t in graph.cpu_tasks() if t.name == CudaRuntimeName.STREAM_SYNCHRONIZE][0]
        assert sync.sync_streams == (20,)

    def test_gap_based_inter_thread_dependency(self):
        graph = GraphBuilder().build(self._make_trace())
        inter_thread = [d for d in graph.dependencies
                        if d.dep_type == DependencyType.CPU_INTER_THREAD]
        assert len(inter_thread) == 1
        dst = graph.tasks[inter_thread[0].dst]
        assert dst.name == "backward_op"
        assert graph.tasks[inter_thread[0].src].thread != dst.thread

    def test_gap_threshold_respected(self):
        options = GraphBuilderOptions(inter_thread_gap_us=1e9)
        graph = GraphBuilder(options).build(self._make_trace())
        # The only candidate dependency is the cross-thread one for the first
        # task of thread 2, which is always created (no previous task), so
        # raising the threshold does not remove it.
        inter_thread = [d for d in graph.dependencies
                        if d.dep_type == DependencyType.CPU_INTER_THREAD]
        assert len(inter_thread) == 1

    def test_orphan_wait_without_record_is_ignored(self):
        events = [
            TraceEvent(CudaRuntimeName.STREAM_WAIT_EVENT, Category.CUDA_RUNTIME, 0.0, 1.0, 0, 1,
                       {"event_id": 42, "stream": 7}),
            TraceEvent("kernel", Category.KERNEL, 5.0, 1.0, 0, 7, {"stream": 7}),
        ]
        graph = GraphBuilder().build(KinetoTrace(rank=0, events=events))
        assert graph.dependency_counts()[DependencyType.GPU_INTER_STREAM] == 0

    def test_empty_trace_builds_empty_graph(self):
        graph = GraphBuilder().build(KinetoTrace(rank=0, events=[]))
        assert len(graph) == 0
