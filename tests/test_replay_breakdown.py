"""Tests for the replay API, execution breakdown and SM utilisation."""

import numpy as np
import pytest

from repro.core.breakdown import ExecutionBreakdown, compute_breakdown, rank_breakdown
from repro.core.metrics import absolute_relative_error_percent
from repro.core.replay import replay, simulate_graph
from repro.core.sm_utilization import average_sm_utilization, sm_utilization_timeline
from repro.trace.events import Category, TraceEvent
from repro.trace.kineto import KinetoTrace


def _trace_with_kernels(kernels):
    """kernels: list of (name, ts, dur, is_comm)."""
    events = [TraceEvent("ProfilerStep#0", Category.USER_ANNOTATION, 0.0, 100.0, 0, 0)]
    for index, (name, ts, dur, is_comm) in enumerate(kernels):
        args = {"stream": 20 if is_comm else 7}
        if is_comm:
            args["collective"] = "all_reduce"
        events.append(TraceEvent(name, Category.KERNEL, ts, dur, 0,
                                 args["stream"], args))
    return KinetoTrace(rank=0, events=events)


class TestBreakdown:
    def test_components_sum_to_window(self):
        trace = _trace_with_kernels([("gemm", 0.0, 40.0, False), ("nccl", 20.0, 40.0, True)])
        breakdown = rank_breakdown(trace)
        assert breakdown.total == pytest.approx(100.0)
        assert breakdown.exposed_compute == pytest.approx(20.0)
        assert breakdown.exposed_communication == pytest.approx(20.0)
        assert breakdown.overlapped == pytest.approx(20.0)
        assert breakdown.other == pytest.approx(40.0)

    def test_pure_compute_trace(self):
        trace = _trace_with_kernels([("gemm", 0.0, 60.0, False)])
        breakdown = rank_breakdown(trace)
        assert breakdown.exposed_communication == 0.0
        assert breakdown.overlapped == 0.0
        assert breakdown.exposed_compute == pytest.approx(60.0)

    def test_overlapping_compute_kernels_not_double_counted(self):
        trace = _trace_with_kernels([("a", 0.0, 50.0, False), ("b", 25.0, 50.0, False)])
        assert rank_breakdown(trace).exposed_compute == pytest.approx(75.0)

    def test_empty_trace(self):
        breakdown = rank_breakdown(KinetoTrace(rank=0, events=[]))
        assert breakdown.total == 0.0

    def test_bundle_breakdown_averages_ranks(self, measured_bundle):
        bundle_breakdown = compute_breakdown(measured_bundle)
        per_rank = [rank_breakdown(trace) for trace in measured_bundle]
        assert bundle_breakdown.total == pytest.approx(np.mean([b.total for b in per_rank]))

    def test_as_milliseconds(self):
        breakdown = ExecutionBreakdown(1000.0, 2000.0, 3000.0, 4000.0)
        assert breakdown.as_milliseconds()["total"] == pytest.approx(10.0)


class TestReplay:
    def test_replay_matches_measured_iteration(self, small_replay, measured_bundle):
        error = absolute_relative_error_percent(small_replay.iteration_time_us,
                                                measured_bundle.iteration_time())
        assert error < 10.0

    def test_replay_breakdown_close_to_actual(self, small_replay, measured_bundle):
        actual = compute_breakdown(measured_bundle)
        replayed = small_replay.breakdown()
        assert abs(replayed.total - actual.total) / actual.total < 0.10
        assert abs(replayed.exposed_compute - actual.exposed_compute) / actual.total < 0.10

    def test_replayed_trace_contains_all_ranks(self, small_replay, profiled_bundle):
        assert small_replay.replayed_trace.ranks() == profiled_bundle.ranks()

    def test_replay_is_deterministic(self, profiled_bundle):
        first = replay(profiled_bundle)
        second = replay(profiled_bundle)
        assert first.iteration_time_us == pytest.approx(second.iteration_time_us)

    def test_simulate_graph_equivalent_to_replay(self, small_replay):
        again = simulate_graph(small_replay.graph)
        assert again.iteration_time_us == pytest.approx(small_replay.iteration_time_us)

    def test_iteration_time_units(self, small_replay):
        assert small_replay.iteration_time_ms == pytest.approx(
            small_replay.iteration_time_us / 1000.0)


class TestSMUtilization:
    def test_fully_busy_trace_has_unit_utilisation(self):
        trace = _trace_with_kernels([("gemm", 0.0, 100.0, False)])
        timeline = sm_utilization_timeline(trace, bin_us=10.0)
        assert timeline.shape == (10,)
        assert np.allclose(timeline, 1.0)

    def test_idle_second_half(self):
        trace = _trace_with_kernels([("gemm", 0.0, 50.0, False)])
        timeline = sm_utilization_timeline(trace, bin_us=10.0)
        assert np.allclose(timeline[:5], 1.0)
        assert np.allclose(timeline[5:], 0.0)

    def test_values_bounded(self, measured_bundle):
        for trace in measured_bundle:
            timeline = sm_utilization_timeline(trace, bin_us=500.0)
            assert np.all(timeline >= 0.0) and np.all(timeline <= 1.0)

    def test_replayed_utilisation_tracks_actual_mean(self, small_replay, measured_bundle):
        rank = measured_bundle.ranks()[0]
        actual = sm_utilization_timeline(measured_bundle[rank], bin_us=500.0)
        replayed = sm_utilization_timeline(small_replay.replayed_trace[rank], bin_us=500.0)
        assert abs(actual.mean() - replayed.mean()) < 0.15

    def test_invalid_bin_raises(self, measured_bundle):
        rank = measured_bundle.ranks()[0]
        with pytest.raises(ValueError):
            sm_utilization_timeline(measured_bundle[rank], bin_us=0.0)

    def test_average_utilisation_over_bundle(self, measured_bundle):
        value = average_sm_utilization(measured_bundle, bin_us=500.0)
        assert 0.0 < value <= 1.0

    def test_empty_trace_gives_empty_timeline(self):
        timeline = sm_utilization_timeline(KinetoTrace(rank=0, events=[]))
        assert timeline.size == 0
