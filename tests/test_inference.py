"""Tests for the inference (serving) workload family.

Covers the configuration layer (:class:`InferenceConfig`,
:class:`ServingTarget`), the decode operator decomposition, the
decode-attention cost model, the serving program builder / emulation path,
perf-model calibration of decode kernels, the serving graph manipulation,
and the :class:`Study` facade's serving workflow.
"""

from __future__ import annotations

import pytest

from repro.api import KIND_BASELINE, KIND_SERVING, PredictError, Study, StudyError
from repro.core.manipulation.serving import rescale_serving_graph
from repro.core.perf_model import KernelPerfModel
from repro.emulator.api import emulate
from repro.emulator.inference_builder import InferenceProgramBuilder
from repro.kernels.decode import decode_attention_time_us
from repro.kernels.registry import KernelCostModel
from repro.workload.inference import (
    InferenceConfig,
    ServingTarget,
    decode_head_ops,
    decode_layer_ops,
    prefill_layer_ops,
)
from repro.sweep import SweepSpecError
from repro.workload.operators import OpClass, layer_forward_ops
from repro.workload.parallelism import ParallelismConfig
from tests.conftest import tiny_model

# Large enough that decode kernels (the KV sweep above all) clear the
# launch overhead — at smaller scales the episode is genuinely
# launch-bound and kernel-shape knobs cannot move the critical path.
TINY_INFERENCE = InferenceConfig(batch_size=8, prompt_length=512, decode_length=4)
TP2 = ParallelismConfig(tensor_parallel=2)


@pytest.fixture(scope="module")
def serving_study():
    return Study.from_emulation(tiny_model(), "2x1x1", inference=TINY_INFERENCE,
                                iterations=2, seed=21)


class TestInferenceConfig:
    def test_defaults_are_valid(self):
        config = InferenceConfig()
        assert config.dtype_bytes == 2
        assert config.kv_dtype_bytes == 2

    @pytest.mark.parametrize("kwargs", [
        dict(batch_size=0), dict(prompt_length=0), dict(decode_length=-1),
        dict(dtype="int8"), dict(kv_dtype="int4"),
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            InferenceConfig(**kwargs)

    def test_fp8_kv_cache_halves_the_footprint(self):
        model = tiny_model()
        bf16 = TINY_INFERENCE.kv_cache_bytes(model, TP2)
        fp8 = TINY_INFERENCE.with_changes().__class__(
            **{**TINY_INFERENCE.to_json(), "kv_dtype": "fp8"}).kv_cache_bytes(model, TP2)
        assert fp8 == bf16 / 2

    def test_kv_cache_accounting(self):
        model = tiny_model()
        config = TINY_INFERENCE
        per_token_layer = config.kv_bytes_per_token_layer(model, TP2)
        # K and V, half the heads per TP=2 rank, 2 bytes per element.
        assert per_token_layer == 2 * (model.n_heads // 2) * model.d_head * 2
        total = config.kv_cache_bytes(model, TP2)
        context = config.prompt_length + config.decode_length
        assert total == config.batch_size * context * model.n_layers * per_token_layer
        assert config.kv_cache_gb(model, TP2) == total / 2**30

    def test_context_length_per_step(self):
        prompt = TINY_INFERENCE.prompt_length
        assert TINY_INFERENCE.context_length(0) == prompt
        assert TINY_INFERENCE.context_length(3) == prompt + 3
        assert TINY_INFERENCE.max_context_length == prompt + 3
        with pytest.raises(ValueError):
            TINY_INFERENCE.context_length(TINY_INFERENCE.decode_length)

    def test_prefill_training_shim_matches_forward_shapes(self):
        model = tiny_model()
        prefill = prefill_layer_ops(model, TP2, TINY_INFERENCE)
        forward = layer_forward_ops(model, TP2, TINY_INFERENCE.prefill_training())
        assert [(op.name, op.m, op.n, op.k) for op in prefill] == \
            [(op.name, op.m, op.n, op.k) for op in forward]
        assert all(op.metadata["phase"] == "prefill" for op in prefill)

    def test_json_roundtrip(self):
        config = InferenceConfig(batch_size=16, prompt_length=1024,
                                 decode_length=128, kv_dtype="fp8")
        assert InferenceConfig.from_json(config.to_json()) == config


class TestServingTarget:
    def test_parse_and_canonical_label(self):
        target = ServingTarget.parse("tp=4 , batch=16")
        assert target == ServingTarget(batch_size=16, tensor_parallel=4)
        assert target.label() == "batch=16,tp=4"

    def test_resolve_applies_only_named_knobs(self):
        config, parallel = ServingTarget.parse("prompt=256").resolve(
            TINY_INFERENCE, TP2)
        assert config.prompt_length == 256
        assert config.batch_size == TINY_INFERENCE.batch_size
        assert parallel == TP2

    def test_noop_detection(self):
        assert ServingTarget.parse("batch=8,tp=2").is_noop(TINY_INFERENCE, TP2)
        assert not ServingTarget.parse("batch=4").is_noop(TINY_INFERENCE, TP2)

    @pytest.mark.parametrize("label,match", [
        ("decode=128", "topology"),
        ("pp=2", "tensor parallelism"),
        ("dp=4", "tensor parallelism"),
        ("batch=0", "positive"),
        ("widgets=3", "unknown serving target key"),
        ("batch", "integer assignment"),
        ("", "empty serving target"),
        ("batch=4,batch=8", "duplicate"),
    ])
    def test_invalid_labels_rejected(self, label, match):
        with pytest.raises(ValueError, match=match):
            ServingTarget.parse(label)


class TestDecodeOps:
    def test_decode_gemms_are_skinny(self):
        for op in decode_layer_ops(tiny_model(), TP2, TINY_INFERENCE, step=0):
            if op.op_class == OpClass.GEMM:
                assert op.m == TINY_INFERENCE.batch_size

    def test_decode_attention_context_grows_with_step(self):
        def attention(step):
            ops = decode_layer_ops(tiny_model(), TP2, TINY_INFERENCE, step)
            return next(op for op in ops
                        if op.op_class == OpClass.DECODE_ATTENTION)
        first, last = attention(0), attention(3)
        assert first.metadata["context"] == TINY_INFERENCE.prompt_length
        assert last.metadata["context"] == TINY_INFERENCE.prompt_length + 3
        assert last.bytes_accessed > first.bytes_accessed
        assert last.flops > first.flops

    def test_tp_emits_per_step_all_reduces(self):
        ops = decode_layer_ops(tiny_model(), TP2, TINY_INFERENCE, step=0)
        collectives = [op for op in ops if op.is_communication]
        assert [op.name for op in collectives] == [
            "tp_all_reduce_attn_decode", "tp_all_reduce_mlp_decode"]
        solo = decode_layer_ops(tiny_model(), ParallelismConfig(), TINY_INFERENCE, 0)
        assert not any(op.is_communication for op in solo)

    def test_head_gathers_logits_under_tp(self):
        ops = decode_head_ops(tiny_model(), TP2, TINY_INFERENCE, step=0)
        assert any(op.name == "tp_all_gather_logits" for op in ops)
        assert ops[-1].name == "sample_token"


class TestDecodeAttentionCostModel:
    def test_memory_bound_regime_scales_with_kv_bytes(self, small_cluster):
        gpu = small_cluster.gpu
        short = decode_attention_time_us(1e6, 1e7, gpu)
        long = decode_attention_time_us(2e6, 2e7, gpu)
        assert long > short
        # Doubling the sweep doubles the variable part exactly.
        assert long - gpu.kernel_fixed_overhead_us == pytest.approx(
            2 * (short - gpu.kernel_fixed_overhead_us))

    def test_negative_inputs_rejected(self, small_cluster):
        with pytest.raises(ValueError):
            decode_attention_time_us(-1.0, 1.0, small_cluster.gpu)

    def test_registry_dispatches_decode_attention(self, small_cluster):
        cost = KernelCostModel(small_cluster)
        op = next(op for op in decode_layer_ops(tiny_model(), TP2, TINY_INFERENCE, 0)
                  if op.op_class == OpClass.DECODE_ATTENTION)
        expected = decode_attention_time_us(op.flops, op.bytes_accessed,
                                            small_cluster.gpu)
        assert cost.duration_us(op) == expected


class TestInferenceProgramBuilder:
    def test_single_representative_rank(self):
        programs = InferenceProgramBuilder(tiny_model(), TP2, TINY_INFERENCE).build()
        assert list(programs) == [0]

    def test_kernel_counts_match_decomposition(self):
        model = tiny_model()
        builder = InferenceProgramBuilder(model, TP2, TINY_INFERENCE)
        kernels = builder.build()[0].kernels()
        prefill = [k for k in kernels if k.phase == "prefill"]
        decode = [k for k in kernels if k.phase == "decode"]
        # 2 embedding + 12 per layer (incl. 2 all-reduces) + 4 head ops.
        assert len(prefill) == 2 + 12 * model.n_layers + 4
        # Per step: 1 embedding + 12 per layer + 4 head ops.
        assert len(decode) == TINY_INFERENCE.decode_length * (1 + 12 * model.n_layers + 4)

    def test_decode_attention_carries_analytical_inputs(self):
        kernels = InferenceProgramBuilder(tiny_model(), TP2, TINY_INFERENCE).build()[0].kernels()
        decode_attn = [k for k in kernels if k.op_class == OpClass.DECODE_ATTENTION]
        assert decode_attn
        assert all(k.bytes_accessed > 0 and k.flops > 0 for k in decode_attn)
        gemms = [k for k in kernels if k.op_class == OpClass.GEMM]
        assert all(k.bytes_accessed == 0 for k in gemms)

    def test_pipeline_parallel_rejected(self):
        with pytest.raises(ValueError, match="pipeline parallelism"):
            InferenceProgramBuilder(tiny_model(), ParallelismConfig(2, 2, 1),
                                    TINY_INFERENCE)


class TestServingEmulation:
    def test_metadata_identifies_the_workload(self, serving_study):
        metadata = serving_study.trace.metadata
        assert metadata["workload"] == "serving"
        assert InferenceConfig.from_json(metadata["inference"]) == TINY_INFERENCE

    def test_replay_matches_profiled_episode(self, serving_study):
        replayed = serving_study.replay().iteration_time_us
        profiled = serving_study.emulation.profiled.iteration_time()
        assert replayed == pytest.approx(profiled, rel=0.01)

    def test_calibration_covers_decode_attention(self, serving_study):
        model = KernelPerfModel.calibrate(serving_study.base_graph,
                                          serving_study.cluster)
        assert "decode_attention" in model.calibration
        assert "gemm" in model.calibration
        assert model.calibration["decode_attention"] > 0
        assert model.predict_decode_attention_us(1e6, 1e7) > 0

    def test_training_and_inference_are_exclusive(self):
        from repro.workload.training import TrainingConfig
        with pytest.raises(ValueError, match="not both"):
            emulate(tiny_model(), TP2, TrainingConfig(),
                    inference=TINY_INFERENCE)


class TestServingManipulation:
    def test_noop_target_rescales_to_identical_durations(self, serving_study):
        graph = serving_study.base_graph
        derived = rescale_serving_graph(
            graph, ServingTarget(batch_size=TINY_INFERENCE.batch_size),
            base_model=serving_study.base_model, base_parallel=serving_study.base_parallel,
            base_inference=TINY_INFERENCE, perf_model=serving_study.perf_model)
        assert len(derived) == len(graph)
        assert [t.duration for t in derived.task_list()] == \
            [t.duration for t in graph.task_list()]

    def test_batch_scaling_grows_compute(self, serving_study):
        base = serving_study.base_time_us
        bigger = serving_study.predict(serving="batch=16")
        assert bigger.iteration_time_us > base
        assert bigger.kind == KIND_SERVING

    def test_prompt_scaling_grows_prefill_and_kv_sweep(self, serving_study):
        longer = serving_study.predict(serving="prompt=1024")
        assert longer.iteration_time_us > serving_study.base_time_us

    def test_tp_resharding_down_exposes_more_compute(self, serving_study):
        solo = serving_study.predict(serving="tp=1")
        assert solo.world_size == 1
        assert solo.iteration_time_us > serving_study.base_time_us

    def test_tp1_target_zeroes_the_collectives(self, serving_study):
        # The TP=1 decomposition has no collective ops to match against,
        # so the observed collectives must degenerate to empty tasks —
        # not silently keep their TP=2 durations.
        derived, _ = serving_study.derived_graph(KIND_SERVING, "tp=1")
        comm = [t for t in derived.task_list()
                if t.kind.value == "gpu" and t.is_communication]
        assert comm
        assert all(t.duration == 0.0 for t in comm)
        assert all(t.args["group_size"] == 1 for t in comm)
        breakdown = serving_study.predict(serving="tp=1").breakdown()
        assert breakdown.exposed_communication == 0.0

    def test_tp_resharding_up_rescales_collectives(self, serving_study):
        wide = serving_study.predict(serving="tp=4")
        assert wide.world_size == 4
        derived, _ = serving_study.derived_graph(KIND_SERVING, "tp=4")
        comm = [t for t in derived.task_list()
                if t.kind.value == "gpu" and t.is_communication]
        assert comm
        assert all(t.args["group_size"] == 4 for t in comm)

    def test_tp1_base_cannot_reshard_up(self):
        study = Study.from_emulation(tiny_model(), "1x1x1",
                                     inference=TINY_INFERENCE, iterations=1, seed=5)
        with pytest.raises(PredictError, match="no tensor-parallel collectives"):
            study.predict(serving="tp=2")

    def test_tp_must_divide_the_sharded_dimensions(self, serving_study):
        # tiny-gpt has 8 heads: tp=3 would model 2 of 2.67 heads per rank.
        with pytest.raises(PredictError, match="does not divide"):
            serving_study.predict(serving="tp=3")
        with pytest.raises(ValueError, match="does not divide"):
            InferenceProgramBuilder(tiny_model(), ParallelismConfig(3, 1, 1),
                                    TINY_INFERENCE)

    def test_training_trace_with_forced_inference_is_refused(self):
        # An inference= override on a training trace must not silently
        # "predict" the base time for every serving target.
        from repro.workload.training import TrainingConfig
        training = emulate(tiny_model(), TP2,
                           TrainingConfig(micro_batch_size=1, num_microbatches=2),
                           iterations=1, seed=3)
        study = Study.from_trace(training.profiled, model=tiny_model(),
                                 parallelism="2x1x1", inference=TINY_INFERENCE)
        with pytest.raises(PredictError, match="does not look like a serving"):
            study.predict(serving="batch=16")


class TestServingStudy:
    def test_workload_property(self, serving_study):
        assert serving_study.workload == "serving"
        assert Study(None, model=tiny_model(), parallelism="2x2x2").workload == "training"

    def test_noop_serving_target_is_the_baseline(self, serving_study):
        prediction = serving_study.predict(serving="batch=8,tp=2")
        assert prediction.kind == KIND_BASELINE
        assert prediction.iteration_time_us == serving_study.base_time_us

    def test_serving_metadata_without_inference_payload_is_refused(self, serving_study):
        from repro.trace.kineto import TraceBundle
        broken = TraceBundle(traces=dict(serving_study.trace.traces),
                             metadata={**serving_study.trace.metadata})
        del broken.metadata["inference"]
        with pytest.raises(StudyError, match="no inference configuration"):
            Study.from_trace(broken, model=tiny_model(), parallelism="2x1x1")

    def test_from_trace_recovers_serving_base(self, serving_study, tmp_path):
        serving_study.trace.save(tmp_path / "bundle")
        reopened = Study.from_trace(tmp_path / "bundle", model=tiny_model(),
                                    parallelism="2x1x1")
        assert reopened.inference == TINY_INFERENCE
        assert reopened.predict(serving="batch=4").iteration_time_us == \
            serving_study.predict(serving="batch=4").iteration_time_us

    def test_training_targets_rejected_on_serving_base(self, serving_study):
        with pytest.raises(PredictError, match="serving episode"):
            serving_study.predict("2x1x2")
        with pytest.raises(PredictError, match="serving episode"):
            serving_study.predict(model="gpt3-v1")

    def test_serving_targets_rejected_on_training_base(self, profiled_bundle):
        study = Study.from_trace(profiled_bundle, model=tiny_model(),
                                 parallelism="2x2x2")
        with pytest.raises(PredictError, match="training iteration"):
            study.predict(serving="batch=4")

    def test_pp_base_rejected_with_typed_error(self):
        with pytest.raises(StudyError, match="pipeline parallelism"):
            Study.from_emulation(tiny_model(), "1x2x1", inference=TINY_INFERENCE)

    def test_non_dividing_tp_base_rejected_with_typed_error(self):
        # tiny-gpt has 8 heads; the builder's divisibility check must
        # surface as the same typed error as the PP rejection.
        with pytest.raises(StudyError, match="does not divide"):
            Study.from_emulation(tiny_model(), "3x1x1", inference=TINY_INFERENCE)

    def test_malformed_serving_target_is_typed(self, serving_study):
        with pytest.raises(PredictError, match="unknown serving target key"):
            serving_study.predict(serving="bogus=1")

    def test_whatif_builder_on_serving_target(self, serving_study):
        results = (serving_study.whatif(serving="batch=4")
                   .kernel_class("decode_attention", 2.0)
                   .communication(2.0, group="tp")
                   .run())
        assert len(results) == 2
        assert all(r.affected_tasks > 0 for r in results)
        target_time = serving_study.predict(serving="batch=4").iteration_time_us
        assert all(r.baseline_time_us == target_time for r in results)

    def test_sweep_with_serving_axis_matches_predictions(self, serving_study):
        result = serving_study.sweep(serving=("batch=4", "tp=1"),
                                     whatif=("decode_attention:2",))
        assert len(result) == 6
        by_label = {r.label: r for r in result.results}
        assert by_label["batch=4"].iteration_time_us == \
            serving_study.predict(serving="batch=4").iteration_time_us
        assert by_label["tp=1"].world_size == 1

    def test_sweep_axis_mixing_rejected(self, serving_study):
        with pytest.raises(SweepSpecError, match="serving"):
            serving_study.sweep(parallelism=("2x1x2",))

    def test_serving_axis_on_training_study_rejected(self, profiled_bundle):
        study = Study.from_trace(profiled_bundle, model=tiny_model(),
                                 parallelism="2x2x2")
        with pytest.raises(SweepSpecError, match="inference base"):
            study.sweep(serving=("batch=4",))

    def test_standalone_runner_rejects_non_registry_serving_base(self, serving_study):
        # study.sweep carries the custom ModelConfig; the standalone runner
        # cannot rebuild it from the spec's model *name* and must say so
        # up front instead of failing inside Study.from_trace.
        from repro.sweep import SweepSpec
        from repro.sweep.runner import run_sweep
        spec = SweepSpec(base_model="tiny-gpt", base_parallelism="2x1x1",
                         inference=TINY_INFERENCE, serving=("batch=16",))
        with pytest.raises(SweepSpecError, match="not in the GPT-3 registry"):
            run_sweep(serving_study.trace, spec)

    def test_one_call_predict_wrapper_takes_serving_targets(self, serving_study,
                                                            tmp_path):
        from repro.api import predict
        serving_study.trace.save(tmp_path / "bundle")
        prediction = predict(tmp_path / "bundle", serving="batch=16",
                             base_model=tiny_model(), base_parallelism="2x1x1")
        assert prediction.iteration_time_us == \
            serving_study.predict(serving="batch=16").iteration_time_us
