"""Unit tests for model configurations (Table 1 / Table 2)."""

import pytest

from repro.workload.model_config import GPT3_MODELS, GPT3_VARIANTS, ModelConfig, gpt3_model


class TestParameterCounts:
    @pytest.mark.parametrize("name, expected_billion", [
        ("gpt3-15b", 15), ("gpt3-44b", 44), ("gpt3-117b", 117), ("gpt3-175b", 175),
    ])
    def test_table1_models_match_headline_sizes(self, name, expected_billion):
        model = gpt3_model(name)
        assert model.num_parameters / 1e9 == pytest.approx(expected_billion, rel=0.05)

    @pytest.mark.parametrize("name, expected_billion", [
        ("gpt3-v1", 20), ("gpt3-v2", 30), ("gpt3-v3", 28), ("gpt3-v4", 44),
    ])
    def test_table2_variants_match_headline_sizes(self, name, expected_billion):
        model = GPT3_VARIANTS[name]
        assert model.num_parameters / 1e9 == pytest.approx(expected_billion, rel=0.07)

    def test_v4_matches_the_44b_architecture(self):
        v4, gpt44 = GPT3_VARIANTS["gpt3-v4"], GPT3_MODELS["gpt3-44b"]
        assert (v4.n_layers, v4.d_model, v4.d_ff) == (gpt44.n_layers, gpt44.d_model, gpt44.d_ff)

    def test_layer_parameters_scale_with_depth(self):
        base = gpt3_model("gpt3-15b")
        deeper = base.with_changes(n_layers=base.n_layers * 2)
        added = deeper.num_parameters - base.num_parameters
        assert added == base.n_layers * base.layer_parameters


class TestModelConfig:
    def test_attention_dim(self):
        model = gpt3_model("gpt3-44b")
        assert model.attention_dim == 48 * 128

    def test_flops_per_token_positive_and_increasing(self):
        small, large = gpt3_model("gpt3-15b"), gpt3_model("gpt3-175b")
        assert 0 < small.flops_per_token() < large.flops_per_token()

    def test_with_changes_replaces_fields(self):
        base = gpt3_model("gpt3-15b")
        changed = base.with_changes(name="wide", d_model=12288, d_ff=24576)
        assert changed.name == "wide"
        assert changed.d_model == 12288
        assert changed.n_heads == 12288 // base.d_head  # heads follow hidden size by default
        assert base.d_model == 6144  # original untouched

    def test_with_changes_explicit_heads(self):
        base = gpt3_model("gpt3-15b")
        changed = base.with_changes(d_model=12288, n_heads=48)
        assert changed.n_heads == 48

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", n_layers=0, d_model=1, d_ff=1, n_heads=1, d_head=1)
        with pytest.raises(ValueError):
            ModelConfig(name="bad", n_layers=1, d_model=1, d_ff=1, n_heads=0, d_head=1)

    def test_lookup_is_case_insensitive(self):
        assert gpt3_model("GPT3-15B") is GPT3_MODELS["gpt3-15b"]

    def test_lookup_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError, match="gpt3-175b"):
            gpt3_model("gpt5")
