"""Tests for the ``repro.api`` Study facade.

The acceptance-critical semantics live here: calibration runs exactly once
per study, repeated predictions of one target reuse the derived graph and
compiled session, the TP-mismatch rule is a typed library error, and
``Study.sweep`` produces the same results as the standalone runner while
skipping its private state preparation.
"""

import pickle

import pytest

from repro.api import (
    KIND_ARCHITECTURE,
    KIND_BASELINE,
    KIND_PARALLELISM,
    PredictError,
    Study,
    StudyError,
    predict,
)
from repro.core.replay import replay
from repro.core.whatif import WhatIfResult, apply_speedup
from repro.emulator.api import emulate
from repro.sweep import SweepSpec, WhatIfSpec, run_sweep
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

BASE_PARALLELISM = "2x1x2"
TRAINING = TrainingConfig(micro_batch_size=1, num_microbatches=2)


@pytest.fixture(scope="module")
def emulation():
    model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse(BASE_PARALLELISM)
    return emulate(model, parallel, TRAINING, iterations=1, seed=11)


@pytest.fixture(scope="module")
def bundle(emulation):
    return emulation.profiled


@pytest.fixture(scope="module")
def saved_bundle(emulation, tmp_path_factory):
    directory = tmp_path_factory.mktemp("study") / "bundle"
    emulation.profiled.save(directory)
    return directory


@pytest.fixture()
def study(bundle):
    return Study.from_trace(bundle, model="gpt3-15b", parallelism=BASE_PARALLELISM,
                            training=TRAINING)


class TestConstruction:
    def test_from_trace_path(self, saved_bundle):
        study = Study.from_trace(saved_bundle, model="gpt3-15b",
                                 parallelism=BASE_PARALLELISM, training=TRAINING)
        assert study.base_parallel.label() == BASE_PARALLELISM
        assert study.base_model.name == "gpt3-15b"

    def test_from_trace_defaults_from_metadata(self, bundle):
        study = Study.from_trace(bundle)
        assert study.base_model.name == "gpt3-15b"
        assert study.base_parallel.label() == BASE_PARALLELISM
        assert study.training.num_microbatches == TRAINING.num_microbatches

    def test_from_emulation(self):
        study = Study.from_emulation("gpt3-15b", BASE_PARALLELISM, TRAINING,
                                     iterations=1, seed=11)
        assert study.emulation.profiled is study.trace
        assert study.base_time_us > 0

    def test_unknown_model_is_typed_error(self, bundle):
        with pytest.raises(StudyError, match="unknown model"):
            Study.from_trace(bundle, model="gpt9", training=TRAINING)

    def test_malformed_parallelism_is_typed_error(self, bundle):
        with pytest.raises(StudyError, match="TPxPPxDP"):
            Study.from_trace(bundle, parallelism="2x2", training=TRAINING)

    def test_unresolvable_metadata_falls_back_to_defaults(self, bundle):
        # Trace bundles are general Kineto containers: metadata written by
        # other profilers must not break replay-only workflows.
        from repro.trace.kineto import TraceBundle
        odd = TraceBundle(metadata={"model": "llama-405b", "parallelism": "weird"})
        for trace in bundle.traces.values():
            odd.add(trace)
        study = Study.from_trace(odd)
        assert study.base_model.name == "gpt3-15b"
        assert study.base_time_us > 0
        # ... but manipulation refuses to run against a guessed base.
        with pytest.raises(StudyError, match="guessed base configuration"):
            study.predict("2x1x4")


class TestMemoization:
    def test_replay_runs_once(self, study):
        assert study.replay() is study.replay()

    def test_replay_matches_core_replay(self, study, bundle):
        assert study.base_time_us == replay(bundle).iteration_time_us

    def test_calibration_is_lazy_and_runs_once(self, study):
        study.replay()
        assert study.calibrations == 0
        study.predict("2x1x4")
        assert study.calibrations == 1
        study.predict("2x2x1")
        study.predict(model="gpt3-v1")
        assert study.calibrations == 1
        assert study.perf_model is study.perf_model

    def test_repeated_predict_reuses_graph_and_session(self, study):
        first = study.predict("2x1x4")
        second = study.predict("2x1x4")
        assert first is second
        graph, _ = study.derived_graph(KIND_PARALLELISM, "2x1x4")
        assert graph is first.graph
        session, run = study.config_session(KIND_PARALLELISM, "2x1x4")
        session2, run2 = study.config_session(KIND_PARALLELISM, "2x1x4")
        assert session is session2 and run is run2

    def test_config_state_scratch_does_not_pin(self, study):
        key = (KIND_PARALLELISM, "2x2x1")
        graph, world_size, session, run = study.config_state(*key, retain=False)
        assert world_size == 4 and run.iteration_time_us > 0
        assert key not in study._graphs
        assert key not in study._sessions
        # ... but cached state from an earlier predict is still reused.
        prediction = study.predict("2x1x4")
        _, _, _, cached_run = study.config_state(KIND_PARALLELISM, "2x1x4",
                                                 retain=False)
        assert cached_run.iteration_time_us == \
            pytest.approx(prediction.iteration_time_us)

    def test_release_drops_target_caches_keeps_calibration(self, study):
        study.predict("2x1x4")
        assert study._sessions
        study.release()
        assert not study._graphs and not study._sessions and not study._predictions
        assert study.calibrations == 1
        assert study.predict("2x1x4").iteration_time_us > 0
        assert study.calibrations == 1

    def test_baseline_session_reuses_replay_run(self, study):
        # The base replay already simulated the base durations; the
        # baseline config session must not re-run Algorithm 1.
        _, run = study.config_session(KIND_BASELINE, BASE_PARALLELISM)
        assert run is study.replay().base_run

    def test_whatif_reuses_predict_session(self, study):
        study.predict("2x1x4")
        session_before, _ = study.config_session(KIND_PARALLELISM, "2x1x4")
        study.whatif("kernel_class", target="2x1x4", op_class="gemm")
        session_after, _ = study.config_session(KIND_PARALLELISM, "2x1x4")
        assert session_before is session_after


class TestPredict:
    def test_parallelism_target(self, study):
        prediction = study.predict("2x1x4")
        assert prediction.kind == KIND_PARALLELISM
        assert prediction.world_size == 8
        assert prediction.iteration_time_us > 0
        assert prediction.base_time_us == study.base_time_us
        assert prediction.breakdown().total > 0

    def test_model_target(self, study):
        prediction = study.predict(model="gpt3-v1")
        assert prediction.kind == KIND_ARCHITECTURE
        assert prediction.target == "gpt3-v1"
        assert prediction.world_size == study.base_parallel.world_size

    def test_custom_model_config_target(self, study):
        # A variant outside the GPT-3 registry must work: the paper's
        # Table-2 use case generalised to arbitrary architectures.
        import dataclasses
        custom = dataclasses.replace(gpt3_model("gpt3-15b"),
                                     name="custom-52l", n_layers=52)
        prediction = study.predict(model=custom)
        assert prediction.target == "custom-52l"
        assert prediction.iteration_time_us > study.base_time_us  # more layers

    def test_custom_model_name_collisions_are_rejected(self, study):
        # Predictions are memoized by name: ambiguous names would serve
        # stale results for a different architecture.
        import dataclasses
        base = gpt3_model("gpt3-15b")
        with pytest.raises(PredictError, match="shadows the registry"):
            study.predict(model=dataclasses.replace(gpt3_model("gpt3-v1"),
                                                    n_layers=128))
        with pytest.raises(PredictError, match="named like the base model"):
            study.predict(model=dataclasses.replace(base, n_layers=128))
        study.predict(model=dataclasses.replace(base, name="coll", n_layers=50))
        with pytest.raises(PredictError, match="already predicted"):
            study.predict(model=dataclasses.replace(base, name="coll", n_layers=52))
        # Re-predicting the identical config is fine (idempotent).
        study.predict(model=dataclasses.replace(base, name="coll", n_layers=50))

    def test_base_target_is_baseline(self, study):
        prediction = study.predict(BASE_PARALLELISM)
        assert prediction.kind == KIND_BASELINE
        assert prediction.iteration_time_us == pytest.approx(study.base_time_us)

    def test_tp_mismatch_raises_predict_error(self, study):
        with pytest.raises(PredictError, match="tensor parallelism") as excinfo:
            study.predict("4x1x2")
        assert excinfo.value.base_tp == 2
        assert excinfo.value.target_tp == 4
        assert "4x1x2" in str(excinfo.value)

    def test_unknown_target_model_raises_predict_error(self, study):
        with pytest.raises(PredictError, match="unknown model"):
            study.predict(model="gpt9")

    def test_requires_exactly_one_target(self, study):
        with pytest.raises(PredictError, match="requires"):
            study.predict()
        with pytest.raises(PredictError, match="exactly one"):
            study.predict("2x1x4", model="gpt3-v1")

    def test_one_call_predict_wrapper(self, bundle, study):
        prediction = predict(bundle, "2x1x4", base_model="gpt3-15b",
                             base_parallelism=BASE_PARALLELISM, training=TRAINING)
        assert prediction.iteration_time_us == \
            pytest.approx(study.predict("2x1x4").iteration_time_us)


class TestWhatIf:
    def test_single_scenario_matches_apply_speedup(self, study):
        result = study.whatif("kernel_class", op_class="gemm", speedup=2.0)
        assert isinstance(result, WhatIfResult)
        direct = apply_speedup(study.base_graph, "kernel_class", op_class="gemm",
                               speedup=2.0)
        assert result.scenario_time_us == pytest.approx(direct.scenario_time_us)
        assert result.affected_tasks == direct.affected_tasks

    def test_builder_batch(self, study):
        results = (study.whatif()
                   .kernel_class("gemm", 2.0)
                   .communication(2.0, group="dp")
                   .launch_overhead()
                   .scenario("everything x1.25", lambda task: True, 1.25)
                   .run())
        assert len(results) == 4
        assert all(r.scenario_time_us <= study.base_time_us * 1.001 for r in results)
        assert results[0].name == "gemm x2"

    def test_builder_best(self, study):
        best = (study.whatif().kernel_class("gemm", 2.0).launch_overhead().best())
        assert best.scenario_time_us == min(
            r.scenario_time_us for r in
            study.whatif().kernel_class("gemm", 2.0).launch_overhead().run())

    def test_empty_builder_refuses_to_run(self, study):
        with pytest.raises(StudyError, match="no what-if scenarios"):
            study.whatif().run()

    def test_whatif_on_predicted_target(self, study):
        result = study.whatif("launch_overhead", target="2x1x4")
        target_time = study.predict("2x1x4").iteration_time_us
        assert result.baseline_time_us == pytest.approx(target_time)
        assert result.scenario_time_us <= target_time


class TestSweep:
    @pytest.fixture(scope="class")
    def spec(self):
        return SweepSpec(
            base_model="gpt3-15b",
            base_parallelism=BASE_PARALLELISM,
            micro_batch_size=TRAINING.micro_batch_size,
            num_microbatches=TRAINING.num_microbatches,
            parallelism=("2x1x4",),
            models=("gpt3-v1",),
            whatif=(WhatIfSpec(kind="kernel_class", op_class="gemm", speedup=2.0),),
        )

    def test_matches_standalone_runner(self, bundle, study, spec):
        via_study = study.sweep(spec)
        standalone = run_sweep(bundle, spec)
        assert [(r.label, r.iteration_time_us) for r in via_study.results] == \
            [(r.label, r.iteration_time_us) for r in standalone.results]

    def test_reuses_study_state(self, bundle, spec):
        study = Study.from_trace(bundle, model="gpt3-15b",
                                 parallelism=BASE_PARALLELISM, training=TRAINING)
        study.predict("2x1x4")
        assert study.calibrations == 1
        study.sweep(spec)
        assert study.calibrations == 1  # the sweep did not recalibrate
        # A caller-owned study keeps the sweep's per-target sessions for
        # later predictions (the facade's memoization contract).
        assert ("architecture", "gpt3-v1") in study._sessions

    def test_inline_axes(self, study, spec):
        inline = study.sweep(parallelism=["2x1x4"], models=["gpt3-v1"],
                             whatif=["gemm:2"])
        assert [(r.label, r.iteration_time_us) for r in inline.results] == \
            [(r.label, r.iteration_time_us) for r in study.sweep(spec).results]

    def test_spec_and_axes_are_exclusive(self, study, spec):
        with pytest.raises(StudyError, match="not both"):
            study.sweep(spec, parallelism=["2x1x4"])

    def test_mismatched_base_is_rejected(self, study):
        bad = SweepSpec(base_model="gpt3-15b", base_parallelism="2x2x4",
                        parallelism=("2x2x8",))
        with pytest.raises(StudyError, match="does not match"):
            study.sweep(bad)


class TestPickling:
    def test_prepared_study_round_trips(self, study):
        study.prepare()
        clone = pickle.loads(pickle.dumps(study))
        assert clone.calibrations == 1
        assert clone.base_time_us == study.base_time_us
        graph, world_size = clone.derived_graph(KIND_PARALLELISM, "2x1x4")
        assert world_size == 8 and len(graph) > 0
        assert clone.calibrations == 1  # the snapshot carried the perf model

    def test_clone_has_no_bundle(self, study):
        clone = pickle.loads(pickle.dumps(study.prepare()))
        with pytest.raises(StudyError, match="no trace bundle"):
            clone.trace

    def test_clone_evaluates_baseline_without_bundle(self, study):
        # What a pool worker does for the baseline scenario group under
        # the spawn start method: the snapshot has no bundle and no
        # replay, only the base graph — sessions must rebuild from it.
        clone = pickle.loads(pickle.dumps(study.prepare()))
        session, run = clone.config_session(KIND_BASELINE, BASE_PARALLELISM)
        assert run.iteration_time_us == pytest.approx(study.base_time_us)

    def test_custom_model_survives_pickling(self, study):
        import dataclasses
        custom = dataclasses.replace(gpt3_model("gpt3-15b"),
                                     name="custom-pickled", n_layers=50)
        study.predict(model=custom)
        clone = pickle.loads(pickle.dumps(study.prepare()))
        graph, _ = clone.derived_graph(KIND_ARCHITECTURE, "custom-pickled")
        assert len(graph) > 0


class TestReplaySignature:
    def test_graph_only_replay(self, study):
        again = replay(graph=study.base_graph)
        assert again.iteration_time_us == pytest.approx(study.base_time_us)

    def test_replay_without_input_raises(self):
        with pytest.raises(ValueError, match="traces or a pre-built graph"):
            replay()
