"""End-to-end integration tests across the whole toolkit."""

import pytest

from repro.analysis.comparison import evaluate_replay
from repro.baselines.dpro import dpro_replay
from repro.core.breakdown import compute_breakdown
from repro.core.graph_builder import GraphBuilder
from repro.core.manipulation import scale_data_parallelism, scale_pipeline_parallelism
from repro.core.metrics import absolute_relative_error_percent
from repro.core.perf_model import KernelPerfModel
from repro.core.replay import replay, simulate_graph
from repro.emulator.api import emulate
from repro.experiments.figures import run_architecture_prediction, run_replay_comparison
from repro.experiments.settings import EvaluationSettings
from repro.hardware.cluster import ClusterSpec
from repro.trace.kineto import TraceBundle
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig
from tests.conftest import tiny_model

_FAST_SETTINGS = EvaluationSettings(micro_batch_size=1, num_microbatches=2,
                                    sequence_length=512, seed=7)


class TestEndToEndReplay:
    def test_profile_save_load_replay_roundtrip(self, small_emulation, tmp_path):
        """Traces survive serialisation and replay identically afterwards."""
        direct = replay(small_emulation.profiled)
        small_emulation.profiled.save(tmp_path / "bundle")
        reloaded = TraceBundle.load(tmp_path / "bundle")
        indirect = replay(reloaded)
        assert indirect.iteration_time_us == pytest.approx(direct.iteration_time_us, rel=1e-6)

    def test_lumos_beats_dpro_on_every_tiny_config(self, small_training):
        for label in ("2x2x2", "1x2x2", "2x1x2"):
            parallel = ParallelismConfig.parse(label)
            emulation = emulate(tiny_model(n_layers=4), parallel, small_training,
                                iterations=2, seed=55)
            comparison = evaluate_replay(label, emulation.profiled, emulation.measured)
            assert comparison.lumos_abs_error_percent < comparison.dpro_abs_error_percent + 1e-9
            assert comparison.lumos_abs_error_percent < 10.0

    def test_replay_breakdown_consistent_with_iteration_time(self, small_replay):
        breakdown = small_replay.breakdown()
        # The averaged per-rank breakdown total cannot exceed the global
        # iteration time (which spans the slowest rank).
        assert breakdown.total <= small_replay.iteration_time_us + 1e-6


class TestEndToEndPrediction:
    def test_predict_then_measure_loop(self, small_training):
        """The full §3.4 workflow: profile once, predict two what-if configs."""
        model = tiny_model(n_layers=4)
        base_parallel = ParallelismConfig(2, 2, 2)
        emulation = emulate(model, base_parallel, small_training, iterations=1, seed=77)
        base_graph = GraphBuilder().build(emulation.profiled)
        perf_model = KernelPerfModel.calibrate(
            base_graph, ClusterSpec.for_world_size(base_parallel.world_size))

        dp_graph = scale_data_parallelism(base_graph, base_parallel, 4, perf_model)
        pp_graph = scale_pipeline_parallelism(base_graph, model, base_parallel, small_training,
                                              4, perf_model)
        for graph, target in ((dp_graph, ParallelismConfig(2, 2, 4)),
                              (pp_graph, ParallelismConfig(2, 4, 2))):
            predicted = simulate_graph(graph).iteration_time_us
            actual = emulate(model, target, small_training, iterations=2,
                             seed=78).measured_iteration_time()
            assert absolute_relative_error_percent(predicted, actual) < 12.0

    def test_experiment_runner_replay_cell(self):
        comparison = run_replay_comparison("gpt3-15b", "2x2x2", _FAST_SETTINGS)
        assert comparison.lumos_abs_error_percent < 10.0
        assert comparison.dpro_time_us < comparison.actual_time_us

    def test_experiment_runner_architecture_cell(self):
        comparison = run_architecture_prediction("gpt3-v1", config_label="2x2x2",
                                                 settings=_FAST_SETTINGS)
        assert abs(comparison.total_error_percent) < 12.0
        assert comparison.predicted.total > 0


class TestWhatIfEditing:
    def test_speeding_up_kernels_never_slows_the_iteration(self, profiled_bundle):
        # Build a private replay: the what-if edit mutates task durations and
        # must not leak into the session-scoped fixture.
        result = replay(profiled_bundle)
        graph = result.graph
        baseline = result.iteration_time_us
        for task in graph.tasks.values():
            if task.is_communication:
                task.duration *= 0.5
        faster = simulate_graph(graph).iteration_time_us
        assert faster <= baseline + 1e-6

    def test_breakdown_reflects_comm_speedup(self, profiled_bundle):
        result = replay(profiled_bundle)
        before = result.breakdown().exposed_communication
        for task in result.graph.tasks.values():
            if task.is_communication:
                task.duration *= 0.25
        after = simulate_graph(result.graph).breakdown().exposed_communication
        assert after < before

    def test_compute_breakdown_identical_for_same_bundle(self, measured_bundle):
        assert compute_breakdown(measured_bundle).as_dict() == \
            compute_breakdown(measured_bundle).as_dict()


class TestScaleCoverage:
    @pytest.mark.parametrize("label", ["1x1x1", "2x1x1", "1x2x1", "1x1x2", "2x4x1"])
    def test_emulate_and_replay_many_parallel_shapes(self, label):
        parallel = ParallelismConfig.parse(label)
        training = TrainingConfig(micro_batch_size=1, num_microbatches=2, sequence_length=512,
                                  gradient_bucket_layers=2)
        emulation = emulate(tiny_model(n_layers=4), parallel, training, iterations=1, seed=3)
        result = replay(emulation.profiled)
        assert result.iteration_time_us > 0
        assert len(result.graph.ranks()) == parallel.pp

    def test_dpro_and_lumos_agree_when_there_is_no_communication(self):
        parallel = ParallelismConfig(1, 1, 1)
        training = TrainingConfig(micro_batch_size=1, num_microbatches=2, sequence_length=512)
        emulation = emulate(tiny_model(n_layers=2), parallel, training, iterations=1, seed=3)
        lumos = replay(emulation.profiled)
        dpro = dpro_replay(emulation.profiled)
        assert dpro.iteration_time_us == pytest.approx(lumos.iteration_time_us, rel=0.02)
