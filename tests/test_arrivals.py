"""Tests for request-arrival processes and stream plans.

Covers :class:`ArrivalConfig` (determinism, validation, JSON and label
round-trips), :func:`parse_arrival`, and the :class:`StreamPlan` /
:class:`RequestSchedule` invariants produced by the continuous-batching
planner (see ``tests/test_serving_stream.py`` for the end-to-end path).
"""

from __future__ import annotations

import pytest

from repro.workload.arrivals import (
    ARRIVAL_BURSTY,
    ARRIVAL_POISSON,
    ARRIVAL_TRACE,
    ArrivalConfig,
    StreamPlan,
    parse_arrival,
)


class TestArrivalConfig:
    def test_first_arrival_is_at_zero(self):
        for config in (ArrivalConfig(), ArrivalConfig(kind=ARRIVAL_BURSTY),
                       ArrivalConfig(kind=ARRIVAL_TRACE, times_ms=(3.0, 5.0))):
            assert config.arrival_times_us()[0] == 0.0

    def test_same_seed_same_schedule(self):
        a = ArrivalConfig(rate_per_s=250.0, num_requests=16, seed=7)
        b = ArrivalConfig(rate_per_s=250.0, num_requests=16, seed=7)
        assert a.arrival_times_us() == b.arrival_times_us()

    def test_different_seed_different_schedule(self):
        a = ArrivalConfig(rate_per_s=250.0, num_requests=16, seed=7)
        b = ArrivalConfig(rate_per_s=250.0, num_requests=16, seed=8)
        assert a.arrival_times_us() != b.arrival_times_us()

    def test_times_are_nondecreasing(self):
        for kind in (ARRIVAL_POISSON, ARRIVAL_BURSTY):
            times = ArrivalConfig(kind=kind, num_requests=32,
                                  seed=3).arrival_times_us()
            assert len(times) == 32
            assert all(t0 <= t1 for t0, t1 in zip(times, times[1:]))

    def test_poisson_mean_gap_tracks_rate(self):
        # 1/rate mean gap; with 2000 samples the sample mean is within 10%.
        times = ArrivalConfig(rate_per_s=100.0, num_requests=2001,
                              seed=0).arrival_times_us()
        mean_gap_s = (times[-1] / 1_000_000.0) / 2000
        assert mean_gap_s == pytest.approx(0.01, rel=0.1)

    def test_trace_offsets_are_sorted_and_normalised(self):
        config = ArrivalConfig(kind=ARRIVAL_TRACE, times_ms=(7.0, 2.0, 4.5))
        assert config.num_requests == 3
        assert config.arrival_times_us() == (0.0, 2500.0, 5000.0)

    @pytest.mark.parametrize("kwargs", [
        dict(kind="weibull"),
        dict(num_requests=0),
        dict(rate_per_s=0.0),
        dict(kind=ARRIVAL_BURSTY, cv=0.0),
        dict(kind=ARRIVAL_TRACE),                      # no times
        dict(kind=ARRIVAL_TRACE, times_ms=(-1.0,)),    # negative offset
        dict(times_ms=(1.0,)),                         # times on poisson
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ArrivalConfig(**kwargs)

    @pytest.mark.parametrize("config", [
        ArrivalConfig(rate_per_s=80.0, num_requests=12, seed=5),
        ArrivalConfig(kind=ARRIVAL_BURSTY, rate_per_s=80.0, cv=4.0,
                      num_requests=12, seed=5),
        ArrivalConfig(kind=ARRIVAL_TRACE, times_ms=(0.0, 2.5, 7.25)),
    ])
    def test_json_round_trip(self, config):
        assert ArrivalConfig.from_json(config.to_json()) == config

    @pytest.mark.parametrize("config", [
        ArrivalConfig(rate_per_s=80.0, num_requests=12, seed=5),
        ArrivalConfig(kind=ARRIVAL_BURSTY, rate_per_s=80.0, cv=4.0,
                      num_requests=12, seed=5),
        ArrivalConfig(kind=ARRIVAL_TRACE, times_ms=(0.0, 2.5, 7.25)),
    ])
    def test_label_round_trip(self, config):
        assert parse_arrival(config.label()) == config


class TestParseArrival:
    def test_bare_kind_uses_defaults(self):
        assert parse_arrival("poisson") == ArrivalConfig()

    def test_full_poisson_spec(self):
        config = parse_arrival("poisson:rate=2000,n=6,seed=3")
        assert (config.kind, config.rate_per_s, config.num_requests,
                config.seed) == (ARRIVAL_POISSON, 2000.0, 6, 3)

    def test_bursty_spec_with_cv(self):
        config = parse_arrival("bursty:rate=100,cv=4,n=16")
        assert config.kind == ARRIVAL_BURSTY
        assert config.cv == 4.0

    def test_trace_spec(self):
        config = parse_arrival("trace:0,2.5,7.25")
        assert config.times_ms == (0.0, 2.5, 7.25)

    @pytest.mark.parametrize("text", [
        "", "weibull:rate=10", "poisson:rate", "poisson:speed=10",
        "poisson:rate=10,rate=20", "poisson:cv=4", "trace:", "trace:a,b",
    ])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_arrival(text)


class TestStreamPlanJson:
    def test_round_trip_preserves_plan(self):
        # A small hand-built plan: 2 requests, one prefill chunk each.
        from repro.workload.arrivals import RequestSchedule
        plan = StreamPlan(
            arrival=ArrivalConfig(kind=ARRIVAL_TRACE, times_ms=(0.0, 3.0)),
            requests=(RequestSchedule(0, 0.0, 0, 0, 1),
                      RequestSchedule(1, 3000.0, 1, 1, 2)),
            chunk_requests=((0,), (1,)),
            step_requests=((0,), (0, 1), (1,)),
            items=(("prefill", 0), ("decode", 0), ("prefill", 1),
                   ("decode", 1), ("decode", 2)),
            waits_us=(),
            max_queue_depth=1,
        )
        restored = StreamPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.num_requests == 2
        assert restored.max_step_batch == 2
        assert restored.schedule_for(1).num_decode_steps == 2

    def test_step_contexts_grow_with_step(self):
        from repro.workload.arrivals import RequestSchedule
        plan = StreamPlan(
            arrival=ArrivalConfig(kind=ARRIVAL_TRACE, times_ms=(0.0, 1.0)),
            requests=(RequestSchedule(0, 0.0, 0, 0, 2),
                      RequestSchedule(1, 1000.0, 0, 0, 2)),
            chunk_requests=((0, 1),),
            step_requests=((0, 1), (0, 1), (0, 1)),
            items=(("prefill", 0), ("decode", 0), ("decode", 1), ("decode", 2)),
            waits_us=(),
        )
        assert plan.step_contexts(64, 0) == (64, 64)
        assert plan.step_contexts(64, 2) == (66, 66)
